"""Unit tests for the name cache (sec. 6.4 future work, implemented)."""

import pytest

from repro.errors import NameNotFoundError
from repro.naming.cache import NameCache
from repro.naming.context import MemoryContext


@pytest.fixture
def tree(world, node):
    root = MemoryContext(node.nucleus)
    sub = root.create_context("sub")
    sub.bind("leaf", "value")
    root.bind("top", "top-value")
    return root, sub


class TestNameCacheHits:
    def test_miss_then_hit(self, world, tree):
        root, _ = tree
        cache = NameCache(world)
        assert cache.resolve(root, "sub/leaf") == "value"
        assert (cache.hits, cache.misses) == (0, 1)
        assert cache.resolve(root, "sub/leaf") == "value"
        assert (cache.hits, cache.misses) == (1, 1)

    def test_distinct_names_cached_separately(self, world, tree):
        root, _ = tree
        cache = NameCache(world)
        cache.resolve(root, "sub/leaf")
        cache.resolve(root, "top")
        assert cache.misses == 2
        assert len(cache) == 2

    def test_hit_charges_less_than_miss(self, world, node, tree):
        root, _ = tree
        cache = NameCache(world)
        user = world.create_user_domain(node)
        with user.activate():
            before = world.clock.now_us
            cache.resolve(root, "sub/leaf")
            miss_cost = world.clock.now_us - before
            before = world.clock.now_us
            cache.resolve(root, "sub/leaf")
            hit_cost = world.clock.now_us - before
        assert hit_cost < miss_cost
        assert hit_cost == world.cost_model.name_cache_hit_us

    def test_capacity_bounded(self, world, tree):
        root, _ = tree
        cache = NameCache(world, capacity=2)
        for i in range(5):
            root.bind(f"n{i}", i)
        for i in range(5):
            cache.resolve(root, f"n{i}")
        assert len(cache) <= 2


class TestNameCacheLru:
    def test_eviction_is_lru_not_wholesale(self, world, tree):
        root, _ = tree
        cache = NameCache(world, capacity=2, prefix=False)
        for i in range(3):
            root.bind(f"n{i}", i)
        cache.resolve(root, "n0")
        cache.resolve(root, "n1")
        cache.resolve(root, "n0")  # refresh n0: n1 is now LRU
        cache.resolve(root, "n2")  # evicts exactly n1
        assert len(cache) == 2
        assert cache.evictions == 1
        assert world.counters.get("namecache.evict") == 1
        hits = cache.hits
        cache.resolve(root, "n0")
        assert cache.hits == hits + 1  # survived the eviction
        cache.resolve(root, "n1")
        assert cache.hits == hits + 1  # n1 was the one evicted

    def test_hit_refreshes_entry(self, world, tree):
        root, _ = tree
        cache = NameCache(world, capacity=2, prefix=False)
        for i in range(3):
            root.bind(f"n{i}", i)
        cache.resolve(root, "n0")
        cache.resolve(root, "n1")
        cache.resolve(root, "n0")  # hit moves n0 to MRU
        cache.resolve(root, "n2")
        hits = cache.hits
        cache.resolve(root, "n0")
        assert cache.hits == hits + 1


class TestNegativeCaching:
    def test_repeated_misses_hit_negative_entry(self, world, tree):
        root, _ = tree
        cache = NameCache(world)
        with pytest.raises(NameNotFoundError):
            cache.resolve(root, "sub/ghost")
        with pytest.raises(NameNotFoundError):
            cache.resolve(root, "sub/ghost")
        assert cache.negative_hits == 1
        assert world.counters.get("namecache.negative_hit") == 1

    def test_negative_hit_costs_one_cache_charge(self, world, node, tree):
        root, _ = tree
        cache = NameCache(world)
        user = world.create_user_domain(node)
        with user.activate():
            with pytest.raises(NameNotFoundError):
                cache.resolve(root, "sub/ghost")
            before = world.clock.now_us
            with pytest.raises(NameNotFoundError):
                cache.resolve(root, "sub/ghost")
            assert world.clock.now_us - before == world.cost_model.name_cache_hit_us

    def test_bind_invalidates_negative_entry(self, world, tree):
        root, sub = tree
        cache = NameCache(world)
        with pytest.raises(NameNotFoundError):
            cache.resolve(root, "sub/ghost")
        sub.bind("ghost", "now-here")
        assert cache.resolve(root, "sub/ghost") == "now-here"

    def test_negative_off_knob(self, world, tree):
        root, _ = tree
        cache = NameCache(world, negative=False)
        with pytest.raises(NameNotFoundError):
            cache.resolve(root, "sub/ghost")
        assert len(cache) == 0


class TestPrefixSharing:
    def test_cached_prefix_short_circuits_walk(self, world, node, tree):
        root, sub = tree
        deep = sub.create_context("deep")
        deep.bind("leaf2", "v2")
        cache = NameCache(world)
        user = world.create_user_domain(node)
        with user.activate():
            cache.resolve(root, "sub/deep")  # caches the context itself
            before = world.counters.get("op.resolve")
            assert cache.resolve(root, "sub/deep/leaf2") == "v2"
            resolves = world.counters.get("op.resolve") - before
        # Only the uncached suffix was resolved (1 hop), not the prefix.
        assert resolves == 1
        assert cache.prefix_hits == 1
        assert world.counters.get("namecache.prefix_hit") == 1

    def test_prefix_consult_does_not_populate(self, world, tree):
        root, _ = tree
        cache = NameCache(world)
        cache.resolve(root, "sub")
        cache.resolve(root, "sub/leaf")
        assert len(cache) == 2  # consult-only: no implicit prefix entries

    def test_prefix_entry_invalidation_covers_derived_entry(self, world, tree):
        root, sub = tree
        cache = NameCache(world)
        cache.resolve(root, "sub")
        cache.resolve(root, "sub/leaf")  # resolved via the cached prefix
        sub.rebind("leaf", "v2")
        assert cache.resolve(root, "sub/leaf") == "v2"

    def test_prefix_off_knob(self, world, node, tree):
        root, sub = tree
        deep = sub.create_context("deep")
        deep.bind("leaf2", "v2")
        cache = NameCache(world, prefix=False)
        user = world.create_user_domain(node)
        with user.activate():
            cache.resolve(root, "sub/deep")
            before = world.counters.get("op.resolve")
            cache.resolve(root, "sub/deep/leaf2")
            resolves = world.counters.get("op.resolve") - before
        assert resolves == 3  # full walk, no short-circuit
        assert cache.prefix_hits == 0


class TestNameCacheInvalidation:
    def test_rebind_invalidates(self, world, tree):
        root, sub = tree
        cache = NameCache(world)
        cache.resolve(root, "sub/leaf")
        sub.rebind("leaf", "new-value")
        assert cache.resolve(root, "sub/leaf") == "new-value"
        assert cache.invalidations >= 1

    def test_unbind_of_intermediate_context_invalidates(self, world, tree):
        root, sub = tree
        cache = NameCache(world)
        cache.resolve(root, "sub/leaf")
        root.unbind("sub")
        assert len(cache) == 0

    def test_unrelated_change_keeps_entry(self, world, node, tree):
        root, _ = tree
        other = MemoryContext(node.nucleus)
        cache = NameCache(world)
        cache.resolve(root, "sub/leaf")
        other.bind("elsewhere", 1)
        assert cache.hits == 0
        cache.resolve(root, "sub/leaf")
        assert cache.hits == 1

    def test_sibling_change_in_traversed_context_invalidates(self, world, tree):
        """Conservative: any change to a traversed context drops entries
        through it.  Correctness over retention."""
        root, sub = tree
        cache = NameCache(world)
        cache.resolve(root, "sub/leaf")
        sub.bind("sibling", 9)
        assert len(cache) == 0

    def test_multiple_caches_all_notified(self, world, tree):
        root, sub = tree
        cache1, cache2 = NameCache(world), NameCache(world)
        cache1.resolve(root, "sub/leaf")
        cache2.resolve(root, "sub/leaf")
        sub.rebind("leaf", "v2")
        assert len(cache1) == 0 and len(cache2) == 0

    def test_clear(self, world, tree):
        root, _ = tree
        cache = NameCache(world)
        cache.resolve(root, "top")
        cache.clear()
        assert len(cache) == 0


class TestNameCacheInterposerInteraction:
    def test_interposition_invalidates_cached_path(self, world, node, tree):
        """Splicing a watchdog in (rebind) must invalidate cached names
        through that context, or the interposer would be bypassed."""
        root, sub = tree
        cache = NameCache(world)
        assert cache.resolve(root, "sub/leaf") == "value"
        replacement = MemoryContext(node.nucleus)
        replacement.bind("leaf", "intercepted")
        root.rebind("sub", replacement)
        assert cache.resolve(root, "sub/leaf") == "intercepted"
