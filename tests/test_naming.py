"""Unit tests for the naming architecture: names, contexts, ACLs,
per-domain namespaces."""

import pytest

from repro.errors import (
    InvalidNameError,
    NameAlreadyBoundError,
    NameNotFoundError,
    NotAContextError,
    PermissionDeniedError,
)
from repro.naming import name as names
from repro.naming.acl import Acl, open_acl, system_acl
from repro.naming.context import MemoryContext
from repro.naming.namespace import namespace_for


class TestNameSyntax:
    def test_split_simple(self):
        assert names.split_name("a") == ["a"]

    def test_split_compound(self):
        assert names.split_name("a/b/c") == ["a", "b", "c"]

    def test_split_absolute(self):
        assert names.split_name("/fs/sfs0") == ["fs", "sfs0"]

    @pytest.mark.parametrize("bad", ["", "/", "a//b", "a/", "/a/", "a\0b"])
    def test_invalid_names_rejected(self, bad):
        with pytest.raises(InvalidNameError):
            names.split_name(bad)

    def test_head_tail(self):
        assert names.head_tail("a/b/c") == ("a", "b/c")
        assert names.head_tail("only") == ("only", "")

    def test_join(self):
        assert names.join("/fs", "x", "y") == "/fs/x/y"
        assert names.join("a", "b") == "a/b"

    def test_is_absolute(self):
        assert names.is_absolute("/x")
        assert not names.is_absolute("x")


@pytest.fixture
def ctx(world, node):
    return MemoryContext(node.nucleus)


class TestMemoryContext:
    def test_bind_resolve(self, ctx):
        ctx.bind("x", 42)
        assert ctx.resolve("x") == 42

    def test_resolve_missing(self, ctx):
        with pytest.raises(NameNotFoundError):
            ctx.resolve("nope")

    def test_double_bind_rejected(self, ctx):
        ctx.bind("x", 1)
        with pytest.raises(NameAlreadyBoundError):
            ctx.bind("x", 2)

    def test_unbind_returns_object(self, ctx):
        ctx.bind("x", "payload")
        assert ctx.unbind("x") == "payload"
        with pytest.raises(NameNotFoundError):
            ctx.resolve("x")

    def test_unbind_missing(self, ctx):
        with pytest.raises(NameNotFoundError):
            ctx.unbind("ghost")

    def test_rebind_swaps(self, ctx):
        ctx.bind("x", "old")
        assert ctx.rebind("x", "new") == "old"
        assert ctx.resolve("x") == "new"

    def test_rebind_requires_existing(self, ctx):
        with pytest.raises(NameNotFoundError):
            ctx.rebind("x", 1)

    def test_compound_resolution(self, ctx, node):
        sub = ctx.create_context("sub")
        subsub = sub.create_context("deeper")
        subsub.bind("leaf", "found")
        assert ctx.resolve("sub/deeper/leaf") == "found"

    def test_compound_through_non_context(self, ctx):
        ctx.bind("file", 123)
        with pytest.raises(NotAContextError):
            ctx.resolve("file/deeper")

    def test_list_bindings_sorted(self, ctx):
        ctx.bind("b", 2)
        ctx.bind("a", 1)
        assert ctx.list_bindings() == [("a", 1), ("b", 2)]

    def test_context_bindable_elsewhere(self, ctx, node):
        """A context is an object like any other (paper sec. 3.2)."""
        other = MemoryContext(node.nucleus)
        other.bind("mounted", ctx)
        ctx.bind("x", "deep")
        assert other.resolve("mounted/x") == "deep"

    def test_same_object_under_two_names(self, ctx):
        obj = object()
        ctx.bind("one", obj)
        ctx.bind("two", obj)
        assert ctx.resolve("one") is ctx.resolve("two")


class TestAcls:
    def test_open_acl_allows_all(self):
        from repro.ipc.domain import Credentials

        acl = open_acl()
        creds = Credentials("anyone")
        assert acl.can_resolve(creds) and acl.can_bind(creds)

    def test_system_acl_blocks_world_bind(self):
        from repro.ipc.domain import Credentials

        acl = system_acl("owner")
        stranger = Credentials("stranger")
        assert acl.can_resolve(stranger)
        assert not acl.can_bind(stranger)

    def test_system_acl_allows_owner_and_privileged(self):
        from repro.ipc.domain import Credentials

        acl = system_acl("owner")
        assert acl.can_bind(Credentials("owner"))
        assert acl.can_bind(Credentials("root", privileged=True))

    def test_acl_enforced_by_context(self, world, node, user):
        protected = MemoryContext(node.nucleus, system_acl("nucleus"))
        with user.activate():
            with pytest.raises(PermissionDeniedError):
                protected.bind("x", 1)
            # resolve is world-readable
            with pytest.raises(NameNotFoundError):
                protected.resolve("x")

    def test_root_context_is_protected(self, world, node, user):
        with user.activate():
            with pytest.raises(PermissionDeniedError):
                node.root_context.bind("evil", 1)

    def test_fs_context_is_open(self, world, node, user):
        with user.activate():
            node.fs_context.bind("mine", 42)
            assert node.fs_context.resolve("mine") == 42


class TestNamespace:
    def test_private_binding_shadows_nothing_shared(self, world, node):
        d1 = node.create_domain("d1")
        d2 = node.create_domain("d2")
        ns1, ns2 = namespace_for(d1), namespace_for(d2)
        ns1.bind("private", "d1-only")
        assert ns1.resolve("private") == "d1-only"
        with pytest.raises(NameNotFoundError):
            ns2.resolve("private")

    def test_shared_root_visible_to_all(self, world, node):
        d1 = node.create_domain("d1")
        d2 = node.create_domain("d2")
        node.fs_context.bind("shared", "everyone")
        assert namespace_for(d1).resolve("/fs/shared") == "everyone"
        assert namespace_for(d2).resolve("/fs/shared") == "everyone"

    def test_relative_falls_back_to_root(self, world, node):
        domain = node.create_domain("d")
        ns = namespace_for(domain)
        assert ns.resolve("fs") is node.fs_context

    def test_private_wins_over_root(self, world, node):
        domain = node.create_domain("d")
        ns = namespace_for(domain)
        ns.bind("fs", "my own fs")
        assert ns.resolve("fs") == "my own fs"
        assert ns.resolve("/fs") is node.fs_context

    def test_absolute_bind_goes_to_root(self, world, node):
        domain = node.create_domain("d", None)
        ns = namespace_for(domain)
        ns.bind("/fs/thing", 7)
        assert node.fs_context.resolve("thing") == 7

    def test_namespace_cached_per_domain(self, world, node):
        domain = node.create_domain("d")
        assert namespace_for(domain) is namespace_for(domain)
