"""The zero-copy data plane's buffer-ownership contract (DESIGN.md sec. 7).

Page payloads travel the hot path as ``memoryview`` slices into the
page cache's resident buffers.  That is only safe under an explicit
contract:

* a view is valid **until the next in-place mutation** of its page —
  synchronous consumers may use it without copying;
* anything that *retains* payload past its own call frame must copy
  (``collect_modified``, the storage boundary, ``File.read``'s
  immutable-bytes materialization);
* writers never hand out writable views — ``snapshot()`` is read-only.

These tests pin each clause, including the aliasing behaviour the
contract deliberately allows (a stale view observing later writes), so
a future change that silently re-introduces copies — or drops one that
is load-bearing — fails loudly.
"""

import pytest

from repro.types import PAGE_SIZE, AccessRights
from repro.vm.page import PageStore, ZERO_PAGE
from repro.fs.cryptfs import xor_block


def rw_fault(store):
    def fault(index, access):
        return store.install(index, b"", AccessRights.READ_WRITE)

    return fault


class TestSnapshotContract:
    def test_snapshot_is_read_only_view(self):
        store = PageStore()
        page = store.install(0, b"abc", AccessRights.READ_WRITE)
        snap = page.snapshot()
        assert isinstance(snap, memoryview)
        assert snap.readonly
        with pytest.raises(TypeError):
            snap[0] = 0x7A

    def test_view_observes_in_place_mutation(self):
        """The documented hazard: a view is a window, not a copy.  It
        stays coherent with the page until the holder lets go."""
        store = PageStore()
        store.write(0, b"before", rw_fault(store))
        view = store.read_bytes(0, 6, rw_fault(store))
        assert bytes(view) == b"before"
        store.write(0, b"AFTER!", rw_fault(store))
        assert bytes(view) == b"AFTER!"  # same buffer, new bytes

    def test_install_reuses_resident_buffer(self):
        """Replacing a resident page writes into the existing bytearray;
        old views observe the new content (no per-install allocation)."""
        store = PageStore()
        first = store.install(0, b"one", AccessRights.READ_WRITE)
        view = first.snapshot()
        second = store.install(0, b"two", AccessRights.READ_WRITE)
        assert second.data is first.data
        assert bytes(view[:3]) == b"two"

    def test_collect_modified_returns_copies(self):
        """The canonical copy-on-retain site: flushed payloads must NOT
        alias the live page, or a write racing the flush would corrupt
        what lands on disk."""
        store = PageStore()
        store.write(0, b"flush-me", rw_fault(store))
        modified = store.collect_modified(0, PAGE_SIZE)
        retained = modified[0]
        assert type(retained) is bytes
        store.write(0, b"LATER-WRITE", rw_fault(store))
        assert retained[:8] == b"flush-me"

    def test_zero_size_read_faults_nothing(self):
        """Regression: the single-page fast path must not fault page 0
        in for a zero-byte read (it used to install a spurious resident
        page that survived truncation)."""
        store = PageStore()
        assert store.read_bytes(0, 0, rw_fault(store)) == b""
        assert store.read(0, 0, rw_fault(store)) == b""
        assert list(store.pages()) == []


class TestReadSurfaces:
    def test_single_page_read_bytes_is_a_view(self):
        store = PageStore()
        store.write(0, b"x" * PAGE_SIZE, rw_fault(store))
        got = store.read_bytes(10, 100, rw_fault(store))
        assert isinstance(got, memoryview)
        assert got.readonly
        assert len(got) == 100

    def test_multi_page_read_bytes_materializes(self):
        store = PageStore()
        store.write(0, b"y" * (2 * PAGE_SIZE), rw_fault(store))
        got = store.read_bytes(PAGE_SIZE - 8, 16, rw_fault(store))
        assert type(got) is bytes
        assert got == b"y" * 16

    def test_store_read_always_returns_bytes(self):
        store = PageStore()
        store.write(0, b"z" * 64, rw_fault(store))
        assert type(store.read(0, 16, rw_fault(store))) is bytes
        assert type(store.read(PAGE_SIZE - 4, 8, rw_fault(store))) is bytes


class TestInternedZeroPage:
    def test_zero_page_is_page_sized_and_immutable(self):
        assert type(ZERO_PAGE) is bytes
        assert len(ZERO_PAGE) == PAGE_SIZE
        assert not any(ZERO_PAGE)

    def test_unallocated_block_read_is_interned(self, device):
        assert device.read_block(5) is ZERO_PAGE


class TestBoundaryMaterialization:
    def test_device_write_copies_views(self, ram_device):
        """The storage boundary materializes exactly once: a snapshot
        view written to a block must not alias the live page."""
        store = PageStore()
        page = store.install(0, b"disk-bound", AccessRights.READ_WRITE)
        ram_device.write_block(3, page.snapshot())
        page.data[:4] = b"MUT!"
        assert ram_device.peek(3)[:10] == b"disk-bound"

    def test_xor_block_accepts_views_and_returns_bytes(self):
        """The cryptfs transform point: views ride in, immutable bytes
        ride out, one materialization."""
        store = PageStore()
        page = store.install(0, b"secret payload", AccessRights.READ_WRITE)
        cipher = xor_block(page.snapshot()[:14], b"k3y!", 0)
        assert type(cipher) is bytes
        assert xor_block(cipher, b"k3y!", 0) == b"secret payload"

    def test_file_read_returns_immutable_bytes(self, sfs, user):
        """``File.read``'s contract is immutable bytes: what a client
        read must not change when the file is overwritten."""
        with user.activate():
            f = sfs.top.create_file("retain.dat")
            f.write(0, b"generation-1")
            before = f.read(0, 12)
            assert type(before) is bytes
            f.write(0, b"generation-2")
            assert before == b"generation-1"

    def test_mapping_read_copy_survives_overwrite(self, sfs, user, node):
        """Mapped reads may return views (that is the optimization);
        retainers use ``read_copy`` — the copy must not alias."""
        with user.activate():
            f = sfs.top.create_file("mapped.dat")
            f.write(0, b"A" * PAGE_SIZE)
            f.sync()
        aspace = node.vmm.create_address_space("zc-test")
        mapping = aspace.map(
            f, AccessRights.READ_WRITE, offset=0, length=PAGE_SIZE
        )
        held = mapping.read_copy(0, 8)
        assert type(held) is bytes
        mapping.write(0, b"BBBBBBBB")
        assert held == b"AAAAAAAA"
        assert mapping.read_copy(0, 8) == b"BBBBBBBB"
