"""Property-based tests for the transform layers (COMPFS, CRYPTFS) and
the naming system."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import NameNotFoundError
from repro.fs.compfs import CompFs, pack_compressed, unpack_compressed
from repro.fs.cryptfs import CryptFs, xor_block
from repro.fs.sfs import create_sfs
from repro.ipc.domain import Credentials
from repro.naming.context import MemoryContext
from repro.storage.block_device import RamDevice
from repro.types import PAGE_SIZE
from repro.world import World


class TestCompressionFormat:
    @given(blob=st.binary(max_size=64 * 1024))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, blob):
        assert unpack_compressed(pack_compressed(blob)) == blob

    @given(blob=st.binary(min_size=1, max_size=8192), level=st.integers(1, 9))
    @settings(max_examples=50, deadline=None)
    def test_any_level_roundtrips(self, blob, level):
        assert unpack_compressed(pack_compressed(blob, level)) == blob


class TestCipher:
    @given(
        data=st.binary(max_size=PAGE_SIZE),
        key=st.binary(min_size=1, max_size=32),
        block=st.integers(0, 1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_involution(self, data, key, block):
        assert xor_block(xor_block(data, key, block), key, block) == data

    @given(data=st.binary(min_size=32, max_size=256))
    @settings(max_examples=50, deadline=None)
    def test_blocks_encrypt_differently(self, data):
        a = xor_block(data, b"key", 0)
        b = xor_block(data, b"key", 1)
        assert a != b


def _layer_roundtrip(layer_factory, writes):
    world = World()
    node = world.create_node("prop")
    device = RamDevice(node.nucleus, "ram", 8192)
    sfs = create_sfs(node, device)
    layer = layer_factory(node)
    layer.stack_on(sfs.top)
    user = world.create_user_domain(node)
    oracle = bytearray()
    with user.activate():
        f = layer.create_file("prop.bin")
        for offset, data in writes:
            f.write(offset, data)
            if len(oracle) < offset + len(data):
                oracle.extend(bytes(offset + len(data) - len(oracle)))
            oracle[offset : offset + len(data)] = data
        f.sync()
        assert f.get_length() == len(oracle)
        assert f.read(0, len(oracle)) == bytes(oracle)
        # And through a fresh handle after sync.
        again = layer.resolve("prop.bin")
        assert again.read(0, len(oracle)) == bytes(oracle)


write_lists = st.lists(
    st.tuples(
        st.integers(0, 2 * PAGE_SIZE),
        st.binary(min_size=1, max_size=PAGE_SIZE),
    ),
    min_size=1,
    max_size=10,
)


class TestTransformLayersPreserveData:
    @given(writes=write_lists)
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_compfs(self, writes):
        _layer_roundtrip(
            lambda node: CompFs(
                node.create_domain("cz", Credentials("c", True)), coherent=True
            ),
            writes,
        )

    @given(writes=write_lists)
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_cryptfs(self, writes):
        _layer_roundtrip(
            lambda node: CryptFs(
                node.create_domain("cy", Credentials("c", True)), key=b"prop"
            ),
            writes,
        )


names = st.text(
    alphabet=st.characters(blacklist_characters="/\0", min_codepoint=33),
    min_size=1,
    max_size=24,
)


class TestNamingProperties:
    @given(bindings=st.dictionaries(names, st.integers(), max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_bind_resolve_list_consistent(self, bindings):
        world = World()
        node = world.create_node("n")
        context = MemoryContext(node.nucleus)
        for name, value in bindings.items():
            context.bind(name, value)
        assert dict(context.list_bindings()) == bindings
        for name, value in bindings.items():
            assert context.resolve(name) == value

    @given(
        bindings=st.dictionaries(names, st.integers(), min_size=1, max_size=10),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_unbind_removes_exactly_one(self, bindings, data):
        world = World()
        node = world.create_node("n")
        context = MemoryContext(node.nucleus)
        for name, value in bindings.items():
            context.bind(name, value)
        victim = data.draw(st.sampled_from(sorted(bindings)))
        context.unbind(victim)
        with pytest.raises(NameNotFoundError):
            context.resolve(victim)
        remaining = dict(bindings)
        del remaining[victim]
        assert dict(context.list_bindings()) == remaining

    @given(path=st.lists(names, min_size=1, max_size=6, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_compound_resolution_through_chain(self, path):
        world = World()
        node = world.create_node("n")
        root = MemoryContext(node.nucleus)
        current = root
        for component in path[:-1]:
            current = current.create_context(component)
        current.bind(path[-1], "leaf-value")
        assert root.resolve("/".join(path)) == "leaf-value"
