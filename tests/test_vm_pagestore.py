"""Unit tests for the shared page store."""

import pytest

from repro.types import PAGE_SIZE, AccessRights, page_aligned, page_range
from repro.vm.page import CachedPage, PageStore

RO = AccessRights.READ_ONLY
RW = AccessRights.READ_WRITE


def no_fault(index, access):
    raise AssertionError(f"unexpected fault on page {index}")


class TestTypesHelpers:
    def test_page_range_single(self):
        assert list(page_range(0, PAGE_SIZE)) == [0]

    def test_page_range_straddles(self):
        assert list(page_range(100, PAGE_SIZE)) == [0, 1]
        assert list(page_range(PAGE_SIZE, 2 * PAGE_SIZE)) == [1, 2]

    def test_page_range_empty(self):
        assert list(page_range(0, 0)) == []
        assert list(page_range(500, -1)) == []

    def test_page_aligned(self):
        assert page_aligned(0) and page_aligned(PAGE_SIZE)
        assert not page_aligned(1)

    def test_rights_covers(self):
        assert RW.covers(RO) and RW.covers(RW) and RO.covers(RO)
        assert not RO.covers(RW)
        assert RW.writable and not RO.writable


class TestInstallAndRead:
    def test_install_pads_short_data(self):
        store = PageStore()
        page = store.install(0, b"abc", RO)
        assert len(page.data) == PAGE_SIZE
        assert bytes(page.data[:3]) == b"abc"

    def test_read_within_page(self):
        store = PageStore()
        store.install(0, b"0123456789", RO)
        assert store.read(2, 5, no_fault) == b"23456"

    def test_read_across_pages(self):
        store = PageStore()
        store.install(0, b"A" * PAGE_SIZE, RO)
        store.install(1, b"B" * PAGE_SIZE, RO)
        data = store.read(PAGE_SIZE - 2, 4, no_fault)
        assert data == b"AABB"

    def test_read_faults_missing_pages(self):
        store = PageStore()
        faulted = []

        def fault(index, access):
            faulted.append(index)
            return store.install(index, bytes([index]) * 8, access)

        data = store.read(0, 2 * PAGE_SIZE, fault)
        assert faulted == [0, 1]
        assert data[0] == 0 and data[PAGE_SIZE] == 1

    def test_replace_page(self):
        store = PageStore()
        store.install(0, b"old", RO)
        store.install(0, b"new", RW)
        assert store.read(0, 3, no_fault) == b"new"
        assert store.get(0).rights is RW


class TestWrite:
    def test_write_marks_dirty(self):
        store = PageStore()
        store.install(0, b"", RW)
        store.write(0, b"dirty", no_fault)
        assert store.get(0).dirty
        assert store.read(0, 5, no_fault) == b"dirty"

    def test_write_faults_ro_page_for_upgrade(self):
        store = PageStore()
        store.install(0, b"readonly", RO)
        upgrades = []

        def fault(index, access):
            upgrades.append((index, access))
            return store.install(index, b"readonly", RW)

        store.write(0, b"W", fault)
        assert upgrades == [(0, RW)]

    def test_write_across_pages(self):
        store = PageStore()
        store.install(0, b"", RW)
        store.install(1, b"", RW)
        blob = b"x" * 100
        store.write(PAGE_SIZE - 50, blob, no_fault)
        assert store.read(PAGE_SIZE - 50, 100, no_fault) == blob

    def test_dirty_pages_listing(self):
        store = PageStore()
        store.install(0, b"", RW)
        store.install(1, b"", RW)
        store.write(PAGE_SIZE, b"z", no_fault)
        assert [i for i, _ in store.dirty_pages()] == [1]


class TestCoherencyHelpers:
    @pytest.fixture
    def store(self):
        store = PageStore()
        store.install(0, b"zero", RW)
        store.install(1, b"one", RW)
        store.install(2, b"two", RO)
        store.write(0, b"ZERO", no_fault)  # dirty page 0
        return store

    def test_collect_modified(self, store):
        modified = store.collect_modified(0, 3 * PAGE_SIZE)
        assert list(modified) == [0]
        assert modified[0][:4] == b"ZERO"

    def test_collect_modified_range_limited(self, store):
        assert store.collect_modified(PAGE_SIZE, 2 * PAGE_SIZE) == {}

    def test_clean_range(self, store):
        store.clean_range(0, PAGE_SIZE)
        assert store.collect_modified(0, 3 * PAGE_SIZE) == {}

    def test_downgrade_range(self, store):
        store.downgrade_range(0, 2 * PAGE_SIZE)
        assert store.get(0).rights is RO
        assert store.get(1).rights is RO
        assert store.get(2).rights is RO

    def test_drop_range(self, store):
        dropped = store.drop_range(0, 2 * PAGE_SIZE)
        assert [i for i, _ in dropped] == [0, 1]
        assert 0 not in store and 1 not in store and 2 in store

    def test_zero_range_existing_cleaned(self, store):
        store.zero_range(0, PAGE_SIZE)
        page = store.get(0)
        assert bytes(page.data) == bytes(PAGE_SIZE)
        assert not page.dirty

    def test_zero_range_installs_missing(self):
        store = PageStore()
        store.zero_range(0, 2 * PAGE_SIZE)
        assert len(store) == 2

    def test_clear_returns_everything(self, store):
        everything = store.clear()
        assert [i for i, _ in everything] == [0, 1, 2]
        assert len(store) == 0

    def test_resident_bytes(self, store):
        assert store.resident_bytes() == 3 * PAGE_SIZE
