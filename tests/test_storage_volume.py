"""Unit tests for the UFS-like volume engine: files, directories,
indirect blocks, persistence, and fsck."""

import pytest

from repro.errors import (
    DirectoryNotEmptyError,
    FileExistsError_,
    FileNotFoundError_,
    IsADirectoryError_,
    NoSpaceError,
    NotADirectoryError_,
)
from repro.storage.inode import NUM_DIRECT, FileType
from repro.storage.volume import Volume
from repro.types import PAGE_SIZE


@pytest.fixture
def root(volume):
    return volume.sb.root_ino


class TestFileData:
    def test_empty_file(self, volume, root):
        f = volume.create(root, "empty", FileType.REGULAR)
        assert volume.iget(f.ino).size == 0
        assert volume.read_data(f.ino, 0, 100) == b""

    def test_small_write_read(self, volume, root):
        f = volume.create(root, "small", FileType.REGULAR)
        volume.write_data(f.ino, 0, b"hello")
        assert volume.read_data(f.ino, 0, 5) == b"hello"

    def test_read_past_eof_clamped(self, volume, root):
        f = volume.create(root, "f", FileType.REGULAR)
        volume.write_data(f.ino, 0, b"12345")
        assert volume.read_data(f.ino, 3, 100) == b"45"
        assert volume.read_data(f.ino, 10, 5) == b""

    def test_overwrite_middle(self, volume, root):
        f = volume.create(root, "f", FileType.REGULAR)
        volume.write_data(f.ino, 0, b"a" * 100)
        volume.write_data(f.ino, 40, b"MIDDLE")
        data = volume.read_data(f.ino, 0, 100)
        assert data[40:46] == b"MIDDLE"
        assert data[:40] == b"a" * 40
        assert volume.iget(f.ino).size == 100

    def test_sparse_hole_reads_zero(self, volume, root):
        f = volume.create(root, "sparse", FileType.REGULAR)
        volume.write_data(f.ino, 10 * PAGE_SIZE, b"tail")
        assert volume.read_data(f.ino, 0, 10) == bytes(10)
        assert volume.read_data(f.ino, 10 * PAGE_SIZE, 4) == b"tail"
        # The hole consumed no data blocks.
        mapped = volume._mapped_blocks(volume.iget(f.ino))
        assert len(mapped) == 1

    def test_cross_block_write(self, volume, root):
        f = volume.create(root, "f", FileType.REGULAR)
        blob = bytes(range(256)) * ((3 * PAGE_SIZE) // 256)
        volume.write_data(f.ino, PAGE_SIZE // 2, blob)
        assert volume.read_data(f.ino, PAGE_SIZE // 2, len(blob)) == blob

    def test_indirect_blocks(self, volume, root):
        """Write past the direct pointers into single-indirect range."""
        f = volume.create(root, "big", FileType.REGULAR)
        offset = (NUM_DIRECT + 3) * PAGE_SIZE
        volume.write_data(f.ino, offset, b"indirect!")
        assert volume.read_data(f.ino, offset, 9) == b"indirect!"
        assert volume.iget(f.ino).indirect != 0
        assert volume.fsck() == []

    def test_double_indirect_blocks(self, volume, root):
        f = volume.create(root, "huge", FileType.REGULAR)
        ppb = PAGE_SIZE // 4
        offset = (NUM_DIRECT + ppb + 5) * PAGE_SIZE
        volume.write_data(f.ino, offset, b"dbl")
        assert volume.read_data(f.ino, offset, 3) == b"dbl"
        assert volume.iget(f.ino).dbl_indirect != 0
        assert volume.fsck() == []

    def test_truncate_shrinks_and_frees(self, volume, root):
        f = volume.create(root, "f", FileType.REGULAR)
        volume.write_data(f.ino, 0, b"x" * (5 * PAGE_SIZE))
        used_before = volume.allocator.used_count
        volume.truncate(f.ino, PAGE_SIZE)
        assert volume.iget(f.ino).size == PAGE_SIZE
        assert volume.allocator.used_count < used_before
        assert volume.read_data(f.ino, 0, 10) == b"x" * 10
        assert volume.fsck() == []

    def test_truncate_extend_is_sparse(self, volume, root):
        f = volume.create(root, "f", FileType.REGULAR)
        volume.truncate(f.ino, 3 * PAGE_SIZE)
        assert volume.iget(f.ino).size == 3 * PAGE_SIZE
        assert volume.read_data(f.ino, 0, 16) == bytes(16)
        assert volume._mapped_blocks(volume.iget(f.ino)) == []

    def test_timestamps_progress(self, volume, root, world):
        f = volume.create(root, "f", FileType.REGULAR)
        world.clock.advance(1000)
        volume.write_data(f.ino, 0, b"data")
        inode = volume.iget(f.ino)
        assert inode.mtime_us >= f.ctime_us
        world.clock.advance(1000)
        volume.read_data(f.ino, 0, 4)
        assert volume.iget(f.ino).atime_us > inode.mtime_us


class TestDirectories:
    def test_create_and_lookup(self, volume, root):
        f = volume.create(root, "file.txt", FileType.REGULAR)
        assert volume.lookup(root, "file.txt") == f.ino

    def test_lookup_missing(self, volume, root):
        with pytest.raises(FileNotFoundError_):
            volume.lookup(root, "nothing")

    def test_duplicate_create_rejected(self, volume, root):
        volume.create(root, "x", FileType.REGULAR)
        with pytest.raises(FileExistsError_):
            volume.create(root, "x", FileType.REGULAR)

    def test_nested_directories(self, volume, root):
        d1 = volume.create(root, "d1", FileType.DIRECTORY)
        d2 = volume.create(d1.ino, "d2", FileType.DIRECTORY)
        f = volume.create(d2.ino, "deep.txt", FileType.REGULAR)
        assert volume.lookup(volume.lookup(volume.lookup(
            root, "d1"), "d2"), "deep.txt") == f.ino

    def test_readdir(self, volume, root):
        volume.create(root, "a", FileType.REGULAR)
        volume.create(root, "b", FileType.DIRECTORY)
        assert set(volume.readdir(root)) == {"a", "b"}

    def test_readdir_on_file_rejected(self, volume, root):
        f = volume.create(root, "f", FileType.REGULAR)
        with pytest.raises(NotADirectoryError_):
            volume.readdir(f.ino)

    def test_unlink_frees_inode_and_blocks(self, volume, root):
        f = volume.create(root, "f", FileType.REGULAR)
        volume.write_data(f.ino, 0, b"x" * PAGE_SIZE * 3)
        used = volume.allocator.used_count
        volume.unlink(root, "f")
        assert volume.allocator.used_count < used
        with pytest.raises(FileNotFoundError_):
            volume.lookup(root, "f")
        with pytest.raises(FileNotFoundError_):
            volume.iget(f.ino)

    def test_unlink_nonempty_dir_rejected(self, volume, root):
        d = volume.create(root, "d", FileType.DIRECTORY)
        volume.create(d.ino, "child", FileType.REGULAR)
        with pytest.raises(DirectoryNotEmptyError):
            volume.unlink(root, "d")

    def test_unlink_empty_dir(self, volume, root):
        volume.create(root, "d", FileType.DIRECTORY)
        volume.unlink(root, "d")
        assert "d" not in volume.readdir(root)

    def test_rename_same_dir(self, volume, root):
        f = volume.create(root, "old", FileType.REGULAR)
        volume.rename(root, "old", root, "new")
        assert volume.lookup(root, "new") == f.ino
        with pytest.raises(FileNotFoundError_):
            volume.lookup(root, "old")

    def test_rename_across_dirs(self, volume, root):
        d = volume.create(root, "d", FileType.DIRECTORY)
        f = volume.create(root, "f", FileType.REGULAR)
        volume.rename(root, "f", d.ino, "moved")
        assert volume.lookup(d.ino, "moved") == f.ino

    def test_rename_onto_existing_rejected(self, volume, root):
        volume.create(root, "a", FileType.REGULAR)
        volume.create(root, "b", FileType.REGULAR)
        with pytest.raises(FileExistsError_):
            volume.rename(root, "a", root, "b")


class TestHardLinks:
    def test_link_shares_inode(self, volume, root):
        f = volume.create(root, "orig", FileType.REGULAR)
        volume.write_data(f.ino, 0, b"shared")
        volume.link(root, "alias", f.ino)
        assert volume.lookup(root, "alias") == f.ino
        assert volume.iget(f.ino).nlink == 2
        assert volume.fsck() == []

    def test_unlink_one_name_keeps_data(self, volume, root):
        f = volume.create(root, "orig", FileType.REGULAR)
        volume.write_data(f.ino, 0, b"keep me")
        volume.link(root, "alias", f.ino)
        volume.unlink(root, "orig")
        assert volume.read_data(f.ino, 0, 7) == b"keep me"
        assert volume.iget(f.ino).nlink == 1

    def test_unlink_last_name_frees(self, volume, root):
        f = volume.create(root, "orig", FileType.REGULAR)
        volume.link(root, "alias", f.ino)
        volume.unlink(root, "orig")
        volume.unlink(root, "alias")
        with pytest.raises(FileNotFoundError_):
            volume.iget(f.ino)

    def test_link_to_directory_rejected(self, volume, root):
        d = volume.create(root, "d", FileType.DIRECTORY)
        with pytest.raises(IsADirectoryError_):
            volume.link(root, "dlink", d.ino)


class TestPersistence:
    def test_mount_sees_synced_state(self, ram_device):
        volume = Volume.mkfs(ram_device)
        root = volume.sb.root_ino
        f = volume.create(root, "persist.txt", FileType.REGULAR)
        volume.write_data(f.ino, 0, b"durable" * 100)
        volume.unmount()
        again = Volume.mount(ram_device)
        assert again.was_clean
        ino = again.lookup(again.sb.root_ino, "persist.txt")
        assert again.read_data(ino, 0, 7) == b"durable"
        assert again.fsck() == []

    def test_mount_preserves_allocator(self, ram_device):
        volume = Volume.mkfs(ram_device)
        f = volume.create(volume.sb.root_ino, "f", FileType.REGULAR)
        volume.write_data(f.ino, 0, b"x" * PAGE_SIZE * 4)
        volume.sync()
        again = Volume.mount(ram_device)
        assert again.allocator.used_count == volume.allocator.used_count

    def test_unformatted_mount_rejected(self, node):
        from repro.errors import StorageError
        from repro.storage.block_device import RamDevice

        blank = RamDevice(node.nucleus, "blank", 64)
        with pytest.raises(StorageError):
            Volume.mount(blank)

    def test_sync_idempotent(self, volume, root):
        volume.create(root, "f", FileType.REGULAR)
        first = volume.sync()
        assert first > 0
        assert volume.sync() == 0


class TestResourceExhaustion:
    def test_out_of_data_blocks(self, node):
        from repro.storage.block_device import RamDevice

        small = RamDevice(node.nucleus, "tiny", 48)
        volume = Volume.mkfs(small, inode_count=32)
        f = volume.create(volume.sb.root_ino, "f", FileType.REGULAR)
        with pytest.raises(NoSpaceError):
            volume.write_data(f.ino, 0, b"x" * (64 * PAGE_SIZE))

    def test_out_of_inodes(self, node):
        from repro.storage.block_device import RamDevice

        small = RamDevice(node.nucleus, "tiny2", 256)
        volume = Volume.mkfs(small, inode_count=8)
        root = volume.sb.root_ino
        with pytest.raises(NoSpaceError):
            for i in range(20):
                volume.create(root, f"f{i}", FileType.REGULAR)


class TestFsck:
    def test_clean_volume(self, volume, root):
        for i in range(5):
            f = volume.create(root, f"f{i}", FileType.REGULAR)
            volume.write_data(f.ino, 0, b"d" * (i * 1000))
        assert volume.fsck() == []

    def test_detects_nlink_mismatch(self, volume, root):
        f = volume.create(root, "f", FileType.REGULAR)
        volume.iget(f.ino).nlink = 5
        problems = volume.fsck()
        assert any("nlink" in p for p in problems)

    def test_detects_unallocated_block_claim(self, volume, root):
        f = volume.create(root, "f", FileType.REGULAR)
        volume.write_data(f.ino, 0, b"data")
        claimed = volume.iget(f.ino).direct[0]
        volume.allocator.free(claimed)
        problems = volume.fsck()
        assert any("not marked allocated" in p for p in problems)

    def test_detects_double_claim(self, volume, root):
        f1 = volume.create(root, "f1", FileType.REGULAR)
        f2 = volume.create(root, "f2", FileType.REGULAR)
        volume.write_data(f1.ino, 0, b"one")
        volume.write_data(f2.ino, 0, b"two")
        volume.iget(f2.ino).direct[0] = volume.iget(f1.ino).direct[0]
        problems = volume.fsck()
        assert any("claimed by" in p for p in problems)

    def test_detects_dangling_entry(self, volume, root):
        f = volume.create(root, "f", FileType.REGULAR)
        # Corrupt: free the i-node behind the directory's back.
        volume._inodes[f.ino].type = FileType.FREE
        problems = volume.fsck()
        assert any("dangling" in p.lower() for p in problems)
