"""Cost-accounting identity tests: the virtual clock's category
breakdown must equal the mechanism counts times the model constants for
known flows — this pins the Table 2/3 reproduction to mechanisms rather
than tuned totals."""

import pytest

from repro.fs.sfs import create_sfs
from repro.sim.clock import StopWatch
from repro.storage.block_device import BlockDevice, RamDevice
from repro.types import PAGE_SIZE
from repro.world import World


@pytest.fixture
def warm(world, node, device, user):
    stack = create_sfs(node, device, placement="two_domains")
    with user.activate():
        f = stack.top.create_file("c.dat")
        f.write(0, b"c" * PAGE_SIZE)
        f.read(0, PAGE_SIZE)
        f.get_attributes()
    return stack, user


class TestBreakdownIdentities:
    def test_breakdown_sums_to_elapsed(self, world, warm, user):
        stack, user = warm
        with user.activate():
            f = stack.top.resolve("c.dat")
            watch = StopWatch(world.clock)
            with watch:
                f.read(0, PAGE_SIZE)
                f.write(0, b"w" * PAGE_SIZE)
                f.get_attributes()
        assert sum(watch.breakdown.values()) == pytest.approx(watch.elapsed_us)

    def test_cached_read_cost_formula(self, world, warm, user):
        """One crossing + read CPU + one 4KB copy, nothing else."""
        stack, user = warm
        model = world.cost_model
        with user.activate():
            f = stack.top.resolve("c.dat")
            watch = StopWatch(world.clock)
            with watch:
                f.read(0, PAGE_SIZE)
        expected = (
            model.cross_domain_call_us
            + model.fs_read_cpu_us
            + model.memcpy_us(PAGE_SIZE)
        )
        assert watch.elapsed_us == pytest.approx(expected)
        assert watch.breakdown["cross_domain"] == model.cross_domain_call_us

    def test_open_crossing_count_two_domains(self, world, warm, user):
        """A repeat open makes exactly 4 crossings: client->coherency,
        then coherency->disk x3 (resolve, check_access, get_attributes)."""
        stack, user = warm
        model = world.cost_model
        snapshot = world.counters.snapshot()
        with user.activate():
            watch = StopWatch(world.clock)
            with watch:
                stack.top.resolve("c.dat")
        delta = world.counters.delta_since(snapshot)
        assert delta["invoke.cross_domain"] == 4
        assert watch.breakdown["cross_domain"] == pytest.approx(
            4 * model.cross_domain_call_us
        )

    def test_uncached_read_is_disk_dominated(self, world, node, user):
        device = BlockDevice(node.nucleus, "slow", 8192)
        stack = create_sfs(node, device, cache=False, name="slow")
        with user.activate():
            f = stack.top.create_file("d.dat")
            f.write(0, b"d" * PAGE_SIZE)
            watch = StopWatch(world.clock)
            with watch:
                f.read(0, PAGE_SIZE)
        assert watch.breakdown["disk"] > 0.9 * watch.elapsed_us

    def test_same_domain_stack_uses_local_calls(self, world):
        node = world.create_node("one")
        device = RamDevice(node.nucleus, "ram", 8192)
        stack = create_sfs(node, device, placement="one_domain")
        user = world.create_user_domain(node)
        with user.activate():
            stack.top.create_file("x.dat")
            snapshot = world.counters.snapshot()
            stack.top.resolve("x.dat")
        delta = world.counters.delta_since(snapshot)
        # One crossing in from the user; the 3 layer-to-layer calls are
        # local procedure calls.
        assert delta["invoke.cross_domain"] == 1
        assert delta["invoke.local"] == 3

    def test_remote_op_charges_rtt_plus_payload(self, world):
        from repro.fs.dfs import export_dfs, mount_remote

        server = world.create_node("server")
        client = world.create_node("client")
        stack = create_sfs(server, RamDevice(server.nucleus, "ram", 8192))
        dfs = export_dfs(server, stack.top)
        mount_remote(client, server, "dfs")
        su = world.create_user_domain(server, "su")
        cu = world.create_user_domain(client, "cu")
        with su.activate():
            dfs.create_file("n.dat").write(0, b"n" * PAGE_SIZE)
        model = world.cost_model
        with cu.activate():
            rf = client.fs_context.resolve("dfs@server").resolve("n.dat")
            watch = StopWatch(world.clock)
            with watch:
                rf.read(0, PAGE_SIZE)
        # One request round trip + a 4 KB reply payload.
        expected_network = model.network_rtt_us + model.network_per_kb_us * 4
        assert watch.breakdown["network"] == pytest.approx(expected_network)

    def test_determinism_across_worlds(self):
        """Identical programs in fresh worlds produce identical clocks —
        the property the whole reproduction rests on."""

        def run():
            world = World()
            node = world.create_node("d")
            stack = create_sfs(node, BlockDevice(node.nucleus, "sd0", 8192))
            user = world.create_user_domain(node)
            with user.activate():
                f = stack.top.create_file("det.dat")
                f.write(0, b"det" * 1000)
                f.read(100, 500)
                f.sync()
                stack.top.sync_fs()
            return world.clock.now_us, world.clock.categories()

        first, second = run(), run()
        assert first == second
