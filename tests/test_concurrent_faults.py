"""Fault plane x queueing: scripted faults composed with finite server
queues under the discrete-event scheduler.

The composition contract (see :meth:`repro.ipc.network.Network.transfer`
and the approximation note in :mod:`repro.sim.scheduler`):

* fault effects run *before* queue admission, so a fault-delayed
  message charges its delay to ``network_fault_delay``, pays **zero**
  ``server_queue_wait`` itself, and reserves the server only for
  ``[arrival, arrival + service]`` — the delay is network time, not
  server occupancy;
* sends are admitted in event-execution (send) order, so a message
  sent *after* a delayed one queues behind the delayed message's
  reservation — send-order FIFO, deterministically;
* a dropped message never reaches the server queue at all;
* a duplicated message occupies two service slots;
* a node crash wipes its pending reservations (the in-memory request
  queue dies with the server) while cumulative stats survive.

Everything is pinned to exact virtual times under seeded FaultPlans and
asserted across two runs where determinism matters.
"""

import pytest

from repro.errors import MessageDroppedError
from repro.sim.faults import FaultPlan
from repro.world import World

#: Zero-byte messages: service time is the base ``server_service_us``.
SERVICE_BYTES = 0
#: Every transfer charges the network round trip on top of fault
#: delays and queue waits (cost model default, zero payload).
RTT_US = 2_000.0


def two_nodes(world):
    src = world.create_node("src")
    dst = world.create_node("dst")
    return src, dst


class TestDelayedMessageAndQueue:
    def test_delay_is_network_time_not_queue_wait(self):
        world = World()
        src, dst = two_nodes(world)
        dst.install_server_queue(1)
        plan = FaultPlan()
        plan.delay("src", "dst", at_us=0.0, delay_us=2_000.0, count=1)
        world.install_fault_plan(plan)

        clock = world.clock
        clock.begin_frame(0.0)
        world.network.transfer(src, dst, SERVICE_BYTES)
        elapsed = clock.end_frame()
        assert world.counters.get("faults.delayed") == 1
        # The frame is delay + round trip: the message arrives at an
        # idle server and pays no queue wait of its own.
        assert elapsed == 2_000.0 + RTT_US
        assert clock.charged("network_fault_delay") == 2_000.0
        assert clock.charged("server_queue_wait") == 0.0
        assert dst.server_queue.total_wait_us == 0.0

    def test_slot_reserved_from_arrival_not_send(self):
        # The delayed message's reservation is [2000, 2500] — arrival
        # plus service — so a probe admitted at t=2500 finds the server
        # idle while one at t=2400 waits out the tail.
        world = World()
        src, dst = two_nodes(world)
        dst.install_server_queue(1)
        plan = FaultPlan()
        plan.delay("src", "dst", at_us=0.0, delay_us=2_000.0, count=1)
        world.install_fault_plan(plan)

        clock = world.clock
        service_us = world.cost_model.server_service_time_us(SERVICE_BYTES)
        assert service_us == 500.0  # the calibration these pins rely on
        clock.begin_frame(0.0)
        world.network.transfer(src, dst, SERVICE_BYTES)
        clock.end_frame()

        clock.begin_frame(2_400.0)
        world.network.transfer(src, dst, SERVICE_BYTES)
        assert clock.end_frame() == 100.0 + RTT_US  # waits 2400 -> 2500
        clock.begin_frame(3_500.0)
        world.network.transfer(src, dst, SERVICE_BYTES)
        assert clock.end_frame() == 0.0 + RTT_US  # idle again

    def test_later_send_queues_behind_delayed_reservation(self):
        # Send-order FIFO: a message sent at t=100 — during the first
        # message's delay window — still queues behind its [2000, 2500]
        # reservation, because admissions happen in send order.  This
        # is the documented event-start-order approximation, pinned.
        world = World()
        src, dst = two_nodes(world)
        dst.install_server_queue(1)
        plan = FaultPlan()
        plan.delay("src", "dst", at_us=0.0, delay_us=2_000.0, count=1)
        world.install_fault_plan(plan)

        clock = world.clock
        clock.begin_frame(0.0)
        world.network.transfer(src, dst, SERVICE_BYTES)  # delayed
        clock.end_frame()
        clock.begin_frame(100.0)
        world.network.transfer(src, dst, SERVICE_BYTES)  # on time
        elapsed = clock.end_frame()
        assert elapsed == 2_400.0 + RTT_US  # waits 100 -> 2500
        assert clock.charged("server_queue_wait") == 2_400.0
        assert dst.server_queue.peak_wait_us == 2_400.0


class TestDropNeverOccupies:
    def test_dropped_message_leaves_server_idle(self):
        world = World()
        src, dst = two_nodes(world)
        dst.install_server_queue(1)
        plan = FaultPlan()
        plan.drop("src", "dst", at_us=0.0, count=1)
        world.install_fault_plan(plan)

        clock = world.clock
        clock.begin_frame(0.0)
        with pytest.raises(MessageDroppedError):
            world.network.transfer(src, dst, SERVICE_BYTES)
        clock.end_frame()
        assert dst.server_queue.admitted == 0  # never reached the queue

        clock.begin_frame(10.0)
        world.network.transfer(src, dst, SERVICE_BYTES)
        assert clock.end_frame() == RTT_US  # idle server, no wait
        assert dst.server_queue.admitted == 1


class TestDuplicateOccupiesTwice:
    def test_duplicated_message_reserves_two_slots(self):
        world = World()
        src, dst = two_nodes(world)
        dst.install_server_queue(1)
        plan = FaultPlan()
        plan.duplicate("src", "dst", at_us=0.0, count=1)
        world.install_fault_plan(plan)

        clock = world.clock
        service_us = world.cost_model.server_service_time_us(SERVICE_BYTES)
        clock.begin_frame(0.0)
        world.network.transfer(src, dst, SERVICE_BYTES)
        clock.end_frame()
        queue = dst.server_queue
        assert world.counters.get("faults.duplicated") == 1
        assert queue.admitted == 2  # original + copy
        assert queue.total_service_us == 2 * service_us
        # A later arrival at t=0 waits behind BOTH copies.
        clock.begin_frame(0.0)
        world.network.transfer(src, dst, SERVICE_BYTES)
        assert clock.end_frame() == 2 * service_us + RTT_US


class TestCrashResetsQueue:
    def test_crash_wipes_reservations(self):
        world = World()
        src, dst = two_nodes(world)
        dst.install_server_queue(1)
        clock = world.clock
        for _ in range(3):  # build a backlog: simultaneous arrivals
            clock.begin_frame(0.0)
            world.network.transfer(src, dst, SERVICE_BYTES)
            clock.end_frame()
        assert dst.server_queue.backlog_us() > 0.0
        dst.crash()
        assert dst.server_queue.backlog_us() == 0.0  # queue died with it
        assert dst.server_queue.admitted == 3  # stats survive
        dst.recover()
        clock.begin_frame(1.0)
        world.network.transfer(src, dst, SERVICE_BYTES)
        assert clock.end_frame() == RTT_US  # fresh queue, no wait


class TestScheduledFaultQueueComposition:
    """The full composition driven through the scheduler: three
    concurrent clients, the first one's message delayed by a seeded
    FaultPlan, every finish time pinned exactly and reproduced across
    two runs."""

    @staticmethod
    def _run_schedule():
        from repro.sim.scheduler import request, think

        world = World()
        src, dst = two_nodes(world)
        dst.install_server_queue(1)
        plan = FaultPlan(seed=3)
        plan.delay("src", "dst", at_us=0.0, delay_us=1_000.0, count=1)
        world.install_fault_plan(plan)
        scheduler = world.scheduler()
        finish = {}

        def client(name, think_us):
            yield think(think_us)
            yield request(
                lambda: world.network.transfer(src, dst, SERVICE_BYTES)
            )
            finish[name] = world.clock.now_us

        scheduler.spawn(client("a", 0.0), name="a")
        scheduler.spawn(client("b", 100.0), name="b")
        scheduler.spawn(client("c", 200.0), name="c")
        scheduler.run()
        return finish, world

    def test_pinned_finish_times(self):
        finish, world = self._run_schedule()
        # a sends at 0, is delayed 1000, reserves [1000, 1500], pays
        # no queue wait, then the 2000us round trip: finishes at 3000.
        # b sends at 100, queues behind a's reservation (send-order
        # FIFO): waits 1400, reserves [1500, 2000], finishes at 3500.
        # c sends at 200: waits 1800, reserves [2000, 2500], finishes
        # at 4000.
        assert finish == {"a": 3_000.0, "b": 3_500.0, "c": 4_000.0}
        assert world.clock.charged("network_fault_delay") == 1_000.0
        assert world.clock.charged("server_queue_wait") == 3_200.0
        assert world.counters.get("faults.delayed") == 1
        queue = world.nodes["dst"].server_queue
        assert queue.admitted == 3
        assert queue.peak_wait_us == 1_800.0

    def test_deterministic_across_runs(self):
        first = self._run_schedule()[0]
        second = self._run_schedule()[0]
        assert first == second


class TestShardQuorumDuplicateDelivery:
    """Satellite of the sharded-DFS PR: the send-only retry policy plus
    a duplicate-delivery fault must never double-apply a quorum write.

    Two layers guarantee it: the retry wrapper resends only when the
    *transfer* failed (so the operation body ran zero times), and the
    datanode's versioned ``put_blocks`` skips-but-acks any chunk whose
    version is not newer than the stored one (so a redelivered or
    replayed put is a no-op that still satisfies the quorum)."""

    def _cluster(self):
        from repro.dfs import create_sharded_dfs
        from repro.ipc.retry import RetryPolicy

        cluster = create_sharded_dfs(
            world=World(),
            datanodes=3,
            replication=3,
            write_quorum=2,
            heartbeat_interval_us=10.0**15,
            server_slots=2,
        )
        cluster.world.enable_retries(
            RetryPolicy(
                max_attempts=6,
                base_backoff_us=100.0,
                backoff_factor=2.0,
                max_backoff_us=1_000.0,
                timeout_us=20_000.0,
            )
        )
        return cluster

    def test_duplicated_put_applies_once_and_occupies_two_slots(self):
        cluster = self._cluster()
        world = cluster.world
        user = world.create_user_domain(cluster.client)
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
        plan = FaultPlan(seed=3)
        plan.duplicate("client", "dn0", at_us=world.clock.now_us, count=1)
        world.install_fault_plan(plan)
        before = world.counters.snapshot()
        admitted0 = {
            name: world.nodes[name].server_queue.admitted
            for name in ("dn0", "dn1", "dn2")
        }
        payload = b"q" * 4096
        with user.activate():
            handle.write(0, payload)
        admitted = {
            name: world.nodes[name].server_queue.admitted - admitted0[name]
            for name in ("dn0", "dn1", "dn2")
        }
        with user.activate():
            assert handle.read(0, 8) == b"q" * 8
        delta = world.counters.delta_since(before)
        assert delta.get("faults.duplicated") == 1
        # One application per replica — the duplicate did not re-apply.
        assert delta.get("shard.dn.put_applied") == 3
        assert "shard.dn.put_skipped" not in delta
        assert delta.get("shard.quorum_writes") == 1
        key = handle.state.file_key
        for service in cluster.datanodes.values():
            assert service.stored_version(key, 0) == 1
        # The duplicated copy was serviced: across the write, dn0's
        # queue admitted one message more than its symmetric peers.
        assert admitted["dn0"] == admitted["dn1"] + 1
        assert admitted["dn1"] == admitted["dn2"]

    def test_dropped_then_retried_put_applies_once(self):
        cluster = self._cluster()
        world = cluster.world
        user = world.create_user_domain(cluster.client)
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
        plan = FaultPlan(seed=3)
        plan.drop("client", "dn0", at_us=world.clock.now_us, count=1)
        world.install_fault_plan(plan)
        before = world.counters.snapshot()
        with user.activate():
            handle.write(0, b"r" * 4096)
            assert handle.read(0, 8) == b"r" * 8
        delta = world.counters.delta_since(before)
        assert delta.get("faults.dropped") == 1
        # The retry resent a transfer whose body never ran: exactly one
        # application per replica, no failover, a full-quorum write.
        assert delta.get("invoke.retries", 0) >= 1
        assert delta.get("shard.dn.put_applied") == 3
        assert "shard.write_failover" not in delta
        assert delta.get("shard.quorum_writes") == 1
        key = handle.state.file_key
        for service in cluster.datanodes.values():
            assert service.stored_version(key, 0) == 1

    def test_replayed_put_at_same_version_skips_but_acks(self):
        cluster = self._cluster()
        service = cluster.datanodes["dn0"]
        payload = b"first" + bytes(4091)
        assert service.put_blocks("k", [(0, payload, 1)]) == [(0, 1)]
        # Application-level redelivery of the same prepared version:
        # acked at the stored version, data untouched.
        assert service.put_blocks("k", [(0, b"replay", 1)]) == [(0, 1)]
        assert cluster.world.counters.get("shard.dn.put_skipped") == 1
        [(_, data, _)] = service.get_blocks("k", [0])
        assert bytes(data[:5]) == b"first"
