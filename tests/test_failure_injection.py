"""Failure-injection tests: bad disks, network partitions mid-protocol,
revoked objects, and resource exhaustion through full stacks."""

import pytest

from repro.errors import (
    DeviceError,
    FileNotFoundError_,
    NoSpaceError,
    RevokedObjectError,
)
from repro.fs.dfs import export_dfs, mount_remote
from repro.ipc.compound import (
    CompoundInvocation,
    CompoundSubOpError,
    compound_region,
)
from repro.fs.sfs import create_sfs
from repro.ipc.network import NetworkPartitionError
from repro.storage.block_device import BlockDevice, RamDevice
from repro.types import PAGE_SIZE, AccessRights


class TestDiskFailures:
    def test_bad_block_surfaces_through_stack(self, world, node, user):
        device = BlockDevice(node.nucleus, "bad0", 8192)
        stack = create_sfs(node, device, cache=False)
        with user.activate():
            f = stack.top.create_file("victim.dat")
            f.write(0, b"x" * PAGE_SIZE)
        # Find and break the data block.
        volume = stack.disk_layer.volume
        ino = volume.lookup(volume.sb.root_ino, "victim.dat")
        block = volume.iget(ino).direct[0]
        device.inject_bad_block(block)
        with user.activate():
            with pytest.raises(DeviceError):
                stack.top.resolve("victim.dat").read(0, PAGE_SIZE)

    def test_cache_masks_bad_block_until_miss(self, world, node, user):
        device = BlockDevice(node.nucleus, "bad1", 8192)
        stack = create_sfs(node, device, cache=True)
        with user.activate():
            f = stack.top.create_file("victim.dat")
            f.write(0, b"y" * PAGE_SIZE)
            f.sync()
            f.read(0, 16)  # cached now
        volume = stack.disk_layer.volume
        ino = volume.lookup(volume.sb.root_ino, "victim.dat")
        device.inject_bad_block(volume.iget(ino).direct[0])
        with user.activate():
            # Cache hit: still works.
            assert stack.top.resolve("victim.dat").read(0, 16) == b"y" * 16

    def test_write_error_leaves_volume_consistent(self, world, node, user):
        device = BlockDevice(node.nucleus, "bad2", 8192)
        stack = create_sfs(node, device, cache=False)
        with user.activate():
            f = stack.top.create_file("w.dat")
            f.write(0, b"a" * PAGE_SIZE)
        volume = stack.disk_layer.volume
        ino = volume.lookup(volume.sb.root_ino, "w.dat")
        device.inject_bad_block(volume.iget(ino).direct[0])
        with user.activate():
            with pytest.raises(DeviceError):
                stack.top.resolve("w.dat").write(0, b"b" * 100)
        device.clear_bad_blocks()
        assert volume.fsck() == []


class TestSpaceExhaustion:
    def test_enospc_through_stack(self, world, node, user):
        device = RamDevice(node.nucleus, "tiny", 64)
        stack = create_sfs(node, device, cache=False)
        with user.activate():
            f = stack.top.create_file("big.dat")
            with pytest.raises(NoSpaceError):
                f.write(0, b"z" * (100 * PAGE_SIZE))
        assert stack.disk_layer.volume.fsck() == []

    def test_enospc_on_deferred_writeback(self, world, node, user):
        """Cached writes can over-commit; the error surfaces at sync."""
        device = RamDevice(node.nucleus, "tiny2", 64)
        stack = create_sfs(node, device, cache=True)
        with user.activate():
            f = stack.top.create_file("big.dat")
            f.write(0, b"z" * (100 * PAGE_SIZE))  # fits in cache
            with pytest.raises(NoSpaceError):
                f.sync()


class TestPartitionMidProtocol:
    @pytest.fixture
    def dist(self, world):
        server = world.create_node("server")
        client = world.create_node("client")
        device = BlockDevice(server.nucleus, "sd0", 8192)
        sfs = create_sfs(server, device)
        dfs = export_dfs(server, sfs.top)
        mount_remote(client, server, "dfs")
        su = world.create_user_domain(server, "su")
        cu = world.create_user_domain(client, "cu")
        with su.activate():
            dfs.create_file("shared.dat").write(0, b"S" * PAGE_SIZE)
        return world, server, client, sfs, dfs, su, cu

    def test_recall_of_partitioned_client_fails_cleanly(self, dist):
        """A server-side read that must recall a dirty block from a
        partitioned client raises rather than returning stale data."""
        world, server, client, sfs, dfs, su, cu = dist
        with cu.activate():
            rf = client.fs_context.resolve("dfs@server").resolve("shared.dat")
            mapping = client.vmm.create_address_space("c").map(
                rf, AccessRights.READ_WRITE
            )
            mapping.write(0, b"DIRTY AT CLIENT")
        world.network.partition(server, client)
        with su.activate():
            with pytest.raises(NetworkPartitionError):
                dfs.resolve("shared.dat").read(0, 15)
        # After healing, the recall completes and data is correct.
        world.network.heal_all()
        with su.activate():
            assert dfs.resolve("shared.dat").read(0, 15) == b"DIRTY AT CLIENT"

    def test_client_cache_hit_survives_partition(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        with cu.activate():
            rf = client.fs_context.resolve("dfs@server").resolve("shared.dat")
            mapping = client.vmm.create_address_space("c").map(
                rf, AccessRights.READ_ONLY
            )
            assert mapping.read(0, 4) == b"SSSS"
        world.network.partition(server, client)
        with cu.activate():
            # Already-cached page: no network needed.
            assert mapping.read(0, 4) == b"SSSS"


class TestRevocation:
    def test_channel_close_revokes_objects(self, world, node, device, user):
        stack = create_sfs(node, device)
        with user.activate():
            f = stack.top.create_file("r.dat")
            f.write(0, b"r" * PAGE_SIZE)
            mapping = node.vmm.create_address_space("t").map(
                f, AccessRights.READ_ONLY
            )
            mapping.read(0, 4)
            channel = mapping.cache.channel
            pager = channel.pager_object
            channel.close()
            with pytest.raises(RevokedObjectError):
                pager.page_in(0, PAGE_SIZE, AccessRights.READ_ONLY)

    def test_done_with_pager_object_tears_down(self, world, node, device, user):
        stack = create_sfs(node, device)
        with user.activate():
            f = stack.top.create_file("d.dat")
            f.write(0, b"d" * PAGE_SIZE)
            mapping = node.vmm.create_address_space("t").map(
                f, AccessRights.READ_ONLY
            )
            mapping.read(0, 4)
            pager = mapping.cache.channel.pager_object
            pager.done_with_pager_object()
            with pytest.raises(RevokedObjectError):
                pager.page_in(0, PAGE_SIZE, AccessRights.READ_ONLY)
        # The layer dropped the channel: a fresh bind builds a new one.
        with user.activate():
            f2 = stack.top.resolve("d.dat")
            mapping2 = node.vmm.create_address_space("t2").map(
                f2, AccessRights.READ_ONLY
            )
            assert mapping2.read(0, 4) == b"dddd"


class TestCompoundPartition:
    """Network failure under batched invocation: a partition surfaces
    exactly which sub-op failed, and sub-ops after the failure never
    execute server-side (no partial state from a dead link)."""

    @pytest.fixture
    def dist(self, world):
        server = world.create_node("server")
        client = world.create_node("client")
        device = BlockDevice(server.nucleus, "sd0", 8192)
        sfs = create_sfs(server, device)
        dfs = export_dfs(server, sfs.top)
        mount_remote(client, server, "dfs")
        cu = world.create_user_domain(client, "cu")
        return world, server, client, dfs, cu

    def test_partition_before_commit_fails_first_subop(self, dist):
        world, server, client, dfs, cu = dist
        world.network.partition(server, client)
        batch = CompoundInvocation(world)
        batch.add(dfs.create_file, "a.dat")
        batch.add(dfs.create_file, "b.dat")
        with cu.activate():
            result = batch.commit()
        assert not result.ok
        assert result.failed_index == 0
        with pytest.raises(CompoundSubOpError) as exc_info:
            result[0]
        assert isinstance(exc_info.value.cause, NetworkPartitionError)
        # Nothing crossed the dead link, and no server-side state exists.
        assert world.network.message_count(client, server) == 0
        world.network.heal_all()
        with cu.activate():
            with pytest.raises(FileNotFoundError_):
                dfs.resolve("a.dat")
            with pytest.raises(FileNotFoundError_):
                dfs.resolve("b.dat")

    def test_mid_batch_failure_surfaces_index_and_skips_rest(self, dist):
        world, server, client, dfs, cu = dist
        batch = CompoundInvocation(world)
        batch.add(dfs.create_file, "ok.dat")
        batch.add(dfs.resolve, "missing.dat")  # fails server-side
        batch.add(dfs.create_file, "never.dat")
        with cu.activate():
            result = batch.commit()
        assert result.failed_index == 1
        with pytest.raises(CompoundSubOpError) as exc_info:
            result[1]
        assert isinstance(exc_info.value.cause, FileNotFoundError_)
        # Earlier results are usable; later sub-ops never ran.
        assert result[0] is not None
        with cu.activate():
            assert dfs.resolve("ok.dat") is not None
            with pytest.raises(FileNotFoundError_):
                dfs.resolve("never.dat")

    def test_region_partition_checked_per_absorbed_op(self, dist):
        world, server, client, dfs, cu = dist
        with cu.activate():
            dfs.create_file("pre.dat")
        world.network.partition(server, client)
        with cu.activate():
            with compound_region(world):
                with pytest.raises(NetworkPartitionError):
                    # Absorption checks reachability before the op body
                    # runs: the file must not be created server-side.
                    dfs.create_file("cut.dat")
        world.network.heal_all()
        with cu.activate():
            with pytest.raises(FileNotFoundError_):
                dfs.resolve("cut.dat")
