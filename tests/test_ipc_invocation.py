"""Unit tests for location-independent invocation: path selection,
charging, revocation, and payload accounting."""

import pytest

from repro.errors import RevokedObjectError
from repro.ipc.invocation import bytes_in, current_domain, operation
from repro.ipc.object import SpringObject
from repro.world import World


class Echo(SpringObject):
    """Minimal test server."""

    @operation
    def ping(self) -> str:
        return "pong"

    @operation
    def where_am_i(self):
        return current_domain()

    @operation
    def bulk(self, data: bytes) -> bytes:
        return data * 2

    @operation
    def relay(self, other: "Echo") -> str:
        return other.ping()


@pytest.fixture
def world():
    return World()


@pytest.fixture
def setup(world):
    node_a = world.create_node("a")
    node_b = world.create_node("b")
    server_domain = node_a.create_domain("server")
    peer_domain = node_a.create_domain("peer")
    remote_domain = node_b.create_domain("remote")
    return world, Echo(server_domain), server_domain, peer_domain, remote_domain


class TestPathSelection:
    def test_same_domain_charges_local_call(self, setup):
        world, echo, server, _, _ = setup
        with server.activate():
            echo.ping()
        assert world.clock.charged("local_call") == world.cost_model.local_call_us
        assert world.counters.get("invoke.local") == 1

    def test_cross_domain_charges_cross_domain(self, setup):
        world, echo, _, peer, _ = setup
        with peer.activate():
            echo.ping()
        assert (
            world.clock.charged("cross_domain")
            == world.cost_model.cross_domain_call_us
        )
        assert world.counters.get("invoke.cross_domain") == 1

    def test_cross_node_charges_network(self, setup):
        world, echo, _, _, remote = setup
        with remote.activate():
            echo.ping()
        assert world.clock.charged("network") >= world.cost_model.network_rtt_us
        assert world.network.messages == 1

    def test_no_domain_is_free(self, setup):
        world, echo, _, _, _ = setup
        echo.ping()
        assert world.clock.now_us == 0.0
        assert world.counters.get("invoke.direct") == 1

    def test_nested_call_charged_relative_to_server(self, setup):
        world, echo, server, peer, _ = setup
        other = Echo(peer)
        with peer.activate():
            # peer->server is one crossing; server->peer (inside relay)
            # is another.
            echo.relay(other)
        assert world.counters.get("invoke.cross_domain") == 2

    def test_body_runs_in_server_domain(self, setup):
        _, echo, server, peer, _ = setup
        with peer.activate():
            assert echo.where_am_i() is server
        # And the caller's domain is restored afterwards.
        with peer.activate():
            echo.ping()
            assert current_domain() is peer


class TestPayloadAccounting:
    def test_bytes_in_scalars(self):
        assert bytes_in(42) == 0
        assert bytes_in("string") == 0
        assert bytes_in(None) == 0

    def test_bytes_in_bytes_like(self):
        assert bytes_in(b"abc") == 3
        assert bytes_in(bytearray(5)) == 5
        assert bytes_in(memoryview(b"xy")) == 2

    def test_bytes_in_containers(self):
        assert bytes_in({1: b"abcd", 2: b"ef"}) == 6
        assert bytes_in([b"a", (b"bc", 7)]) == 3

    def test_remote_payload_charged_both_ways(self, setup):
        world, echo, _, _, remote = setup
        with remote.activate():
            echo.bulk(b"x" * 1024)
        # Request carries 1 KB, reply 2 KB.
        assert world.network.bytes_moved == 3 * 1024

    def test_local_calls_carry_no_network_payload(self, setup):
        world, echo, _, peer, _ = setup
        with peer.activate():
            echo.bulk(b"x" * 1024)
        assert world.network.bytes_moved == 0


class TestRevocation:
    def test_revoked_object_raises(self, setup):
        _, echo, _, peer, _ = setup
        echo.revoke()
        with peer.activate():
            with pytest.raises(RevokedObjectError):
                echo.ping()

    def test_revocation_is_per_object(self, setup):
        _, echo, server, _, _ = setup
        other = Echo(server)
        echo.revoke()
        assert other.ping() == "pong"

    def test_check_live_helper(self, setup):
        _, echo, _, _, _ = setup
        echo.check_live()
        echo.revoke()
        with pytest.raises(RevokedObjectError):
            echo.check_live()


class TestCounters:
    def test_op_counter_by_name(self, setup):
        world, echo, _, peer, _ = setup
        with peer.activate():
            echo.ping()
            echo.ping()
        assert world.counters.get("op.ping") == 2

    def test_counters_delta(self, setup):
        world, echo, _, peer, _ = setup
        with peer.activate():
            echo.ping()
            snapshot = world.counters.snapshot()
            echo.ping()
        delta = world.counters.delta_since(snapshot)
        assert delta["op.ping"] == 1
