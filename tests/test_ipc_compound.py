"""Unit tests for compound remote invocation: region absorption,
per-destination batching, demultiplexed results, and resolve_path."""

import pytest

from repro.errors import NotAContextError, PermissionDeniedError
from repro.ipc.compound import (
    SKIPPED,
    CompoundInvocation,
    CompoundSubOpError,
    compound_region,
)
from repro.ipc.invocation import operation
from repro.ipc.object import SpringObject
from repro.naming.acl import Acl
from repro.naming.cache import NameCache
from repro.naming.context import MemoryContext
from repro.world import World


class Echo(SpringObject):
    @operation
    def ping(self) -> str:
        return "pong"

    @operation
    def bulk(self, data: bytes) -> bytes:
        return data

    @operation
    def fail(self) -> None:
        raise ValueError("boom")

    @operation
    def relay(self, other: "Echo") -> str:
        # Nested invocation made by *this* server's domain — must not be
        # absorbed by a region opened in the original caller's domain.
        return other.ping()


@pytest.fixture
def world():
    return World()


@pytest.fixture
def setup(world):
    node_a = world.create_node("a")
    node_b = world.create_node("b")
    node_c = world.create_node("c")
    client = node_a.create_domain("client")
    server_b = node_b.create_domain("server-b")
    server_c = node_c.create_domain("server-c")
    return world, client, Echo(server_b), Echo(server_c), node_a, node_b, node_c


class TestCompoundRegion:
    def test_n_calls_one_message(self, setup):
        world, client, echo_b, _, node_a, node_b, _ = setup
        with client.activate():
            with compound_region(world):
                for _ in range(5):
                    echo_b.ping()
        assert world.network.messages == 1
        assert world.network.message_count(node_a, node_b) == 1
        assert world.counters.get("invoke.network_batched") == 5
        assert world.counters.get("invoke.network") == 0
        assert world.counters.get("compound.batches") == 1
        assert world.counters.get("compound.batched_ops") == 5
        assert world.counters.get("compound.messages_saved") == 4

    def test_payload_bytes_are_summed(self, setup):
        world, client, echo_b, _, node_a, node_b, _ = setup
        with client.activate():
            with compound_region(world):
                echo_b.bulk(b"x" * 100)
                echo_b.bulk(b"y" * 200)
        # Requests travel a->b (300 bytes batched) and the replies ride
        # back b->a, both accounted per pair.
        assert world.network.bytes_count(node_a, node_b) == 300
        assert world.network.bytes_count(node_b, node_a) == 300
        assert world.network.messages == 1

    def test_one_message_per_destination(self, setup):
        world, client, echo_b, echo_c, node_a, node_b, node_c = setup
        with client.activate():
            with compound_region(world):
                echo_b.ping()
                echo_c.ping()
                echo_b.ping()
        assert world.network.messages == 2
        assert world.network.message_count(node_a, node_b) == 1
        assert world.network.message_count(node_a, node_c) == 1

    def test_local_and_cross_domain_calls_unaffected(self, setup):
        world, client, _, _, node_a, _, _ = setup
        local_echo = Echo(node_a.create_domain("peer"))
        with client.activate():
            with compound_region(world):
                local_echo.ping()
        assert world.network.messages == 0
        assert world.counters.get("invoke.cross_domain") == 1
        assert world.counters.get("compound.batches") == 0

    def test_nested_server_invocations_charge_normally(self, setup):
        world, client, echo_b, echo_c, _, node_b, node_c = setup
        with client.activate():
            with compound_region(world):
                echo_b.relay(echo_c)
        # relay itself is absorbed (1 message a->b at flush); the nested
        # ping is issued by server-b's domain and pays its own trip b->c.
        assert world.network.messages == 2
        assert world.network.message_count(node_b, node_c) == 1

    def test_region_restores_per_op_charging(self, setup):
        world, client, echo_b, _, _, _, _ = setup
        with client.activate():
            with compound_region(world):
                echo_b.ping()
            echo_b.ping()
            echo_b.ping()
        assert world.network.messages == 3  # 1 batched + 2 normal

    def test_empty_region_charges_nothing(self, setup):
        world, client, _, _, _, _, _ = setup
        with client.activate():
            with compound_region(world):
                pass
        assert world.network.messages == 0
        assert world.counters.get("compound.batches") == 0

    def test_no_active_domain_absorbs_nothing(self, setup):
        world, _, echo_b, _, _, _, _ = setup
        with compound_region(world):
            echo_b.ping()  # direct path: no caller domain, no charge
        assert world.network.messages == 0


class TestCompoundInvocation:
    def test_demultiplexed_results(self, setup):
        world, client, echo_b, echo_c, _, _, _ = setup
        batch = CompoundInvocation(world)
        assert batch.add(echo_b.ping) == 0
        assert batch.add(echo_c.bulk, b"data") == 1
        assert len(batch) == 2
        with client.activate():
            result = batch.commit()
        assert result.ok
        assert result[0] == "pong"
        assert result[1] == b"data"
        assert result.values() == ["pong", b"data"]
        assert world.network.messages == 2  # one per destination node
        assert world.counters.get("compound.commit") == 1

    def test_sub_op_failure_is_demuxed(self, setup):
        world, client, echo_b, _, _, _, _ = setup
        batch = CompoundInvocation(world)
        batch.add(echo_b.ping)
        batch.add(echo_b.fail)
        batch.add(echo_b.ping)
        with client.activate():
            result = batch.commit()
        assert not result.ok
        assert result.failed_index == 1
        assert result[0] == "pong"  # completed before the failure
        with pytest.raises(CompoundSubOpError) as exc_info:
            result[1]
        assert isinstance(exc_info.value.cause, ValueError)
        assert exc_info.value.op_name == "fail"
        # Fail-fast: op 2 never ran; asking for it surfaces the abort.
        assert result.outcomes[2] is SKIPPED
        with pytest.raises(CompoundSubOpError):
            result[2]

    def test_fail_fast_off_runs_remaining_ops(self, setup):
        world, client, echo_b, _, _, _, _ = setup
        batch = CompoundInvocation(world, fail_fast=False)
        batch.add(echo_b.fail)
        batch.add(echo_b.ping)
        with client.activate():
            result = batch.commit()
        assert result.failed_index == 0
        assert result[1] == "pong"

    def test_flush_charges_ops_that_ran_before_failure(self, setup):
        world, client, echo_b, _, node_a, node_b, _ = setup
        batch = CompoundInvocation(world)
        batch.add(echo_b.ping)
        batch.add(echo_b.fail)
        with client.activate():
            batch.commit()
        # Both absorbed ops went over the wire before the failure was
        # demuxed; the shared round trip is still charged.
        assert world.network.message_count(node_a, node_b) == 1


class TestResolvePath:
    @pytest.fixture
    def tree(self, world):
        node_a = world.create_node("a")
        node_b = world.create_node("b")
        client = node_a.create_domain("client")
        root = MemoryContext(node_b.nucleus)
        mid = root.create_context("mid")
        mid.bind("leaf", "value")
        return world, client, root, mid, node_a, node_b

    def test_multi_component_walk_is_one_message(self, tree):
        world, client, root, mid, node_a, node_b = tree
        with client.activate():
            resolved = root.resolve_path("mid/leaf")
        assert resolved.found
        assert resolved.target == "value"
        # One client->server trip; the per-component hops ran server-side.
        assert world.network.message_count(node_a, node_b) == 1
        assert root.oid in resolved.path_oids
        assert mid.oid in resolved.path_oids

    def test_missing_name_returned_not_raised(self, tree):
        world, client, root, mid, _, _ = tree
        with client.activate():
            resolved = root.resolve_path("mid/ghost")
        assert not resolved.found
        assert resolved.target is None
        assert resolved.missing == "mid/ghost"
        assert mid.oid in resolved.path_oids  # enough to invalidate on bind

    def test_non_context_intermediate_raises(self, tree):
        world, client, root, mid, _, _ = tree
        with client.activate():
            with pytest.raises(NotAContextError):
                root.resolve_path("mid/leaf/deeper")

    def test_walk_crossing_nodes_delegates_once(self, world):
        node_a = world.create_node("a")
        node_b = world.create_node("b")
        node_c = world.create_node("c")
        client = node_a.create_domain("client")
        root = MemoryContext(node_b.nucleus)
        far = MemoryContext(node_c.nucleus)
        root.bind("far", far)
        far.bind("leaf", "far-value")
        with client.activate():
            resolved = root.resolve_path("far/leaf")
        assert resolved.target == "far-value"
        # a->b for the walk, b->c for the delegated remainder.
        assert world.network.message_count(node_a, node_b) == 1
        assert world.network.message_count(node_b, node_c) == 1
        assert far.oid in resolved.path_oids

    def test_first_hop_acl_checked_for_real_client(self, world):
        node_a = world.create_node("a")
        node_b = world.create_node("b")
        client = world.create_user_domain(node_a)
        locked = MemoryContext(
            node_b.nucleus,
            acl=Acl(owner="root", world_resolve=False, world_bind=False),
        )
        locked.bind("x", 1)
        with client.activate():
            with pytest.raises(PermissionDeniedError):
                locked.resolve_path("x")


class TestOneHopNameCache:
    def test_one_hop_miss_uses_single_message(self, world):
        node_a = world.create_node("a")
        node_b = world.create_node("b")
        client = node_a.create_domain("client")
        root = MemoryContext(node_b.nucleus)
        sub = root.create_context("sub")
        sub.bind("leaf", "v")
        cache = NameCache(world, one_hop=True)
        with client.activate():
            assert cache.resolve(root, "sub/leaf") == "v"
        assert world.network.message_count(node_a, node_b) == 1
        # Invalidation still precise: mutate the traversed context.
        sub.bind("other", 2)
        assert len(cache) == 0
