"""Tests for VMM memory pressure: capacity bounds, clean-first
reclamation, dirty write-back, and end-to-end correctness under
thrashing."""

import pytest

from repro.fs.sfs import create_sfs
from repro.storage.block_device import RamDevice
from repro.types import PAGE_SIZE, AccessRights
from repro.world import World

RO = AccessRights.READ_ONLY
RW = AccessRights.READ_WRITE


@pytest.fixture
def env(world, node, user):
    device = RamDevice(node.nucleus, "ram", 8192)
    stack = create_sfs(node, device)
    with user.activate():
        f = stack.top.create_file("big.dat")
        f.write(0, bytes(range(256)) * (64 * PAGE_SIZE // 256))
        f.sync()
    return stack, user


class TestCapacityBound:
    def test_resident_pages_never_exceed_capacity(self, node, env, user):
        stack, user = env
        node.vmm.capacity_pages = 8
        with user.activate():
            f = stack.top.resolve("big.dat")
            mapping = node.vmm.create_address_space("t").map(f, RO)
            for page in range(32):
                mapping.read(page * PAGE_SIZE, 16)
                assert node.vmm.resident_pages() <= 8
        assert node.vmm.evictions > 0

    def test_unlimited_by_default(self, node, env, user):
        stack, user = env
        with user.activate():
            f = stack.top.resolve("big.dat")
            mapping = node.vmm.create_address_space("t").map(f, RO)
            for page in range(32):
                mapping.read(page * PAGE_SIZE, 16)
        assert node.vmm.evictions == 0
        assert node.vmm.resident_pages() == 32

    def test_clean_pages_evicted_before_dirty(self, node, env, user):
        stack, user = env
        node.vmm.capacity_pages = 4
        with user.activate():
            f = stack.top.resolve("big.dat")
            mapping = node.vmm.create_address_space("t").map(f, RW)
            mapping.write(0, b"DIRTY")  # page 0 dirty
            for page in range(1, 4):
                mapping.read(page * PAGE_SIZE, 16)  # fill with clean
            # Next fault must evict a clean page, keeping page 0 dirty
            # in memory (no write-back needed yet).
            page_outs_before = node.world.counters.get("coherency.page_out")
            mapping.read(5 * PAGE_SIZE, 16)
            assert node.world.counters.get("coherency.page_out") == page_outs_before
            assert mapping.cache.store.get(0).dirty

    def test_dirty_pages_written_back_when_needed(self, node, env, user):
        stack, user = env
        node.vmm.capacity_pages = 2
        with user.activate():
            f = stack.top.resolve("big.dat")
            mapping = node.vmm.create_address_space("t").map(f, RW)
            # Dirty more pages than fit: reclamation must page out.
            for page in range(6):
                mapping.write(page * PAGE_SIZE, bytes([page + 1]) * 32)
            # Every byte still reads back correctly (refaulted from the
            # coherency layer, which received the page-outs).
            for page in range(6):
                assert mapping.read(page * PAGE_SIZE, 32) == bytes(
                    [page + 1]
                ) * 32

    def test_correctness_under_thrash_matches_oracle(self, node, env, user):
        stack, user = env
        node.vmm.capacity_pages = 3
        oracle = bytearray(bytes(range(256)) * (64 * PAGE_SIZE // 256))
        with user.activate():
            f = stack.top.resolve("big.dat")
            mapping = node.vmm.create_address_space("t").map(f, RW)
            import random

            rng = random.Random(7)
            for step in range(60):
                page = rng.randrange(24)
                if rng.random() < 0.5:
                    data = bytes([step % 251]) * 64
                    mapping.write(page * PAGE_SIZE, data)
                    oracle[page * PAGE_SIZE : page * PAGE_SIZE + 64] = data
                else:
                    got = mapping.read(page * PAGE_SIZE, 64)
                    assert got == bytes(
                        oracle[page * PAGE_SIZE : page * PAGE_SIZE + 64]
                    ), f"step {step} page {page}"

    def test_sync_after_thrash_persists_everything(self, node, env, user):
        stack, user = env
        node.vmm.capacity_pages = 2
        with user.activate():
            f = stack.top.resolve("big.dat")
            mapping = node.vmm.create_address_space("t").map(f, RW)
            for page in range(8):
                mapping.write(page * PAGE_SIZE, bytes([page + 50]) * 16)
            mapping.cache.sync()
            stack.top.resolve("big.dat").sync()
            stack.top.sync_fs()
        volume = stack.disk_layer.volume
        ino = volume.lookup(volume.sb.root_ino, "big.dat")
        for page in range(8):
            assert (
                volume.read_data(ino, page * PAGE_SIZE, 16)
                == bytes([page + 50]) * 16
            )
