"""Tests for the optional event tracer."""

import pytest

from repro.fs.sfs import create_sfs
from repro.sim.trace import Tracer
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE
from repro.world import World


class TestTracerUnit:
    def test_records_in_order(self):
        tracer = Tracer()
        tracer.record(1.0, "a", "first")
        tracer.record(2.0, "b", "second", extra=1)
        events = tracer.events()
        assert [e.name for e in events] == ["first", "second"]
        assert events[1].detail == {"extra": 1}
        assert events[0].seq < events[1].seq

    def test_capacity_ring(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.record(float(i), "x", f"e{i}")
        assert tracer.names() == ["e2", "e3", "e4"]
        assert tracer.dropped == 2

    def test_drop_accounting_invariants(self):
        """seq advances for every record (even evicting ones); dropped
        counts exactly the evictions; the oldest retained event's seq is
        always dropped + 1 — the documented Tracer.record contract."""
        tracer = Tracer(capacity=3)
        for total in range(1, 10):
            tracer.record(float(total), "x", f"e{total}")
            assert len(tracer) == min(total, 3)
            assert tracer.dropped == max(0, total - 3)
            events = tracer.events()
            assert events[0].seq == tracer.dropped + 1
            assert events[-1].seq == total  # no seq reuse across drops
            assert [e.seq for e in events] == list(
                range(events[0].seq, total + 1)
            )

    def test_seq_is_global_across_clear(self):
        """clear() empties the ring and resets dropped, but the global
        event id keeps advancing — ids are never reissued."""
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.record(float(i), "x", f"e{i}")
        tracer.clear()
        assert tracer.dropped == 0
        tracer.record(9.0, "x", "after")
        assert tracer.events()[0].seq == 6

    def test_render_reports_drop_count(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.record(float(i), "x", f"e{i}")
        assert "(3 earlier events dropped)" in tracer.render()

    def test_category_filter(self):
        tracer = Tracer()
        tracer.record(0, "invoke", "a")
        tracer.record(0, "disk", "b")
        tracer.record(0, "invoke", "c")
        assert tracer.names("invoke") == ["a", "c"]

    def test_render_contains_events(self):
        tracer = Tracer()
        tracer.record(123.4, "net", "message", src="a")
        out = tracer.render()
        assert "message" in out and "src=a" in out

    def test_clear(self):
        tracer = Tracer()
        tracer.record(0, "x", "y")
        tracer.clear()
        assert len(tracer) == 0


class TestTracerIntegration:
    def test_disabled_by_default(self, world):
        assert world.tracer is None
        world.trace("x", "should not explode")

    def test_invocations_traced(self, world, node, device, user):
        stack = create_sfs(node, device)
        tracer = world.enable_tracing()
        with user.activate():
            f = stack.top.create_file("t.dat")
            f.write(0, b"traced")
        invokes = tracer.events("invoke")
        assert invokes, "no invocations traced"
        assert any("create_file" in e.name for e in invokes)
        # The path and placement are visible in the detail.
        assert any(e.detail.get("path") == "cross_domain" for e in invokes)

    def test_disk_transfers_traced(self, world, node, user):
        device = BlockDevice(node.nucleus, "sd0", 4096)
        stack = create_sfs(node, device, cache=False)
        tracer = world.enable_tracing()
        with user.activate():
            f = stack.top.create_file("d.dat")
            f.write(0, b"x" * PAGE_SIZE)
        assert tracer.events("disk")

    def test_network_messages_traced(self):
        from repro.fs.dfs import export_dfs, mount_remote
        from repro.storage.block_device import RamDevice

        world = World()
        server = world.create_node("server")
        client = world.create_node("client")
        stack = create_sfs(server, RamDevice(server.nucleus, "ram", 4096))
        dfs = export_dfs(server, stack.top)
        mount_remote(client, server, "dfs")
        tracer = world.enable_tracing()
        cu = world.create_user_domain(client, "cu")
        with cu.activate():
            ctx = client.fs_context.resolve("dfs@server")
            ctx.create_file("r.dat").write(0, b"remote")
        net = tracer.events("network")
        assert net
        assert net[0].detail["src"] == "client"
        assert net[0].detail["dst"] == "server"

    def test_trace_tells_the_fig9_story(self):
        """A remote read's trace shows the layer-by-layer flow the
        paper's sec. 4.5 walkthrough narrates."""
        from repro.fs.creators import (
            LayerSpec,
            build_stack,
            register_standard_creators,
        )
        from repro.fs.dfs import mount_remote
        from repro.storage.block_device import RamDevice

        world = World()
        server = world.create_node("server")
        client = world.create_node("client")
        register_standard_creators(server)
        sfs = create_sfs(server, RamDevice(server.nucleus, "ram", 8192))
        compfs, dfs = build_stack(
            server, sfs.top, [LayerSpec("compfs"), LayerSpec("dfs")],
            export_as="stacked",
        )
        mount_remote(client, server, "stacked")
        su = world.create_user_domain(server, "su")
        cu = world.create_user_domain(client, "cu")
        with su.activate():
            f = dfs.create_file("walk.dat")
            f.write(0, b"w" * PAGE_SIZE)
            f.sync()
        tracer = world.enable_tracing()
        with cu.activate():
            rf = client.fs_context.resolve("stacked@server").resolve("walk.dat")
            rf.read(0, PAGE_SIZE)
        names = tracer.names("invoke")
        # The read hit DfsFile, then CompFile, then the SFS layers.
        assert any(name.startswith("DfsFile.read") for name in names)
        assert any(name.startswith("CompFile.read") for name in names)
