"""Unit tests for the VMM: binding, shared caches, mappings, faults,
write-back, and the VMM's cache-object coherency operations.

Uses a scripted in-test pager so the VM layer is exercised in isolation
from the file system layers.
"""

import pytest

from repro.errors import ChannelClosedError, OutOfRangeError, VmError
from repro.ipc.invocation import operation
from repro.types import PAGE_SIZE, AccessRights
from repro.vm.channel import BindResult
from repro.vm.memory_object import CacheManager, MemoryObject
from repro.vm.pager_base import ChannelRegistry
from repro.vm.pager_object import PagerObject

RO = AccessRights.READ_ONLY
RW = AccessRights.READ_WRITE


class ScriptedPager(PagerObject):
    """A pager over an in-memory bytearray, with call logging."""

    def __init__(self, domain, backing: bytearray, log: list) -> None:
        super().__init__(domain)
        self.backing = backing
        self.log = log

    @operation
    def page_in(self, offset, size, access):
        self.log.append(("page_in", offset, size, access))
        return bytes(self.backing[offset : offset + size])

    @operation
    def page_out(self, offset, size, data):
        self.log.append(("page_out", offset, size))
        self._apply(offset, size, data)

    @operation
    def write_out(self, offset, size, data):
        self.log.append(("write_out", offset, size))
        self._apply(offset, size, data)

    @operation
    def sync(self, offset, size, data):
        self.log.append(("sync", offset, size))
        self._apply(offset, size, data)

    def _apply(self, offset, size, data):
        end = offset + min(size, len(data))
        if end > len(self.backing):
            self.backing.extend(bytes(end - len(self.backing)))
        self.backing[offset:end] = data[: end - offset]

    @operation
    def done_with_pager_object(self):
        self.log.append(("done",))


class ScriptedMemoryObject(MemoryObject):
    """Memory object whose pager is a ScriptedPager, with proper channel
    reuse semantics via ChannelRegistry."""

    registry_by_source = {}

    def __init__(self, domain, source_key: str, backing: bytearray, log: list):
        super().__init__(domain)
        self.source_key = source_key
        self.backing = backing
        self.log = log
        self.registry = ScriptedMemoryObject.registry_by_source.setdefault(
            source_key, ChannelRegistry()
        )

    @operation
    def bind(self, cache_manager, requested_access, offset, length):
        channel, _ = self.registry.get_or_create(
            self.source_key,
            cache_manager,
            lambda: ScriptedPager(self.domain, self.backing, self.log),
            self.source_key,
        )
        return BindResult(channel.cache_rights, offset)

    @operation
    def get_length(self):
        return len(self.backing)

    @operation
    def set_length(self, length):
        del self.backing[length:]


@pytest.fixture(autouse=True)
def _clean_registry():
    ScriptedMemoryObject.registry_by_source = {}
    yield


@pytest.fixture
def pager_env(world, node):
    log = []
    backing = bytearray(b"P" * (4 * PAGE_SIZE))
    server = node.create_domain("pager-server")
    memobj = ScriptedMemoryObject(server, "src1", backing, log)
    return memobj, backing, log


class TestMappingBasics:
    def test_map_and_read(self, node, pager_env):
        memobj, backing, log = pager_env
        aspace = node.vmm.create_address_space("t")
        mapping = aspace.map(memobj, RO)
        assert mapping.read(0, 4) == b"PPPP"
        assert log[0][0] == "page_in"

    def test_faults_only_once_per_page(self, node, pager_env):
        memobj, _, log = pager_env
        mapping = node.vmm.create_address_space("t").map(memobj, RO)
        mapping.read(0, 10)
        mapping.read(5, 10)
        mapping.read(100, 10)
        assert len([e for e in log if e[0] == "page_in"]) == 1

    def test_read_spanning_pages_faults_each(self, node, pager_env):
        memobj, _, log = pager_env
        mapping = node.vmm.create_address_space("t").map(memobj, RO)
        mapping.read(PAGE_SIZE - 10, 20)
        assert len([e for e in log if e[0] == "page_in"]) == 2

    def test_write_requires_writable_mapping(self, node, pager_env):
        memobj, _, _ = pager_env
        mapping = node.vmm.create_address_space("t").map(memobj, RO)
        with pytest.raises(VmError):
            mapping.write(0, b"nope")

    def test_write_faults_rw(self, node, pager_env):
        memobj, _, log = pager_env
        mapping = node.vmm.create_address_space("t").map(memobj, RW)
        mapping.write(0, b"LOCAL")
        assert ("page_in", 0, PAGE_SIZE, RW) in log
        assert mapping.read(0, 5) == b"LOCAL"

    def test_ro_then_rw_upgrade_refaults(self, node, pager_env):
        memobj, _, log = pager_env
        mapping = node.vmm.create_address_space("t").map(memobj, RW)
        mapping.read(0, 4)
        mapping.write(0, b"W")
        accesses = [e[3] for e in log if e[0] == "page_in"]
        assert accesses == [RO, RW]

    def test_out_of_range_access_rejected(self, node, pager_env):
        memobj, _, _ = pager_env
        mapping = node.vmm.create_address_space("t").map(memobj, RO, 0, PAGE_SIZE)
        with pytest.raises(OutOfRangeError):
            mapping.read(PAGE_SIZE - 2, 10)

    def test_unmap_blocks_access(self, node, pager_env):
        memobj, _, _ = pager_env
        aspace = node.vmm.create_address_space("t")
        mapping = aspace.map(memobj, RO)
        aspace.unmap(mapping)
        with pytest.raises(VmError):
            mapping.read(0, 1)

    def test_partial_mapping_offset(self, node, pager_env):
        memobj, backing, _ = pager_env
        backing[PAGE_SIZE : PAGE_SIZE + 4] = b"HERE"
        mapping = node.vmm.create_address_space("t").map(
            memobj, RO, offset=PAGE_SIZE, length=PAGE_SIZE
        )
        assert mapping.read(0, 4) == b"HERE"


class TestSharedCaching:
    def test_equivalent_objects_share_cache(self, world, node, pager_env):
        """Two memory objects for the same source -> same cache_rights ->
        same VmCache (paper sec. 3.3.2)."""
        memobj, backing, log = pager_env
        twin = ScriptedMemoryObject(memobj.domain, "src1", backing, log)
        aspace = node.vmm.create_address_space("t")
        m1 = aspace.map(memobj, RW)
        m2 = aspace.map(twin, RW)
        assert m1.cache is m2.cache
        m1.write(0, b"SHARED")
        assert m2.read(0, 6) == b"SHARED"
        assert len([e for e in log if e[0] == "page_in"]) == 1

    def test_distinct_sources_do_not_share(self, world, node):
        log = []
        a = ScriptedMemoryObject(
            node.create_domain("pa"), "a", bytearray(PAGE_SIZE), log
        )
        b = ScriptedMemoryObject(
            node.create_domain("pb"), "b", bytearray(PAGE_SIZE), log
        )
        aspace = node.vmm.create_address_space("t")
        assert aspace.map(a, RO).cache is not aspace.map(b, RO).cache

    def test_channel_reused_across_binds(self, world, node, pager_env):
        memobj, _, _ = pager_env
        aspace = node.vmm.create_address_space("t")
        aspace.map(memobj, RO)
        aspace.map(memobj, RO)
        assert world.counters.get("vmm.channel_created") == 1


class TestWriteBack:
    def test_sync_pushes_dirty_pages(self, node, pager_env):
        memobj, backing, log = pager_env
        mapping = node.vmm.create_address_space("t").map(memobj, RW)
        mapping.write(0, b"DIRTY")
        assert bytes(backing[:5]) == b"PPPPP"
        assert mapping.cache.sync() == 1
        assert bytes(backing[:5]) == b"DIRTY"
        assert mapping.cache.sync() == 0  # clean now

    def test_flush_pages_out_and_drops(self, node, pager_env):
        memobj, backing, log = pager_env
        mapping = node.vmm.create_address_space("t").map(memobj, RW)
        mapping.write(0, b"GONE")
        assert mapping.cache.flush() == 1
        assert len(mapping.cache.store) == 0
        assert bytes(backing[:4]) == b"GONE"

    def test_vmm_sync_all(self, node, pager_env):
        memobj, backing, _ = pager_env
        mapping = node.vmm.create_address_space("t").map(memobj, RW)
        mapping.write(10, b"ALL")
        assert node.vmm.sync_all() == 1
        assert bytes(backing[10:13]) == b"ALL"


class TestVmmCacheObject:
    """The pager-driven coherency operations against the VMM's cache."""

    @pytest.fixture
    def bound(self, node, pager_env):
        memobj, backing, log = pager_env
        mapping = node.vmm.create_address_space("t").map(memobj, RW)
        mapping.write(0, b"MODIFIED")
        cache_obj = mapping.cache.channel.cache_object
        return mapping, cache_obj, backing

    def test_flush_back_returns_modified_and_drops(self, bound):
        mapping, cache_obj, _ = bound
        modified = cache_obj.flush_back(0, PAGE_SIZE)
        assert modified[0][:8] == b"MODIFIED"
        assert len(mapping.cache.store) == 0

    def test_deny_writes_downgrades(self, bound):
        mapping, cache_obj, _ = bound
        modified = cache_obj.deny_writes(0, PAGE_SIZE)
        assert modified[0][:8] == b"MODIFIED"
        page = mapping.cache.store.get(0)
        assert page.rights is RO and not page.dirty

    def test_write_back_keeps_mode(self, bound):
        mapping, cache_obj, _ = bound
        modified = cache_obj.write_back(0, PAGE_SIZE)
        assert modified[0][:8] == b"MODIFIED"
        page = mapping.cache.store.get(0)
        assert page.rights is RW and not page.dirty

    def test_clean_cache_returns_nothing(self, bound):
        mapping, cache_obj, _ = bound
        cache_obj.write_back(0, PAGE_SIZE)
        assert cache_obj.write_back(0, PAGE_SIZE) == {}

    def test_delete_range(self, bound):
        mapping, cache_obj, _ = bound
        cache_obj.delete_range(0, PAGE_SIZE)
        assert len(mapping.cache.store) == 0

    def test_zero_fill(self, bound):
        mapping, cache_obj, _ = bound
        cache_obj.zero_fill(0, PAGE_SIZE)
        assert mapping.read(0, 8) == bytes(8)

    def test_populate(self, bound):
        mapping, cache_obj, _ = bound
        cache_obj.populate(0, PAGE_SIZE, RO, b"PUSHED" + bytes(PAGE_SIZE - 6))
        assert mapping.read(0, 6) == b"PUSHED"

    def test_destroy_cache_kills_mapping(self, bound):
        mapping, cache_obj, _ = bound
        cache_obj.destroy_cache()
        with pytest.raises(ChannelClosedError):
            mapping.read(PAGE_SIZE, 1)  # forces a fault on the dead cache
