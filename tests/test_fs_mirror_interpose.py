"""Unit tests for MIRRORFS (replication over two stacks) and the
per-file / name-space interposition machinery of paper sec. 5."""

import codecs

import pytest

from repro.errors import FsError, PermissionDeniedError, ReadOnlyError, StackingError
from repro.fs.interposer import (
    AuditFile,
    InterposedFile,
    ReadOnlyFile,
    TransformFile,
    WatchdogContext,
    interpose_on_name,
)
from repro.fs.mirrorfs import MirrorFs
from repro.fs.sfs import create_sfs
from repro.ipc.domain import Credentials
from repro.storage.block_device import BlockDevice
from repro.types import AccessRights


@pytest.fixture
def mirror_env(world, node):
    dev_a = BlockDevice(node.nucleus, "sda", 4096)
    dev_b = BlockDevice(node.nucleus, "sdb", 4096)
    sfs_a = create_sfs(node, dev_a, name="sfs-a")
    sfs_b = create_sfs(node, dev_b, name="sfs-b")
    mirror = MirrorFs(node.create_domain("mirror", Credentials("m", True)))
    mirror.stack_on(sfs_a.top)
    mirror.stack_on(sfs_b.top)
    user = world.create_user_domain(node)
    return world, node, sfs_a, sfs_b, mirror, dev_a, dev_b, user


class TestMirrorFs:
    def test_requires_two_replicas(self, world, node):
        lonely = MirrorFs(node.create_domain("m1", Credentials("m", True)))
        with pytest.raises(FsError):
            lonely.create_file("x")

    def test_max_two_unders(self, mirror_env):
        _, node, sfs_a, *_ = mirror_env
        mirror = mirror_env[4]
        with pytest.raises(StackingError):
            mirror.stack_on(sfs_a.top)

    def test_write_reaches_both_replicas(self, mirror_env):
        world, node, sfs_a, sfs_b, mirror, _, _, user = mirror_env
        with user.activate():
            f = mirror.create_file("r.dat")
            f.write(0, b"replicated")
            assert sfs_a.top.resolve("r.dat").read(0, 10) == b"replicated"
            assert sfs_b.top.resolve("r.dat").read(0, 10) == b"replicated"

    def test_read_from_primary(self, mirror_env):
        world, node, sfs_a, sfs_b, mirror, _, _, user = mirror_env
        with user.activate():
            f = mirror.create_file("r.dat")
            f.write(0, b"data")
            assert f.read(0, 4) == b"data"
        assert mirror.failovers == 0

    def test_failover_on_primary_error(self, mirror_env):
        world, node, sfs_a, sfs_b, mirror, dev_a, _, user = mirror_env
        with user.activate():
            f = mirror.create_file("r.dat")
            f.write(0, b"survives")
            f.sync()
        # Break the primary device *and* bypass its cache by injecting
        # errors into the attr path too: easiest is to drop the cached
        # pages by using uncached replicas — instead, just corrupt the
        # device and truncate the coherency cache.
        state = next(iter(sfs_a.coherency_layer._states.values()))
        state.store.clear()
        for block in range(dev_a.num_blocks):
            dev_a.inject_bad_block(block)
        with user.activate():
            assert mirror.resolve("r.dat").read(0, 8) == b"survives"
        assert mirror.failovers >= 1

    def test_all_replicas_failed(self, mirror_env):
        world, node, sfs_a, sfs_b, mirror, dev_a, dev_b, user = mirror_env
        with user.activate():
            f = mirror.create_file("r.dat")
            f.write(0, b"x")
            f.sync()
        for stack in (sfs_a, sfs_b):
            state_map = stack.coherency_layer._states
            for state in state_map.values():
                state.store.clear()
        for dev in (dev_a, dev_b):
            for block in range(dev.num_blocks):
                dev.inject_bad_block(block)
        with user.activate():
            with pytest.raises(FsError, match="all replicas failed"):
                mirror.resolve("r.dat").read(0, 1)

    def test_scrub_clean(self, mirror_env):
        *_, mirror, _, _, user = mirror_env
        with user.activate():
            f = mirror.create_file("r.dat")
            f.write(0, b"same everywhere")
            assert mirror.scrub("r.dat") == []

    def test_scrub_detects_divergence(self, mirror_env):
        world, node, sfs_a, sfs_b, mirror, _, _, user = mirror_env
        with user.activate():
            f = mirror.create_file("r.dat")
            f.write(0, b"identical")
            # Divergence: write replica B directly, behind the mirror.
            sfs_b.top.resolve("r.dat").write(0, b"DIFFERENT")
            problems = mirror.scrub("r.dat")
        assert problems

    def test_repair_restores_agreement(self, mirror_env):
        world, node, sfs_a, sfs_b, mirror, _, _, user = mirror_env
        with user.activate():
            f = mirror.create_file("r.dat")
            f.write(0, b"identical")
            sfs_b.top.resolve("r.dat").write(0, b"DIVERGENT")
            mirror.repair("r.dat")
            assert mirror.scrub("r.dat") == []
            assert sfs_b.top.resolve("r.dat").read(0, 9) == b"identical"

    def test_unlink_removes_from_both(self, mirror_env):
        world, node, sfs_a, sfs_b, mirror, _, _, user = mirror_env
        with user.activate():
            mirror.create_file("gone.dat")
            mirror.unbind("gone.dat")
            assert "gone.dat" not in [n for n, _ in sfs_a.top.list_bindings()]
            assert "gone.dat" not in [n for n, _ in sfs_b.top.list_bindings()]

    def test_writable_mapping_rejected(self, mirror_env):
        *_, mirror, _, _, user = mirror_env
        node = mirror_env[1]
        with user.activate():
            f = mirror.create_file("m.dat")
            f.write(0, b"x" * 4096)
            with pytest.raises(FsError):
                node.vmm.create_address_space("t").map(
                    f, AccessRights.READ_WRITE
                )
            mapping = node.vmm.create_address_space("t2").map(
                f, AccessRights.READ_ONLY
            )
            assert mapping.read(0, 1) == b"x"


@pytest.fixture
def files(world, node, device, user):
    sfs = create_sfs(node, device)
    with user.activate():
        f = sfs.top.create_file("target.txt")
        f.write(0, b"original content")
    return world, node, sfs, user


class TestFileInterposers:
    def test_plain_forwarding(self, files):
        world, node, sfs, user = files
        with user.activate():
            wrapped = InterposedFile(node.nucleus, sfs.top.resolve("target.txt"))
            assert wrapped.read(0, 8) == b"original"
            wrapped.write(0, b"UPDATED!")
            assert sfs.top.resolve("target.txt").read(0, 8) == b"UPDATED!"
            assert wrapped.get_attributes().size == 16

    def test_audit_file_logs(self, files):
        world, node, sfs, user = files
        with user.activate():
            audit = AuditFile(node.nucleus, sfs.top.resolve("target.txt"))
            audit.read(0, 4)
            audit.write(4, b"zz")
            audit.read(2, 2)
        assert audit.audit_log == [
            ("read", 0, 4),
            ("write", 4, 2),
            ("read", 2, 2),
        ]

    def test_readonly_file_blocks_mutation(self, files):
        world, node, sfs, user = files
        with user.activate():
            guard = ReadOnlyFile(node.nucleus, sfs.top.resolve("target.txt"))
            assert guard.read(0, 8) == b"original"
            with pytest.raises(ReadOnlyError):
                guard.write(0, b"nope")
            with pytest.raises(ReadOnlyError):
                guard.set_length(0)
            with pytest.raises(ReadOnlyError):
                guard.check_access(AccessRights.READ_WRITE)
            # The original is untouched.
            assert sfs.top.resolve("target.txt").read(0, 8) == b"original"

    def test_readonly_denies_writable_mapping(self, files):
        world, node, sfs, user = files
        with user.activate():
            guard = ReadOnlyFile(node.nucleus, sfs.top.resolve("target.txt"))
            with pytest.raises(ReadOnlyError):
                node.vmm.create_address_space("t").map(
                    guard, AccessRights.READ_WRITE
                )
            ro = node.vmm.create_address_space("t2").map(
                guard, AccessRights.READ_ONLY
            )
            assert ro.read(0, 8) == b"original"

    def test_transform_file_roundtrip(self, files):
        world, node, sfs, user = files
        rot13 = lambda b: codecs.encode(b.decode("latin1"), "rot13").encode("latin1")
        with user.activate():
            tf = TransformFile(
                node.nucleus,
                sfs.top.resolve("target.txt"),
                encode=rot13,
                decode=rot13,
            )
            tf.write(0, b"hello")
            assert tf.read(0, 5) == b"hello"
            assert sfs.top.resolve("target.txt").read(0, 5) == b"uryyb"

    def test_transform_denies_mapping(self, files):
        world, node, sfs, user = files
        with user.activate():
            tf = TransformFile(
                node.nucleus,
                sfs.top.resolve("target.txt"),
                encode=lambda b: b,
                decode=lambda b: b,
            )
            with pytest.raises(PermissionDeniedError):
                node.vmm.create_address_space("t").map(
                    tf, AccessRights.READ_ONLY
                )


class TestWatchdogContext:
    def test_selective_interception(self, files):
        world, node, sfs, user = files
        watchdog = WatchdogContext(node.nucleus, sfs.top)
        watchdog.watch("target.txt", lambda f: ReadOnlyFile(node.nucleus, f))
        with user.activate():
            sfs.top.create_file("free.txt").write(0, b"untouched")
            guarded = watchdog.resolve("target.txt")
            with pytest.raises(ReadOnlyError):
                guarded.write(0, b"x")
            free = watchdog.resolve("free.txt")
            free.write(0, b"fine")  # not intercepted
        assert watchdog.intercepted == ["target.txt"]

    def test_interpose_on_name_splices(self, files):
        world, node, sfs, user = files
        node.fs_context.bind("guarded", sfs.top)
        watchdog = interpose_on_name(node.fs_context, "guarded", node.nucleus)
        watchdog.watch("target.txt", lambda f: AuditFile(node.nucleus, f))
        with user.activate():
            via_ns = node.fs_context.resolve("guarded")
            assert via_ns is watchdog  # the name space now serves the spy
            via_ns.resolve("target.txt").read(0, 4)
        assert world.counters.get("watchdog.intercepted") == 1

    def test_interpose_requires_bind_rights(self, files, world):
        from repro.naming.acl import system_acl
        from repro.naming.context import MemoryContext

        _, node, sfs, user = files
        protected = MemoryContext(node.nucleus, system_acl("nucleus"))
        protected._bindings["dir"] = sfs.top
        with user.activate():
            with pytest.raises(PermissionDeniedError):
                interpose_on_name(protected, "dir", user)

    def test_interpose_on_non_context_rejected(self, files):
        world, node, sfs, user = files
        node.fs_context.bind("just-a-value", 42)
        with pytest.raises(PermissionDeniedError):
            interpose_on_name(node.fs_context, "just-a-value", node.nucleus)
