"""Unit tests for the cost model and charger calibration anchors."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.costs import Charger, CostModel
from repro.types import PAGE_SIZE


@pytest.fixture
def charger():
    return Charger(SimClock(), CostModel())


class TestCostModel:
    def test_disk_io_matches_paper_anchor(self):
        """Uncached 4KB write is 13.7 ms in Table 2; the disk transfer
        must land in that regime."""
        model = CostModel()
        assert 13_000 <= model.disk_io_us(PAGE_SIZE) <= 14_500

    def test_disk_io_scales_with_size(self):
        model = CostModel()
        assert model.disk_io_us(2 * PAGE_SIZE) > model.disk_io_us(PAGE_SIZE)

    def test_network_transfer_includes_rtt(self):
        model = CostModel()
        assert model.network_transfer_us(0) == model.network_rtt_us

    def test_network_payload_charged_per_kb(self):
        model = CostModel()
        delta = model.network_transfer_us(2048) - model.network_transfer_us(1024)
        assert delta == pytest.approx(model.network_per_kb_us)

    def test_cross_domain_much_cheaper_than_disk(self):
        """The basis of Table 2's uncached rows."""
        model = CostModel()
        assert model.disk_io_us(PAGE_SIZE) > 50 * model.cross_domain_call_us

    def test_model_is_plain_data(self):
        fast = CostModel(disk_seek_us=0.0, disk_rotation_us=0.0)
        assert fast.disk_io_us(1024) == fast.disk_xfer_per_kb_us


class TestCharger:
    def test_categories_routed(self, charger):
        charger.cross_domain_call()
        charger.disk_io(PAGE_SIZE)
        charger.network(1024)
        charger.local_call()
        clock = charger.clock
        assert clock.charged("cross_domain") == charger.model.cross_domain_call_us
        assert clock.charged("disk") > 0
        assert clock.charged("network") > 0
        assert clock.charged("local_call") == charger.model.local_call_us

    def test_memcpy_proportional(self, charger):
        charger.memcpy(PAGE_SIZE)
        first = charger.clock.now_us
        charger.memcpy(2 * PAGE_SIZE)
        assert charger.clock.now_us - first == pytest.approx(2 * first)

    def test_named_fs_charges_advance_clock(self, charger):
        for op in (
            charger.fs_resolve,
            charger.fs_open_state,
            charger.fs_attr_copy,
            charger.fs_access_check,
            charger.fs_read_cpu,
            charger.fs_write_cpu,
            charger.vm_fault,
            charger.bind,
            charger.name_cache_hit,
        ):
            before = charger.clock.now_us
            op()
            assert charger.clock.now_us > before

    def test_transform_charges_scale(self, charger):
        before = charger.clock.now_us
        charger.compress(1024)
        one_kb = charger.clock.now_us - before
        charger.compress(4096)
        assert charger.clock.now_us - before == pytest.approx(5 * one_kb)

    def test_network_payload_cheaper_than_round_trip(self, charger):
        charger.network_payload(1024)
        payload_cost = charger.clock.now_us
        charger.network(1024)
        round_trip = charger.clock.now_us - payload_cost
        assert round_trip > payload_cost
