"""Property-based tests for the page store: byte-level equivalence with
a flat bytearray oracle under arbitrary read/write interleavings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.types import PAGE_SIZE, AccessRights
from repro.vm.page import PageStore

SPAN = 4 * PAGE_SIZE

offsets = st.integers(min_value=0, max_value=SPAN - 1)
sizes = st.integers(min_value=1, max_value=PAGE_SIZE * 2)


def zero_fault(store):
    def fault(index, access):
        return store.install(index, b"", AccessRights.READ_WRITE)

    return fault


class TestStoreMatchesOracle:
    @given(
        ops=st.lists(
            st.tuples(offsets, st.binary(min_size=1, max_size=PAGE_SIZE)),
            max_size=30,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_writes_then_reads_match_flat_buffer(self, ops):
        store = PageStore()
        oracle = bytearray(SPAN + 2 * PAGE_SIZE)
        fault = zero_fault(store)
        for offset, data in ops:
            store.write(offset, data, fault)
            oracle[offset : offset + len(data)] = data
        for offset, data in ops:
            end = min(offset + len(data) + 64, len(oracle))
            got = store.read(offset, end - offset, fault)
            assert got == bytes(oracle[offset:end])

    @given(
        writes=st.lists(
            st.tuples(offsets, st.binary(min_size=1, max_size=512)), max_size=20
        ),
        trunc=st.integers(min_value=0, max_value=SPAN),
    )
    @settings(max_examples=100, deadline=None)
    def test_truncate_to_preserves_head_zeros_tail(self, writes, trunc):
        store = PageStore()
        oracle = bytearray(SPAN + 2 * PAGE_SIZE)
        fault = zero_fault(store)
        for offset, data in writes:
            store.write(offset, data, fault)
            oracle[offset : offset + len(data)] = data
        store.truncate_to(trunc)
        # Bytes below trunc that are still resident must match the oracle.
        head = store.read(
            0, trunc, lambda i, a: store.install(i, b"", AccessRights.READ_WRITE)
        )
        assert head == bytes(oracle[:trunc])
        # No page wholly beyond trunc survives.
        boundary = (trunc + PAGE_SIZE - 1) // PAGE_SIZE
        assert all(index < boundary or trunc % PAGE_SIZE != 0 for index, _ in store.pages())

    @given(
        writes=st.lists(
            st.tuples(offsets, st.binary(min_size=1, max_size=512)), max_size=15
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_collect_modified_covers_exactly_dirty_pages(self, writes):
        store = PageStore()
        fault = zero_fault(store)
        for offset, data in writes:
            store.write(offset, data, fault)
        modified = store.collect_modified(0, SPAN + 2 * PAGE_SIZE)
        dirty = {i for i, p in store.pages() if p.dirty}
        assert set(modified) == dirty
        store.clean_range(0, SPAN + 2 * PAGE_SIZE)
        assert store.collect_modified(0, SPAN + 2 * PAGE_SIZE) == {}

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_drop_range_is_idempotent_and_complete(self, data):
        store = PageStore()
        fault = zero_fault(store)
        for i in range(6):
            store.write(i * PAGE_SIZE, bytes([i]) * 100, fault)
        offset = data.draw(offsets)
        size = data.draw(sizes)
        first = store.drop_range(offset, size)
        second = store.drop_range(offset, size)
        assert second == []
        for index, _ in first:
            assert index not in store
