"""Unit tests for on-disk structures: superblock, i-nodes, directory
entries, and the block allocator."""

import pytest

from repro.errors import InvalidNameError, NoSpaceError, StorageError
from repro.storage.allocator import BlockAllocator
from repro.storage.directory import pack_entries, unpack_entries
from repro.storage.inode import (
    INODE_SIZE,
    NUM_DIRECT,
    FileType,
    Inode,
    max_file_blocks,
)
from repro.storage.layout import SuperBlock
from repro.types import PAGE_SIZE


class TestSuperBlock:
    def test_pack_unpack_roundtrip(self):
        sb = SuperBlock.compute(PAGE_SIZE, 8192, 1024)
        again = SuperBlock.unpack(sb.pack())
        assert again == sb

    def test_bad_magic_rejected(self):
        with pytest.raises(StorageError):
            SuperBlock.unpack(bytes(64))

    def test_layout_regions_disjoint_and_ordered(self):
        sb = SuperBlock.compute(PAGE_SIZE, 8192, 1024)
        assert 0 < sb.bitmap_start < sb.inode_table_start < sb.data_start
        assert sb.bitmap_start + sb.bitmap_blocks == sb.inode_table_start
        assert sb.inode_table_start + sb.inode_table_blocks == sb.data_start

    def test_bitmap_covers_device(self):
        sb = SuperBlock.compute(PAGE_SIZE, 100_000, 1024)
        assert sb.bitmap_blocks * PAGE_SIZE * 8 >= 100_000

    def test_inode_table_sized_for_count(self):
        sb = SuperBlock.compute(PAGE_SIZE, 8192, 1000)
        per_block = PAGE_SIZE // INODE_SIZE
        assert sb.inode_table_blocks == (1000 + per_block - 1) // per_block

    def test_too_small_device_rejected(self):
        with pytest.raises(StorageError):
            SuperBlock.compute(PAGE_SIZE, 4, 1024)


class TestInode:
    def test_record_size(self):
        inode = Inode(ino=1, type=FileType.REGULAR)
        assert len(inode.pack()) == INODE_SIZE

    def test_roundtrip_all_fields(self):
        inode = Inode(
            ino=7,
            type=FileType.DIRECTORY,
            nlink=3,
            size=123456,
            atime_us=111,
            mtime_us=222,
            ctime_us=333,
            direct=list(range(100, 100 + NUM_DIRECT)),
            indirect=999,
            dbl_indirect=1000,
        )
        again = Inode.unpack(7, inode.pack())
        assert again == inode

    def test_free_inode_roundtrip(self):
        assert not Inode.unpack(3, Inode(ino=3).pack()).allocated

    def test_corrupt_direct_array_rejected(self):
        inode = Inode(ino=1, type=FileType.REGULAR)
        inode.direct = [0] * 3
        with pytest.raises(StorageError):
            inode.pack()

    def test_max_file_blocks_geometry(self):
        ppb = PAGE_SIZE // 4
        assert max_file_blocks(PAGE_SIZE) == NUM_DIRECT + ppb + ppb * ppb


class TestDirectoryFormat:
    def test_empty(self):
        assert unpack_entries(pack_entries({})) == {}
        assert unpack_entries(b"") == {}

    def test_roundtrip(self):
        entries = {"alpha": 2, "beta": 17, "a-very-long-name.txt": 300}
        assert unpack_entries(pack_entries(entries)) == entries

    def test_unicode_names(self):
        entries = {"ünïcødé": 5}
        assert unpack_entries(pack_entries(entries)) == entries

    def test_trailing_zeros_ignored(self):
        packed = pack_entries({"x": 1}) + bytes(100)
        assert unpack_entries(packed) == {"x": 1}

    def test_ino_zero_rejected(self):
        with pytest.raises(StorageError):
            pack_entries({"x": 0})

    def test_name_too_long_rejected(self):
        with pytest.raises(StorageError):
            pack_entries({"x" * 300: 1})

    def test_truncated_entry_detected(self):
        packed = pack_entries({"filename": 1})
        with pytest.raises(StorageError):
            unpack_entries(packed[:-3])

    def test_deterministic_order(self):
        a = pack_entries({"b": 2, "a": 1})
        b = pack_entries({"a": 1, "b": 2})
        assert a == b


class TestBlockAllocator:
    def test_allocates_from_data_region(self):
        allocator = BlockAllocator(100, data_start=10)
        block = allocator.allocate()
        assert 10 <= block < 100

    def test_no_double_allocation(self):
        allocator = BlockAllocator(100, data_start=10)
        blocks = [allocator.allocate() for _ in range(90)]
        assert len(set(blocks)) == 90

    def test_exhaustion(self):
        allocator = BlockAllocator(12, data_start=10)
        allocator.allocate()
        allocator.allocate()
        with pytest.raises(NoSpaceError):
            allocator.allocate()

    def test_free_enables_reuse(self):
        allocator = BlockAllocator(12, data_start=10)
        a = allocator.allocate()
        b = allocator.allocate()
        allocator.free(a)
        c = allocator.allocate()
        assert c == a

    def test_double_free_detected(self):
        allocator = BlockAllocator(100, data_start=10)
        block = allocator.allocate()
        allocator.free(block)
        with pytest.raises(StorageError):
            allocator.free(block)

    def test_free_of_metadata_block_rejected(self):
        allocator = BlockAllocator(100, data_start=10)
        with pytest.raises(StorageError):
            allocator.free(5)

    def test_counts(self):
        allocator = BlockAllocator(100, data_start=10)
        assert allocator.free_count == 90
        allocator.allocate()
        assert (allocator.used_count, allocator.free_count) == (1, 89)

    def test_bitmap_roundtrip(self):
        allocator = BlockAllocator(100, data_start=10)
        blocks = {allocator.allocate() for _ in range(25)}
        blob = allocator.to_bitmap(PAGE_SIZE, 1)
        again = BlockAllocator.from_bitmap(blob, 100, 10)
        assert {b for b in range(10, 100) if again.is_allocated(b)} == blocks

    def test_bitmap_marks_metadata_used(self):
        allocator = BlockAllocator(100, data_start=10)
        blob = allocator.to_bitmap(PAGE_SIZE, 1)[0]
        for index in range(10):
            assert blob[index // 8] & (1 << (index % 8))

    def test_dirty_tracking(self):
        allocator = BlockAllocator(100, data_start=10)
        assert not allocator.dirty
        block = allocator.allocate()
        assert allocator.dirty
        allocator.mark_clean()
        allocator.free(block)
        assert allocator.dirty
