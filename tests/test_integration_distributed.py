"""Distributed integration tests: POSIX over a remote mount, three-node
sharing with CFS, read-ahead over the network, and a multi-client
workload against an oracle."""

import random

import pytest

from repro.bench.workloads import pattern_bytes
from repro.fs.cfs import start_cfs
from repro.fs.dfs import export_dfs, mount_remote
from repro.fs.sfs import create_sfs
from repro.storage.block_device import BlockDevice, RamDevice
from repro.types import PAGE_SIZE, AccessRights
from repro.unix import O_CREAT, O_RDWR, Posix
from repro.world import World


@pytest.fixture
def cluster(world):
    server = world.create_node("server")
    clients = [world.create_node(f"client{i}") for i in range(2)]
    device = RamDevice(server.nucleus, "ram", 16384)
    sfs = create_sfs(server, device)
    dfs = export_dfs(server, sfs.top)
    for client in clients:
        mount_remote(client, server, "dfs")
    return world, server, clients, sfs, dfs


class TestPosixOverRemoteMount:
    def test_full_posix_session_remotely(self, cluster):
        world, server, clients, sfs, dfs = cluster
        client = clients[0]
        cu = world.create_user_domain(client, "cu")
        with cu.activate():
            remote_root = client.fs_context.resolve("dfs@server")
        posix = Posix(remote_root, cu)
        posix.mkdir("www")
        fd = posix.open("www/index.html", O_RDWR | O_CREAT)
        posix.write(fd, b"<html>remote</html>")
        posix.lseek(fd, 0)
        assert posix.read(fd, 19) == b"<html>remote</html>"
        assert posix.fstat(fd).size == 19
        assert posix.listdir("www") == ["index.html"]
        posix.close(fd)
        # The server sees the same tree through its local stack.
        su = world.create_user_domain(server, "su")
        server_posix = Posix(sfs.top, su)
        assert server_posix.stat("www/index.html").size == 19

    def test_two_clients_posix_share_coherently(self, cluster):
        world, server, clients, sfs, dfs = cluster
        sessions = []
        for i, client in enumerate(clients):
            cu = world.create_user_domain(client, f"cu{i}")
            with cu.activate():
                root = client.fs_context.resolve("dfs@server")
            sessions.append(Posix(root, cu))
        p1, p2 = sessions
        fd1 = p1.open("shared.log", O_RDWR | O_CREAT)
        p1.write(fd1, b"client1 line\n")
        fd2 = p2.open("shared.log", O_RDWR)
        assert p2.read(fd2, 13) == b"client1 line\n"
        p2.pwrite(fd2, b"CLIENT2", 0)
        assert p1.pread(fd1, 7, 0) == b"CLIENT2"


class TestCfsInACluster:
    def test_cfs_on_both_clients_stays_coherent(self, cluster):
        world, server, clients, sfs, dfs = cluster
        su = world.create_user_domain(server, "su")
        with su.activate():
            dfs.create_file("attr.dat").write(0, b"x" * 100)
        locals_ = []
        for i, client in enumerate(clients):
            cfs = start_cfs(client)
            cu = world.create_user_domain(client, f"cu{i}")
            with cu.activate():
                rf = client.fs_context.resolve("dfs@server").resolve("attr.dat")
                locals_.append((cu, cfs.interpose(rf)))
        (cu1, f1), (cu2, f2) = locals_
        with cu1.activate():
            assert f1.get_attributes().size == 100
        with cu2.activate():
            assert f2.get_attributes().size == 100
        # client1 grows the file; client2's cached attrs are invalidated
        # through the DFS fan-out.
        with cu1.activate():
            f1.write(100, b"grown")
            f1.sync()
        with cu2.activate():
            assert f2.get_attributes().size == 105


class TestReadaheadOverNetwork:
    def test_remote_sequential_scan_with_readahead(self, cluster):
        """VMM read-ahead issues ranged page-ins over the network; fewer
        round trips, same bytes."""
        world, server, clients, sfs, dfs = cluster
        su = world.create_user_domain(server, "su")
        payload = pattern_bytes(16 * PAGE_SIZE, tag=3)
        with su.activate():
            f = dfs.create_file("stream.dat")
            f.write(0, payload)
        client = clients[0]
        cu = world.create_user_domain(client, "cu")
        client.vmm.readahead_pages = 4

        with cu.activate():
            rf = client.fs_context.resolve("dfs@server").resolve("stream.dat")
            mapping = client.vmm.create_address_space("cu").map(
                rf, AccessRights.READ_ONLY
            )
            messages_before = world.network.messages
            got = b"".join(
                mapping.read(page * PAGE_SIZE, PAGE_SIZE) for page in range(16)
            )
            messages = world.network.messages - messages_before
        assert got == payload
        assert messages < 16  # clustered page-ins collapsed round trips


class TestMultiClientWorkloadOracle:
    def test_random_interleaving_matches_oracle(self, cluster):
        """Random reads/writes from the server and both clients, all
        through different paths (file interface and mappings), checked
        against a single linear history."""
        world, server, clients, sfs, dfs = cluster
        span = 8 * PAGE_SIZE
        su = world.create_user_domain(server, "su")
        with su.activate():
            dfs.create_file("arena.bin").write(0, bytes(span))

        views = []
        with su.activate():
            views.append(("server", su, dfs.resolve("arena.bin")))
        for i, client in enumerate(clients):
            cu = world.create_user_domain(client, f"cu{i}")
            with cu.activate():
                rf = client.fs_context.resolve("dfs@server").resolve("arena.bin")
                mapping = client.vmm.create_address_space(f"cu{i}").map(
                    rf, AccessRights.READ_WRITE
                )
            views.append((f"client{i}", cu, mapping))

        oracle = bytearray(span)
        rng = random.Random(42)
        for step in range(80):
            name, domain, view = views[rng.randrange(len(views))]
            offset = rng.randrange(span - 64)
            if rng.random() < 0.5:
                data = bytes([step % 250 + 1]) * 32
                with domain.activate():
                    view.write(offset, data)
                oracle[offset : offset + 32] = data
            else:
                with domain.activate():
                    got = view.read(offset, 64)
                assert got == bytes(oracle[offset : offset + 64]), (
                    f"step {step} via {name} at {offset}"
                )
        # Final agreement across all views.
        for name, domain, view in views:
            with domain.activate():
                assert view.read(0, span) == bytes(oracle), name
