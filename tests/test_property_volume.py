"""Property-based tests for the volume engine: a stateful random
workload against a dict-based oracle, with fsck invariants after every
batch and across remounts."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.storage.block_device import RamDevice
from repro.storage.inode import FileType
from repro.storage.volume import Volume
from repro.types import PAGE_SIZE
from repro.world import World


def fresh_volume():
    world = World()
    node = world.create_node("prop")
    device = RamDevice(node.nucleus, "ram", 4096)
    return Volume.mkfs(device, inode_count=128), device


file_ids = st.integers(min_value=0, max_value=7)
op = st.one_of(
    st.tuples(st.just("write"), file_ids,
              st.integers(0, 3 * PAGE_SIZE), st.binary(min_size=1, max_size=2048)),
    st.tuples(st.just("truncate"), file_ids, st.integers(0, 4 * PAGE_SIZE)),
    st.tuples(st.just("unlink"), file_ids),
    st.tuples(st.just("read"), file_ids,
              st.integers(0, 4 * PAGE_SIZE), st.integers(1, 2048)),
)


class TestVolumeAgainstOracle:
    @given(ops=st.lists(op, max_size=40))
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_workload_matches_oracle(self, ops):
        volume, _ = fresh_volume()
        root = volume.sb.root_ino
        oracle = {}       # name -> bytearray
        inos = {}         # name -> ino
        for action in ops:
            kind, fid = action[0], action[1]
            name = f"f{fid}"
            if kind == "write":
                _, _, offset, data = action
                if name not in oracle:
                    inos[name] = volume.create(root, name, FileType.REGULAR).ino
                    oracle[name] = bytearray()
                volume.write_data(inos[name], offset, data)
                buf = oracle[name]
                if len(buf) < offset + len(data):
                    buf.extend(bytes(offset + len(data) - len(buf)))
                buf[offset : offset + len(data)] = data
            elif kind == "truncate":
                _, _, length = action
                if name in oracle:
                    volume.truncate(inos[name], length)
                    buf = oracle[name]
                    if length <= len(buf):
                        del buf[length:]
                    else:
                        buf.extend(bytes(length - len(buf)))
            elif kind == "unlink":
                if name in oracle:
                    volume.unlink(root, name)
                    del oracle[name]
                    del inos[name]
            elif kind == "read":
                _, _, offset, size = action
                if name in oracle:
                    expected = bytes(oracle[name][offset : offset + size])
                    assert volume.read_data(inos[name], offset, size) == expected
        # Global invariants after the whole run.
        assert volume.fsck() == []
        for name, buf in oracle.items():
            assert volume.iget(inos[name]).size == len(buf)
            assert volume.read_data(inos[name], 0, len(buf)) == bytes(buf)

    @given(
        contents=st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.binary(min_size=0, max_size=3 * PAGE_SIZE),
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_remount_roundtrip(self, contents):
        volume, device = fresh_volume()
        root = volume.sb.root_ino
        for name, data in contents.items():
            inode = volume.create(root, name, FileType.REGULAR)
            if data:
                volume.write_data(inode.ino, 0, data)
        volume.unmount()
        again = Volume.mount(device)
        assert again.fsck() == []
        assert set(again.readdir(again.sb.root_ino)) == set(contents)
        for name, data in contents.items():
            ino = again.lookup(again.sb.root_ino, name)
            assert again.read_data(ino, 0, len(data) + 10) == data

    @given(sizes=st.lists(st.integers(0, 6 * PAGE_SIZE), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_allocator_conservation(self, sizes):
        """Creating then deleting files returns the allocator to its
        starting state — no leaked blocks."""
        volume, _ = fresh_volume()
        root = volume.sb.root_ino
        baseline = volume.allocator.used_count
        for i, size in enumerate(sizes):
            inode = volume.create(root, f"t{i}", FileType.REGULAR)
            if size:
                volume.write_data(inode.ino, 0, b"z" * size)
        for i in range(len(sizes)):
            volume.unlink(root, f"t{i}")
        # Root directory may have grown and shrunk; it rewrites compactly,
        # so only its own blocks may remain.
        assert volume.allocator.used_count <= baseline + 1
        assert volume.fsck() == []
