"""Unit tests for the simulated block device."""

import pytest

from repro.errors import DeviceError
from repro.storage.block_device import BlockDevice, RamDevice
from repro.types import PAGE_SIZE


@pytest.fixture
def disk(node):
    return BlockDevice(node.nucleus, "sd0", num_blocks=64)


class TestBlockDevice:
    def test_unwritten_blocks_read_zero(self, disk):
        assert disk.read_block(5) == bytes(PAGE_SIZE)

    def test_write_read_roundtrip(self, disk):
        data = bytes(range(256)) * 16
        disk.write_block(3, data)
        assert disk.read_block(3) == data

    def test_short_write_zero_padded(self, disk):
        disk.write_block(0, b"abc")
        block = disk.read_block(0)
        assert block[:3] == b"abc"
        assert block[3:] == bytes(PAGE_SIZE - 3)
        assert len(block) == PAGE_SIZE

    def test_oversize_write_rejected(self, disk):
        with pytest.raises(DeviceError):
            disk.write_block(0, bytes(PAGE_SIZE + 1))

    @pytest.mark.parametrize("index", [-1, 64, 1000])
    def test_out_of_range_rejected(self, disk, index):
        with pytest.raises(DeviceError):
            disk.read_block(index)
        with pytest.raises(DeviceError):
            disk.write_block(index, b"x")

    def test_stats_counted(self, disk):
        disk.read_block(0)
        disk.write_block(1, b"a")
        disk.read_block(1)
        assert (disk.reads, disk.writes) == (2, 1)

    def test_each_transfer_charges_disk_latency(self, world, disk):
        before = world.clock.charged("disk")
        disk.read_block(0)
        per_read = world.clock.charged("disk") - before
        assert per_read == world.cost_model.disk_io_us(PAGE_SIZE)
        disk.write_block(0, b"x")
        assert world.clock.charged("disk") == before + 2 * per_read

    def test_capacity(self, disk):
        assert disk.capacity_bytes() == 64 * PAGE_SIZE

    def test_bad_geometry_rejected(self, node):
        with pytest.raises(DeviceError):
            BlockDevice(node.nucleus, "bad", num_blocks=0)

    def test_peek_bypasses_accounting(self, world, disk):
        disk.write_block(2, b"hidden")
        reads_before, clock_before = disk.reads, world.clock.now_us
        assert disk.peek(2)[:6] == b"hidden"
        assert disk.reads == reads_before
        assert world.clock.now_us == clock_before


class TestFailureInjection:
    def test_bad_block_read_fails(self, disk):
        disk.write_block(7, b"data")
        disk.inject_bad_block(7, "media error")
        with pytest.raises(DeviceError, match="media error"):
            disk.read_block(7)

    def test_bad_block_write_fails(self, disk):
        disk.inject_bad_block(8)
        with pytest.raises(DeviceError):
            disk.write_block(8, b"x")

    def test_other_blocks_unaffected(self, disk):
        disk.inject_bad_block(7)
        disk.write_block(6, b"fine")
        assert disk.read_block(6)[:4] == b"fine"

    def test_clear_bad_blocks(self, disk):
        disk.inject_bad_block(7)
        disk.clear_bad_blocks()
        disk.read_block(7)


class TestRamDevice:
    def test_no_latency(self, world, node):
        ram = RamDevice(node.nucleus, "ram0", 16)
        ram.write_block(0, b"quick")
        ram.read_block(0)
        assert world.clock.charged("disk") == 0

    def test_still_a_block_device(self, node):
        ram = RamDevice(node.nucleus, "ram0", 16)
        ram.write_block(1, b"abc")
        assert ram.read_block(1)[:3] == b"abc"
