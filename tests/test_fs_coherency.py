"""Unit tests for the coherency layer: caching, the MRSW protocol across
VMM clients, attribute coherency, and cache hooks from below."""

import pytest

from repro.types import PAGE_SIZE, AccessRights

RO = AccessRights.READ_ONLY
RW = AccessRights.READ_WRITE


@pytest.fixture
def fs(sfs, user):
    with user.activate():
        f = sfs.top.create_file("data.bin")
        f.write(0, b"0" * (4 * PAGE_SIZE))
        f.sync()
    return sfs


class TestDataCaching:
    def test_repeat_reads_hit_cache(self, fs, user, world, device):
        with user.activate():
            f = fs.top.resolve("data.bin")
            f.read(0, PAGE_SIZE)
            reads = device.reads
            for _ in range(5):
                f.read(0, PAGE_SIZE)
            assert device.reads == reads

    def test_writes_are_write_back(self, fs, user, device):
        with user.activate():
            f = fs.top.resolve("data.bin")
            writes = device.writes
            f.write(0, b"W" * PAGE_SIZE)
            assert device.writes == writes
            f.sync()
            assert device.writes > writes

    def test_sync_persists_through_stack(self, fs, user, node, device):
        with user.activate():
            f = fs.top.resolve("data.bin")
            f.write(0, b"PERSIST!")
            f.sync()
            fs.top.sync_fs()
        # Remount the device and check the bytes really landed.
        from repro.storage.volume import Volume

        volume = Volume.mount(device)
        ino = volume.lookup(volume.sb.root_ino, "data.bin")
        assert volume.read_data(ino, 0, 8) == b"PERSIST!"

    def test_read_clamped_to_size(self, fs, user):
        with user.activate():
            f = fs.top.resolve("data.bin")
            data = f.read(4 * PAGE_SIZE - 10, 1000)
            assert len(data) == 10

    def test_read_past_eof_empty(self, fs, user):
        with user.activate():
            f = fs.top.resolve("data.bin")
            assert f.read(10 * PAGE_SIZE, 10) == b""

    def test_write_extends_file(self, fs, user):
        with user.activate():
            f = fs.top.resolve("data.bin")
            f.write(5 * PAGE_SIZE, b"tail")
            assert f.get_length() == 5 * PAGE_SIZE + 4

    def test_size_growth_visible_before_sync(self, fs, user):
        """Attribute caching: the coherency layer's length is the
        authority even while the disk layer is stale."""
        with user.activate():
            f = fs.top.resolve("data.bin")
            f.write(6 * PAGE_SIZE, b"x")
            assert fs.top.resolve("data.bin").get_attributes().size == (
                6 * PAGE_SIZE + 1
            )
            assert fs.disk_layer.volume.iget(
                fs.disk_layer.volume.lookup(
                    fs.disk_layer.volume.sb.root_ino, "data.bin"
                )
            ).size < 6 * PAGE_SIZE

    def test_set_length_truncates_cache_and_below(self, fs, user):
        with user.activate():
            f = fs.top.resolve("data.bin")
            f.read(0, 4 * PAGE_SIZE)
            f.set_length(PAGE_SIZE)
            assert f.get_length() == PAGE_SIZE
            assert f.read(0, 10 * PAGE_SIZE) == b"0" * PAGE_SIZE


class TestMrswAcrossMappings:
    def test_mapping_write_visible_to_file_interface(self, fs, user, node):
        with user.activate():
            f = fs.top.resolve("data.bin")
            mapping = node.vmm.create_address_space("t").map(f, RW)
            mapping.write(0, b"MAPPED")
            assert fs.top.resolve("data.bin").read(0, 6) == b"MAPPED"

    def test_file_write_invalidates_mapping_copy(self, fs, user, node, world):
        with user.activate():
            f = fs.top.resolve("data.bin")
            mapping = node.vmm.create_address_space("t").map(f, RW)
            assert mapping.read(0, 4) == b"0000"
            f.write(0, b"NEWDATA!")
            # The write flushed the VMM's copy; the next mapped read
            # re-faults and sees fresh data.
            assert world.counters.get("vmm.flush_back") >= 1
            assert mapping.read(0, 8) == b"NEWDATA!"

    def test_two_mappings_same_file_share_cache(self, fs, user, node, world):
        with user.activate():
            h1 = fs.top.resolve("data.bin")
            h2 = fs.top.resolve("data.bin")
            aspace = node.vmm.create_address_space("t")
            m1, m2 = aspace.map(h1, RW), aspace.map(h2, RW)
            assert m1.cache is m2.cache  # equivalent memory objects
            m1.write(0, b"ONE")
            assert m2.read(0, 3) == b"ONE"
        assert world.counters.get("coherency.channel_created") == 1

    def test_reader_gets_writers_data_via_write_back(self, fs, user, node, world):
        with user.activate():
            f = fs.top.resolve("data.bin")
            mapping = node.vmm.create_address_space("t").map(f, RW)
            mapping.write(PAGE_SIZE, b"DIRTYPAGE")
            before = world.counters.get("vmm.write_back")
            data = fs.top.resolve("data.bin").read(PAGE_SIZE, 9)
            assert data == b"DIRTYPAGE"
            assert world.counters.get("vmm.write_back") == before + 1


class TestUncachedMode:
    @pytest.fixture
    def uncached(self, sfs_factory):
        node, stack = sfs_factory(placement="two_domains", cache=False)
        world = node.world
        user = world.create_user_domain(node)
        with user.activate():
            f = stack.top.create_file("u.bin")
            f.write(0, b"u" * PAGE_SIZE)
        return node, stack, user

    def test_reads_go_to_disk_every_time(self, uncached):
        node, stack, user = uncached
        device = stack.disk_layer.device
        with user.activate():
            f = stack.top.resolve("u.bin")
            r1 = device.reads
            f.read(0, PAGE_SIZE)
            f.read(0, PAGE_SIZE)
            assert device.reads >= r1 + 2

    def test_writes_go_through_immediately(self, uncached):
        node, stack, user = uncached
        device = stack.disk_layer.device
        with user.activate():
            f = stack.top.resolve("u.bin")
            w1 = device.writes
            f.write(0, b"now" + b"u" * (PAGE_SIZE - 3))
            assert device.writes > w1

    def test_data_still_correct(self, uncached):
        node, stack, user = uncached
        with user.activate():
            f = stack.top.resolve("u.bin")
            f.write(10, b"MARK")
            assert f.read(8, 8) == b"uuMARKuu"

    def test_mapping_still_coherent_with_file_interface(self, uncached):
        node, stack, user = uncached
        with user.activate():
            f = stack.top.resolve("u.bin")
            mapping = node.vmm.create_address_space("t").map(f, RW)
            mapping.write(0, b"VIA-MAP!")
            assert stack.top.resolve("u.bin").read(0, 8) == b"VIA-MAP!"


class TestAttributeCoherency:
    def test_attrs_cached_after_first_fetch(self, fs, user, world):
        with user.activate():
            f = fs.top.resolve("data.bin")
            f.get_attributes()
            before = world.counters.get("disk.attr_page_in")
            f.get_attributes()
            f.get_attributes()
            assert world.counters.get("disk.attr_page_in") == before

    def test_write_updates_cached_mtime(self, fs, user, world):
        with user.activate():
            f = fs.top.resolve("data.bin")
            m0 = f.get_attributes().mtime_us
            world.clock.advance(10_000)
            f.write(0, b"touch")
            assert f.get_attributes().mtime_us > m0

    def test_read_updates_cached_atime(self, fs, user, world):
        with user.activate():
            f = fs.top.resolve("data.bin")
            a0 = f.get_attributes().atime_us
            world.clock.advance(10_000)
            f.read(0, 10)
            assert f.get_attributes().atime_us > a0

    def test_sync_pushes_attrs_below(self, fs, user, world):
        with user.activate():
            f = fs.top.resolve("data.bin")
            world.clock.advance(5000)
            f.write(0, b"attrs")
            f.sync()
        volume = fs.disk_layer.volume
        ino = volume.lookup(volume.sb.root_ino, "data.bin")
        assert volume.iget(ino).mtime_us >= 5000


class TestCacheHooksFromBelow:
    """A second cache manager binds the SAME underlying disk file; the
    disk layer is non-coherent so nothing recalls the coherency layer's
    cache — but the coherency layer's fs_cache operations must behave
    correctly when driven directly (as a stacked-on-coherency scenario
    would)."""

    def test_flush_back_returns_dirty(self, fs, user):
        coherency = fs.coherency_layer
        with user.activate():
            f = fs.top.resolve("data.bin")
            f.write(0, b"DIRTY")
        state = next(iter(coherency._states.values()))
        modified = coherency.ops.flush_back(state, 0, PAGE_SIZE)
        assert modified[0][:5] == b"DIRTY"
        assert 0 not in state.store

    def test_deny_writes_downgrades_store(self, fs, user):
        coherency = fs.coherency_layer
        with user.activate():
            f = fs.top.resolve("data.bin")
            f.write(0, b"DOWNGRADE")
        state = next(iter(coherency._states.values()))
        modified = coherency.ops.deny_writes(state, 0, PAGE_SIZE)
        assert modified[0][:9] == b"DOWNGRADE"
        assert state.store.get(0).rights is RO

    def test_invalidate_attributes_drops_cache(self, fs, user):
        coherency = fs.coherency_layer
        with user.activate():
            fs.top.resolve("data.bin").get_attributes()
        state = next(iter(coherency._states.values()))
        assert state.attrs is not None
        coherency.ops.invalidate_attributes(state)
        assert state.attrs is None


class TestCoherentStacksFromNonCoherentLayers:
    def test_coherency_on_coherency_on_disk(self, world, node, device, user):
        """Sec. 6.3: a coherency layer stacked on any stack yields
        coherent exported files.  Stack a second coherency layer and
        check views through BOTH layers stay consistent."""
        from repro.fs.coherency import CoherencyLayer
        from repro.fs.sfs import create_sfs

        stack = create_sfs(node, device, name="base")
        top_domain = node.create_domain("coh2")
        top = CoherencyLayer(top_domain, cache=True)
        top.stack_on(stack.top)
        with user.activate():
            f_top = top.create_file("twice.bin")
            f_top.write(0, b"via top layer")
            # Read through the middle layer: must see the top's write
            # (recalled through the top layer's downstream channel).
            f_mid = stack.top.resolve("twice.bin")
            assert f_mid.read(0, 13) == b"via top layer"
            # And a write through the middle is seen at the top.
            f_mid.write(0, b"VIA")
            assert top.resolve("twice.bin").read(0, 3) == b"VIA"
