"""The unified layer runtime: dispatch spine, telemetry, calibration.

Covers the spine refactor's acceptance criteria:

* per-layer ``<layer>.<op>`` breakdown for a 3-deep stack;
* golden calibration — Table 2/3 renders and the BENCH_*.json records
  stay byte-identical to the committed (pre-refactor) outputs;
* interposition (``ipc/interpose.py``) and narrowing (``ipc/narrow.py``)
  against the spine — an interposed layer still sees every channel op
  exactly once.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.errors import NarrowError
from repro.fs.dfs import DfsLayer
from repro.fs.interposer import AuditFile
from repro.fs.sfs import create_sfs
from repro.fs.stack import layer_op_breakdown, render_layer_breakdown
from repro.ipc.domain import Credentials
from repro.ipc.narrow import narrow, narrow_or_raise
from repro.types import PAGE_SIZE, AccessRights
from repro.vm.cache_object import FsCache
from repro.vm.pager_object import FsPager

GOLDEN = pathlib.Path(__file__).parent / "golden"
BENCH = pathlib.Path(__file__).parent.parent / "benchmarks"

RW = AccessRights.READ_WRITE
RO = AccessRights.READ_ONLY


@pytest.fixture
def dfs_stack(world, node, device):
    """DFS (serving local binds) on coherency on disk — three layers,
    every mapping fault travels pager-to-pager down all of them."""
    sfs = create_sfs(node, device)
    dfs = DfsLayer(
        node.create_domain("dfs", Credentials("dfs", privileged=True)),
        forward_local_binds=False,
    )
    dfs.stack_on(sfs.top)
    return dfs


# ---------------------------------------------------------------------------
# Per-layer telemetry breakdown (tentpole acceptance criterion)
# ---------------------------------------------------------------------------
class TestLayerBreakdown:
    def test_three_deep_stack_rows(self, world, node, device, user, dfs_stack):
        with user.activate():
            f = dfs_stack.create_file("tele.dat")
            f.write(0, b"t" * (2 * PAGE_SIZE))
            f.sync()
            mapping = node.vmm.create_address_space("t").map(f, RW)
            mapping.read(0, PAGE_SIZE)
        rows = layer_op_breakdown(dfs_stack)
        assert [(fs, depth) for fs, depth, _ in rows] == [
            ("dfs", 2),
            ("coherency", 1),
            ("disk", 0),
        ]
        for fs, _, ops in rows:
            count, nbytes = ops["page_in"]
            assert count >= 1, f"{fs} recorded no page_in"
            assert nbytes >= PAGE_SIZE

    def test_rendered_breakdown_names_every_layer_op(
        self, world, node, device, user, dfs_stack
    ):
        with user.activate():
            f = dfs_stack.create_file("tele.dat")
            f.write(0, b"t" * PAGE_SIZE)
            f.sync()
            mapping = node.vmm.create_address_space("t").map(f, RW)
            mapping.read(0, PAGE_SIZE)
            mapping.write(0, b"dirty")
            mapping.cache.sync()
        out = render_layer_breakdown(dfs_stack)
        for line in ("dfs.page_in", "coherency.page_in", "disk.page_in",
                     "dfs.sync", "bytes"):
            assert line in out
        assert "(depth 2)" in out and "(depth 0)" in out

    def test_report_module_emits_breakdown(self):
        from repro.report import build_layer_breakdown_demo

        out = build_layer_breakdown_demo()
        assert "dfs (depth 2)" in out
        assert "coherency (depth 1)" in out
        assert "disk (depth 0)" in out
        assert "dfs.page_in" in out and "disk.page_in" in out

    def test_counters_only_exist_for_dispatched_ops(
        self, world, node, device, user, dfs_stack
    ):
        """The spine records at the choke-point only — ops that never
        travelled a channel must not appear in the breakdown."""
        with user.activate():
            f = dfs_stack.create_file("tele.dat")
            f.write(0, b"t")
            f.read(0, 1)  # pure file-interface traffic
        rows = layer_op_breakdown(dfs_stack)
        dfs_ops = rows[0][2]
        assert "delete_range" not in dfs_ops
        assert "destroy_cache" not in dfs_ops


# ---------------------------------------------------------------------------
# Golden calibration (satellite): byte-identical before/after the refactor
# ---------------------------------------------------------------------------
class TestGoldenCalibration:
    def test_table2_quick_render_is_golden(self):
        from repro.bench.table2 import run_table2

        rendered = run_table2(iterations=5, runs=1).render() + "\n"
        assert rendered == (GOLDEN / "table2_quick.txt").read_text()

    def test_table3_quick_render_is_golden(self):
        from repro.bench.table3 import run_table3

        rendered = run_table3(iterations=5, runs=1).render() + "\n"
        assert rendered == (GOLDEN / "table3_quick.txt").read_text()

    def test_bench_ipc_record_matches_committed(self):
        from benchmarks.emit_bench_ipc import build_record
        from benchmarks.emit_common import dump_record

        assert dump_record(build_record()) == (BENCH / "BENCH_ipc.json").read_text()

    def test_bench_paging_record_matches_committed(self):
        from benchmarks.emit_bench_paging import build_record
        from benchmarks.emit_common import dump_record

        assert (
            dump_record(build_record())
            == (BENCH / "BENCH_paging.json").read_text()
        )


# ---------------------------------------------------------------------------
# Interposition + narrowing against the spine (satellite)
# ---------------------------------------------------------------------------
class TestInterposedLayerSeesEveryOpOnce:
    def test_each_fault_dispatches_once_per_layer(
        self, world, node, device, user, dfs_stack
    ):
        with user.activate():
            f = dfs_stack.create_file("once.dat")
            f.write(0, b"o" * PAGE_SIZE)
            f.sync()
            before = {
                key: world.counters.get(key)
                for key in ("dfs.page_in", "coherency.page_in", "disk.page_in")
            }
            mapping = node.vmm.create_address_space("t").map(f, RO)
            mapping.read(0, 10)  # one fault, one page
        # Exactly one dispatch per interposed layer — never two.  The
        # coherency layer's page cache absorbs the fault (the write above
        # already pulled the page from disk), so disk sees none.
        assert world.counters.get("dfs.page_in") == before["dfs.page_in"] + 1
        assert (
            world.counters.get("coherency.page_in")
            == before["coherency.page_in"] + 1
        )
        assert world.counters.get("disk.page_in") == before["disk.page_in"]

    def test_writeback_sync_dispatches_once(
        self, world, node, device, user, dfs_stack
    ):
        with user.activate():
            f = dfs_stack.create_file("once.dat")
            f.write(0, bytes(PAGE_SIZE))
            f.sync()
            mapping = node.vmm.create_address_space("t").map(f, RW)
            mapping.write(0, b"dirty")
            assert world.counters.get("dfs.sync") == 0
            mapping.cache.sync()
        assert world.counters.get("dfs.sync") == 1

    def test_recall_through_interposed_layer_once(
        self, world, node, device, user, dfs_stack
    ):
        """A local read below the interposed layer recalls the dirty page
        through it: exactly one write_back (collect-latest) reaches DFS's
        fs_cache, and the recalled bytes win."""
        sfs_top = dfs_stack.under
        with user.activate():
            f = dfs_stack.create_file("recall.dat")
            f.write(0, bytes(PAGE_SIZE))
            f.sync()
            mapping = node.vmm.create_address_space("t").map(f, RW)
            mapping.write(0, b"MAPPED")
            assert world.counters.get("dfs.write_back") == 0
            data = sfs_top.resolve("recall.dat").read(0, 6)
        assert data == b"MAPPED"
        assert world.counters.get("dfs.write_back") == 1
        assert world.counters.get("dfs.write_back.bytes") == PAGE_SIZE

    def test_audit_interposer_forwards_to_spine_unchanged(
        self, world, node, device, user, dfs_stack
    ):
        """Object interposition (paper sec. 5): an AuditFile substituted
        for a spine-served file forwards read/write/bind; the layer
        underneath sees exactly the same single dispatch per op."""
        with user.activate():
            f = dfs_stack.create_file("audit.dat")
            f.write(0, b"a" * PAGE_SIZE)
            f.sync()
            audit = AuditFile(user, f)
            assert audit.read(0, 4) == b"aaaa"
            audit.write(4, b"bbbb")
            assert audit.forwarded_count("read") == 1
            assert audit.forwarded_count("write") == 1
            before = world.counters.get("dfs.page_in")
            mapping = node.vmm.create_address_space("t").map(audit, RO)
            mapping.read(0, 8)
            assert audit.forwarded_count("bind") == 1
        assert world.counters.get("dfs.page_in") == before + 1

    def test_channel_ends_narrow_correctly(
        self, world, node, device, user, dfs_stack
    ):
        """Sec. 4.3 narrowing: a layer's pager object narrows to
        fs_pager; its downstream cache object narrows to fs_cache; a
        plain VMM cache manager's does not."""
        with user.activate():
            f = dfs_stack.create_file("narrow.dat")
            f.write(0, b"n" * PAGE_SIZE)
            f.sync()
            mapping = node.vmm.create_address_space("t").map(f, RW)
            mapping.read(0, 1)
        state = next(iter(dfs_stack._states.values()))
        # Downstream: DFS is cache manager to coherency; both channel
        # ends are fs-grade.
        assert narrow(state.down_channel.pager_object, FsPager) is not None
        assert narrow(state.down_channel.cache_object, FsCache) is not None
        # Upstream: the VMM bound to DFS's pager; the VMM's cache object
        # is a plain cache manager, NOT an fs_cache.
        (channel,) = dfs_stack.channels.channels_for(state.source_key)
        assert narrow(channel.pager_object, FsPager) is not None
        assert narrow(channel.cache_object, FsCache) is None
        with pytest.raises(NarrowError):
            narrow_or_raise(channel.cache_object, FsCache)
