"""The fault plane: scheduled crashes/partitions/link faults, the
invocation retry policy, idempotence-aware compound retry, and the
reference fault schedule's availability bars."""

from __future__ import annotations

import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    MessageDroppedError,
    NodeCrashedError,
    TransientNetworkError,
)
from repro.fs.dfs import export_dfs, mount_remote
from repro.fs.sfs import create_sfs
from repro.ipc.compound import CompoundInvocation, CompoundSubOpError
from repro.ipc.network import NetworkPartitionError
from repro.ipc.retry import RetryPolicy
from repro.sim.faults import FaultPlan
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE
from repro.world import World

BENCH = pathlib.Path(__file__).parent.parent / "benchmarks"


@pytest.fixture
def pair(world):
    a = world.create_node("a")
    b = world.create_node("b")
    return a, b


class TestFaultPlanSchedule:
    def test_sorted_events_by_time_then_insertion(self):
        plan = FaultPlan()
        plan.crash("n", at_us=500)
        plan.partition("a", "b", at_us=100)
        plan.heal("a", "b", at_us=100)  # same time: insertion order wins
        kinds = [(e.time_us, e.kind) for e in plan.sorted_events()]
        assert kinds == [(100, "partition"), (100, "heal"), (500, "crash")]

    def test_plan_is_inert_until_installed(self, world, pair):
        a, b = pair
        plan = FaultPlan().crash("a", at_us=0)
        world.clock.advance(10)
        assert not a.crashed  # schedule not installed, nothing applied
        plane = world.install_fault_plan(plan)
        assert not a.crashed  # installed but not yet polled
        plane.poll()
        assert a.crashed


class TestScheduledEvents:
    def test_crash_applies_when_clock_arrives(self, world, pair):
        a, b = pair
        world.install_fault_plan(FaultPlan().crash("a", at_us=100))
        world.network.transfer(a, b, 0)  # t=0: before the event
        world.clock.advance(100)
        with pytest.raises(NodeCrashedError):
            world.network.transfer(a, b, 0)
        assert a.crashed
        assert world.counters.get("faults.crashes") == 1

    def test_recover_bumps_epoch_and_heals(self, world, pair):
        a, b = pair
        world.install_fault_plan(
            FaultPlan().crash("a", at_us=100, recover_at_us=200)
        )
        world.clock.advance(100)
        with pytest.raises(NodeCrashedError):
            world.network.transfer(a, b, 0)
        world.clock.advance(100)  # past the recover event
        world.network.transfer(a, b, 0)  # poll applies recover, send works
        assert not a.crashed
        assert a.epoch == 1
        assert world.counters.get("faults.recoveries") == 1

    def test_partition_and_heal(self, world, pair):
        a, b = pair
        world.install_fault_plan(
            FaultPlan().partition("a", "b", at_us=50, heal_at_us=150)
        )
        world.clock.advance(50)
        with pytest.raises(NetworkPartitionError):
            world.network.transfer(a, b, 0)
        world.clock.advance(100)
        world.network.transfer(a, b, 0)
        assert world.counters.get("faults.partitions") == 1
        assert world.counters.get("faults.heals") == 1

    def test_applied_log_records_order(self, world, pair):
        a, b = pair
        plane = world.install_fault_plan(
            FaultPlan()
            .partition("a", "b", at_us=10, heal_at_us=20)
            .crash("a", at_us=30)
        )
        world.clock.advance(100)
        plane.poll()
        assert [entry[0] for entry in plane.applied] == [
            "partition",
            "heal",
            "crash",
        ]


class TestLinkEffects:
    def test_drop_raises_and_counts(self, world, pair):
        a, b = pair
        world.install_fault_plan(FaultPlan().drop("a", "b", at_us=0, count=2))
        plane = world.network.fault_plane
        plane.poll()
        for _ in range(2):
            with pytest.raises(MessageDroppedError):
                world.network.transfer(a, b, 64)
        world.network.transfer(a, b, 64)  # budget spent, flows again
        assert world.counters.get("faults.dropped") == 2

    def test_drop_is_directional(self, world, pair):
        a, b = pair
        world.install_fault_plan(FaultPlan().drop("a", "b", at_us=0))
        world.network.transfer(b, a, 0)  # reverse direction unaffected
        with pytest.raises(MessageDroppedError):
            world.network.transfer(a, b, 0)

    def test_delay_advances_clock(self, world, pair):
        a, b = pair
        world.install_fault_plan(
            FaultPlan().delay("a", "b", at_us=0, delay_us=250.0)
        )
        before = world.clock.now_us
        world.network.transfer(a, b, 0)
        assert world.clock.charged("network_fault_delay") == 250.0
        assert world.clock.now_us > before + 249
        assert world.counters.get("faults.delayed") == 1

    def test_duplicate_charges_second_send(self, world, pair):
        a, b = pair
        world.install_fault_plan(FaultPlan().duplicate("a", "b", at_us=0))
        world.network.transfer(a, b, 100)
        assert world.network.messages == 2  # original + duplicate
        assert world.network.bytes_count(a, b) == 200
        assert world.counters.get("faults.duplicated") == 1

    def test_probabilistic_drops_are_seed_deterministic(self):
        def outcomes(seed: int):
            world = World()
            a = world.create_node("a")
            b = world.create_node("b")
            world.install_fault_plan(
                FaultPlan(seed=seed).drop_probability("a", "b", 0.5)
            )
            result = []
            for _ in range(20):
                try:
                    world.network.transfer(a, b, 0)
                    result.append(True)
                except MessageDroppedError:
                    result.append(False)
            return result

        assert outcomes(3) == outcomes(3)  # same seed, same drops
        assert outcomes(3) != outcomes(4)  # different seed, different run
        assert not all(outcomes(3))

    def test_probability_window_expires(self, world, pair):
        a, b = pair
        world.install_fault_plan(
            FaultPlan().drop_probability("a", "b", 1.0, at_us=0, until_us=100)
        )
        with pytest.raises(MessageDroppedError):
            world.network.transfer(a, b, 0)
        world.clock.advance(100)
        world.network.transfer(a, b, 0)  # window over


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_backoff_us=100, backoff_factor=2.0, max_backoff_us=350
        )
        assert [policy.backoff_us(n) for n in range(4)] == [100, 200, 350, 350]

    def test_only_transient_errors_retry(self):
        policy = RetryPolicy()
        assert policy.should_retry(0, 0.0, NodeCrashedError("x"))
        assert not policy.should_retry(0, 0.0, ValueError("x"))

    def test_max_attempts_bounds_retries(self):
        policy = RetryPolicy(max_attempts=3)
        exc = NodeCrashedError("x")
        assert policy.should_retry(0, 0.0, exc)
        assert policy.should_retry(1, 0.0, exc)
        assert not policy.should_retry(2, 0.0, exc)

    def test_timeout_bounds_total_backoff(self):
        policy = RetryPolicy(
            base_backoff_us=100,
            backoff_factor=1.0,
            max_backoff_us=100,
            timeout_us=250,
        )
        exc = NodeCrashedError("x")
        assert policy.should_retry(0, 0.0, exc)  # will have waited 100
        assert policy.should_retry(1, 100.0, exc)  # 200 total
        assert not policy.should_retry(2, 200.0, exc)  # 300 > 250


@pytest.fixture
def dist(world):
    server = world.create_node("server")
    client = world.create_node("client")
    device = BlockDevice(server.nucleus, "sd0", 8192)
    sfs = create_sfs(server, device)
    dfs = export_dfs(server, sfs.top)
    mount_remote(client, server, "dfs")
    su = world.create_user_domain(server, "su")
    cu = world.create_user_domain(client, "cu")
    with su.activate():
        dfs.create_file("shared.dat").write(0, b"S" * PAGE_SIZE)
    return world, server, client, dfs, su, cu


class TestInvocationRetry:
    def test_retry_carries_caller_across_crash_window(self, dist):
        world, server, client, dfs, su, cu = dist
        base = world.clock.now_us
        world.install_fault_plan(
            FaultPlan().crash("server", base + 10, recover_at_us=base + 500)
        )
        world.enable_retries(RetryPolicy(base_backoff_us=100))
        world.clock.advance(10)
        with cu.activate():
            rf = client.fs_context.resolve("dfs@server/shared.dat")
            assert rf.read(0, 4) == b"SSSS"
        assert world.counters.get("invoke.retries") >= 1
        assert world.clock.charged("retry_backoff") > 0

    def test_per_layer_retry_counter(self, dist):
        world, server, client, dfs, su, cu = dist
        with cu.activate():
            rf = client.fs_context.resolve("dfs@server/shared.dat")
        base = world.clock.now_us
        world.install_fault_plan(
            FaultPlan().partition("server", "client", base, heal_at_us=base + 300)
        )
        world.enable_retries(RetryPolicy(base_backoff_us=200))
        with cu.activate():
            rf.read(0, 4)
        assert world.counters.get("dfs.retries") >= 1

    def test_retries_exhausted_surfaces_error(self, dist):
        world, server, client, dfs, su, cu = dist
        world.install_fault_plan(
            FaultPlan().partition("server", "client", world.clock.now_us)
        )  # never heals
        world.enable_retries(
            RetryPolicy(max_attempts=3, base_backoff_us=10, timeout_us=100)
        )
        with cu.activate():
            with pytest.raises(NetworkPartitionError):
                client.fs_context.resolve("dfs@server/shared.dat")

    def test_no_policy_means_no_retries(self, dist):
        world, server, client, dfs, su, cu = dist
        world.install_fault_plan(
            FaultPlan().crash("server", world.clock.now_us)
        )
        with cu.activate():
            with pytest.raises(NodeCrashedError):
                client.fs_context.resolve("dfs@server/shared.dat")
        assert world.counters.get("invoke.retries") == 0


class TestCompoundCommitRevalidation:
    """Regression for the compound/fault-plane race: a partition event
    landing between a sub-op's absorption and the region flush must not
    raise out of the flush — reachability is authoritative at commit
    time, right before each body runs."""

    @pytest.fixture
    def intent_setup(self, dist):
        world, server, client, dfs, su, cu = dist
        with su.activate():
            for i in range(4):
                dfs.create_file(f"f{i}.dat").write(0, b"x" * (i + 1))
        with cu.activate():
            directory = client.fs_context.resolve("dfs@server")
        return world, server, client, directory, cu

    def test_partition_mid_batch_fails_sub_op_not_flush(self, intent_setup):
        world, server, client, directory, cu = intent_setup
        with cu.activate():
            batch = CompoundInvocation(world, fail_fast=False)
            for i in range(4):
                batch.add(directory.open_intent, f"f{i}.dat")
            # The partition lands mid-batch: earlier sub-ops advance the
            # clock past it, so later sub-ops must fail their commit-time
            # reachability check instead of blowing up the region flush.
            world.install_fault_plan(
                FaultPlan().partition(
                    "server", "client", world.clock.now_us + 1
                )
            )
            result = batch.commit()  # must not raise
        outcomes = [result.outcomes[i] for i in range(4)]
        assert not isinstance(outcomes[0], CompoundSubOpError)
        failed = [o for o in outcomes if isinstance(o, CompoundSubOpError)]
        assert failed, "partition never failed a sub-op"
        assert all(
            isinstance(o.cause, NetworkPartitionError) for o in failed
        )

    def test_compound_retry_reruns_only_unexecuted(self, intent_setup):
        world, server, client, directory, cu = intent_setup
        base = world.clock.now_us
        # One intent body burns ~2ms of virtual time, so the partition
        # lands after sub-op 0 and the heal sits a few backoffs away.
        world.install_fault_plan(
            FaultPlan().partition(
                "server", "client", base + 1, heal_at_us=base + 10_000
            )
        )
        with cu.activate():
            batch = CompoundInvocation(
                world, retry_policy=RetryPolicy(base_backoff_us=2_000.0)
            )
            for i in range(4):
                batch.add(directory.open_intent, f"f{i}.dat")
            result = batch.commit()
        assert result.ok  # retry pass completed the tail after the heal
        sizes = [r.attributes.size for r in result.values()]
        assert sizes == [1, 2, 3, 4]
        assert world.counters.get("compound.retries") >= 1

    def test_executed_sub_ops_never_rerun(self, dist):
        world, server, client, dfs, su, cu = dist
        calls = []

        class Probe:
            domain = None  # local op: no destination prevalidation

            def op(self):
                calls.append(1)
                raise NodeCrashedError("transient-looking body failure")

        with cu.activate():
            batch = CompoundInvocation(
                world, retry_policy=RetryPolicy(base_backoff_us=10)
            )
            batch.add(Probe().op)
            result = batch.commit()
        # The body ran once and raised something retry-eligible — but a
        # body failure may have left server-side state, so no rerun.
        assert len(calls) == 1
        assert isinstance(result.outcomes[0], CompoundSubOpError)


class TestReferenceSchedule:
    """The ISSUE's acceptance bars for the reference fault schedule
    (two server crashes + one 1.5ms partition over a 100-op workload),
    asserted against the committed BENCH_faults.json."""

    @pytest.fixture(scope="class")
    def record(self):
        from benchmarks.bench_fault_recovery import build_record

        return build_record()

    def test_knobs_on_completes_everything(self, record):
        on = record["cells"]["knobs_on"]
        assert on["availability_pct"] == 100.0
        assert on["failed"] == 0

    def test_knobs_off_fails_at_least_20pct(self, record):
        off = record["cells"]["knobs_off"]
        assert off["failed"] >= 20

    def test_both_cells_saw_the_whole_schedule(self, record):
        for cell in record["cells"].values():
            assert cell["faults_applied"]["crashes"] == 2
            assert cell["faults_applied"]["partitions"] == 1

    def test_recovery_machinery_engaged(self, record):
        on = record["cells"]["knobs_on"]
        assert on["retries"] > 0
        assert on["dfs_recoveries"] > 0
        assert on["recovery_backoff_ms"] > 0

    def test_record_matches_committed_bytes(self, record):
        from benchmarks.emit_common import dump_record

        assert dump_record(record) == (BENCH / "BENCH_faults.json").read_text()


# ---------------------------------------------------------------------------
# Convergence: any eventually-healed schedule + retries ends in the same
# file state as a fault-free run.
# ---------------------------------------------------------------------------
def _run_workload(schedule_spec):
    """A fixed remote workload under ``schedule_spec`` (a list of
    (kind, offset_us, outage_us) tuples); returns the files' final
    contents read server-side after the dust settles."""
    world = World()
    server = world.create_node("server")
    client = world.create_node("client")
    device = BlockDevice(server.nucleus, "sd0", 8192)
    sfs = create_sfs(server, device)
    dfs = export_dfs(server, sfs.top)
    mount_remote(client, server, "dfs")
    su = world.create_user_domain(server, "su")
    cu = world.create_user_domain(client, "cu")
    with su.activate():
        for name in ("x.dat", "y.dat"):
            dfs.create_file(name).write(0, b"0" * PAGE_SIZE)
    if schedule_spec:
        base = world.clock.now_us
        plan = FaultPlan()
        for kind, offset_us, outage_us in schedule_spec:
            if kind == "crash":
                plan.crash(
                    "server",
                    base + offset_us,
                    recover_at_us=base + offset_us + outage_us,
                )
            else:
                plan.partition(
                    "server",
                    "client",
                    base + offset_us,
                    heal_at_us=base + offset_us + outage_us,
                )
        world.install_fault_plan(plan)
    # Generous budget: worst-case backoff far exceeds the longest
    # schedulable outage, so every op rides out its fault window.
    world.enable_retries(
        RetryPolicy(
            max_attempts=20,
            base_backoff_us=200.0,
            max_backoff_us=2_000.0,
            timeout_us=200_000.0,
        )
    )
    with cu.activate():
        for i in range(12):
            world.clock.advance(40.0, "client_think")
            name = ("x.dat", "y.dat")[i % 2]
            handle = client.fs_context.resolve(f"dfs@server/{name}")
            if i % 3 == 2:
                handle.set_length((i + 1) * 100)
            else:
                handle.write(i * 64, bytes([65 + i]) * 64)
    world.network.heal_all()
    for node in world.nodes.values():
        node.recover()
    with su.activate():
        return {
            name: (
                dfs.resolve(name).get_attributes().size,
                dfs.resolve(name).read(0, PAGE_SIZE),
            )
            for name in ("x.dat", "y.dat")
        }


FAULT_EVENT = st.tuples(
    st.sampled_from(["crash", "partition"]),
    st.floats(min_value=0.0, max_value=60_000.0),  # offset into workload
    st.floats(min_value=50.0, max_value=4_000.0),  # outage, always heals
)


class TestConvergence:
    baseline = None

    @settings(max_examples=20, deadline=None)
    @given(st.lists(FAULT_EVENT, min_size=0, max_size=3))
    def test_faulted_run_converges_to_fault_free_state(self, schedule):
        if TestConvergence.baseline is None:
            TestConvergence.baseline = _run_workload([])
        assert _run_workload(schedule) == TestConvergence.baseline
