"""Tests for the vectored paging pipeline: dirty-run coalescing, ranged
pager operations (defaults and batched write-back through a real
2-layer stack), the VMM's O(1) eviction clock, multi-stream read-ahead
detection, and read-ahead hint forwarding through stacked layers."""

import types

import pytest

from repro.bench.workloads import incompressible_bytes
from repro.fs.cfs import start_cfs
from repro.fs.compfs import CompFs
from repro.fs.sfs import create_sfs
from repro.ipc.domain import Credentials
from repro.types import PAGE_SIZE, AccessRights
from repro.vm.page import PageStore, coalesce_runs, index_runs
from repro.vm.pager_object import PagerObject
from repro.vm.readahead import StreamTable
from repro.vm.vmm import VmCache

RO = AccessRights.READ_ONLY
RW = AccessRights.READ_WRITE


def no_fault(index, access):
    raise AssertionError(f"unexpected fault on page {index}")


class RecordingPager(PagerObject):
    """Concrete pager that logs calls.  ``vectored=False`` keeps the
    base-class ranged defaults (split into single-page calls);
    ``vectored=True`` accepts whole runs."""

    def __init__(self, domain, vectored: bool = False) -> None:
        super().__init__(domain)
        self.vectored = vectored
        self.log = []

    def page_in(self, offset, size, access):
        self.log.append(("page_in", offset, size))
        return bytes(size)

    def page_out(self, offset, size, data):
        self.log.append(("page_out", offset, size))

    def write_out(self, offset, size, data):
        self.log.append(("write_out", offset, size))

    def sync(self, offset, size, data):
        self.log.append(("sync", offset, size))

    def sync_range(self, offset, size, data):
        if self.vectored:
            self.log.append(("sync_range", offset, size))
            return
        super().sync_range(offset, size, data)

    def page_out_range(self, offset, size, data):
        if self.vectored:
            self.log.append(("page_out_range", offset, size))
            return
        super().page_out_range(offset, size, data)

    def done_with_pager_object(self):
        pass


# --------------------------------------------------------------------------
# Dirty-run coalescing
# --------------------------------------------------------------------------
class TestDirtyRuns:
    def test_write_across_page_boundary_is_one_run(self):
        store = PageStore()
        for index in range(3):
            store.install(index, b"", RW)
        store.write(PAGE_SIZE - 50, b"x" * 100, no_fault)  # dirties 0 and 1
        runs = store.dirty_runs()
        assert [[i for i, _ in run] for run in runs] == [[0, 1]]

    def test_clean_gap_splits_runs(self):
        store = PageStore()
        for index in range(5):
            store.install(index, b"", RW)
        store.write(0, b"a", no_fault)
        store.write(PAGE_SIZE, b"b", no_fault)
        store.write(3 * PAGE_SIZE, b"c", no_fault)  # page 2 stays clean
        runs = store.dirty_runs()
        assert [[i for i, _ in run] for run in runs] == [[0, 1], [3]]

    def test_runs_ascend_regardless_of_write_order(self):
        store = PageStore()
        for index in (7, 2, 3, 8):
            store.install(index, b"", RW)
            store.write(index * PAGE_SIZE, b"d", no_fault)
        runs = store.dirty_runs()
        assert [[i for i, _ in run] for run in runs] == [[2, 3], [7, 8]]

    def test_coalesce_runs_empty(self):
        assert coalesce_runs([]) == []

    def test_index_runs(self):
        assert index_runs([]) == []
        assert index_runs([4]) == [(4, 1)]
        assert index_runs([1, 2, 3, 7, 9, 10]) == [(1, 3), (7, 1), (9, 2)]


# --------------------------------------------------------------------------
# Multi-stream sequential detection
# --------------------------------------------------------------------------
class TestStreamTable:
    def test_single_stream_detected(self):
        streams = StreamTable()
        assert not streams.observe(0)
        assert streams.observe(1)
        assert streams.observe(2)

    def test_interleaved_streams_both_detected(self):
        """Two readers scanning different regions in lockstep — the
        scalar last-fault-index heuristic saw 0, 100, 1, 101, ... as
        fully random; the stream table keeps one head per reader."""
        streams = StreamTable()
        assert not streams.observe(0)
        assert not streams.observe(100)
        for step in range(1, 5):
            assert streams.observe(step)
            assert streams.observe(100 + step)

    def test_capacity_evicts_oldest_stream(self):
        streams = StreamTable(capacity=2)
        streams.observe(0)
        streams.observe(100)
        streams.observe(200)  # table full: the stream at head 0 is evicted
        assert not streams.observe(1)  # its continuation no longer matches
        assert streams.observe(201)  # a younger stream survives

    def test_advance_head_after_prefetch(self):
        streams = StreamTable()
        streams.observe(0)
        streams.observe(1)
        streams.advance_head(8)  # pages 2..8 were prefetched
        assert streams.observe(9)

    def test_reset_forgets_everything(self):
        streams = StreamTable()
        streams.observe(0)
        streams.reset()
        assert not streams.observe(1)


# --------------------------------------------------------------------------
# Ranged pager operations
# --------------------------------------------------------------------------
class TestRangedPagerDefaults:
    def test_sync_range_default_splits_per_page(self, node):
        pager = RecordingPager(node.create_domain("p"))
        pager.sync_range(0, 2 * PAGE_SIZE + 100, bytes(2 * PAGE_SIZE + 100))
        assert pager.log == [
            ("sync", 0, PAGE_SIZE),
            ("sync", PAGE_SIZE, PAGE_SIZE),
            ("sync", 2 * PAGE_SIZE, 100),
        ]

    def test_page_out_range_default_splits_per_page(self, node):
        pager = RecordingPager(node.create_domain("p"))
        pager.page_out_range(PAGE_SIZE, 2 * PAGE_SIZE, bytes(2 * PAGE_SIZE))
        assert pager.log == [
            ("page_out", PAGE_SIZE, PAGE_SIZE),
            ("page_out", 2 * PAGE_SIZE, PAGE_SIZE),
        ]


class TestBatchedWriteBackOrder:
    def _cache(self, node, vectored: bool):
        pager = RecordingPager(node.create_domain("p"), vectored=vectored)
        cache = VmCache(node.vmm, "t")
        cache.channel = types.SimpleNamespace(pager_object=pager)
        return cache, pager

    def test_batched_sync_one_call_per_run_ascending(self, node):
        cache, pager = self._cache(node, vectored=True)
        for index in (5, 6, 0, 1, 2):  # install out of order
            cache.store.install(index, b"x", RW, dirty=True)
        node.vmm.batch_pageout = True
        assert cache.sync() == 5
        assert pager.log == [
            ("sync_range", 0, 3 * PAGE_SIZE),
            ("sync_range", 5 * PAGE_SIZE, 2 * PAGE_SIZE),
        ]
        assert cache.store.dirty_runs() == []

    def test_unbatched_sync_same_ascending_order(self, node):
        """Satellite (f): write-back order is deterministic and identical
        with batching off — per page, ascending."""
        cache, pager = self._cache(node, vectored=False)
        for index in (5, 6, 0, 1, 2):
            cache.store.install(index, b"x", RW, dirty=True)
        node.vmm.batch_pageout = False
        assert cache.sync() == 5
        offsets = [offset for _, offset, _ in pager.log]
        assert offsets == sorted(offsets)
        assert len(pager.log) == 5

    def test_batched_flush_pages_out_runs(self, node):
        cache, pager = self._cache(node, vectored=True)
        for index in (0, 1, 3):
            cache.store.install(index, b"x", RW, dirty=True)
        node.vmm.batch_pageout = True
        assert cache.flush() == 3
        assert pager.log == [
            ("page_out_range", 0, 2 * PAGE_SIZE),
            ("page_out_range", 3 * PAGE_SIZE, PAGE_SIZE),
        ]
        assert len(cache.store) == 0


# --------------------------------------------------------------------------
# Ranged sync through the real 2-layer stack (VMM -> coherency -> disk)
# --------------------------------------------------------------------------
class TestRangedSyncThroughStack:
    def test_runs_travel_the_stack_and_land_on_the_volume(
        self, world, node, device, user
    ):
        stack = create_sfs(node, device)
        payload = incompressible_bytes(4 * PAGE_SIZE, seed=9)
        with user.activate():
            f = stack.top.create_file("v.dat")
            f.write(0, bytes(4 * PAGE_SIZE))
            f.sync()
            mapping = node.vmm.create_address_space("t").map(f, RW)
            mapping.write(0, payload)

            node.vmm.batch_pageout = True
            per_page_before = world.counters.get("coherency.sync")
            mapping.cache.sync()
            # One ranged call for the whole 4-page run, zero per-page ones.
            assert world.counters.get("coherency.sync_range") == 1
            assert world.counters.get("coherency.sync") == per_page_before

            stack.coherency_layer.batch_pageout = True
            stack.top.resolve("v.dat").sync()
            assert world.counters.get("disk.sync_range") >= 1
            stack.top.sync_fs()
        volume = stack.disk_layer.volume
        ino = volume.lookup(volume.sb.root_ino, "v.dat")
        assert volume.read_data(ino, 0, 4 * PAGE_SIZE) == payload


# --------------------------------------------------------------------------
# The O(1) eviction clock
# --------------------------------------------------------------------------
@pytest.fixture
def evict_env(world, node, device, user):
    stack = create_sfs(node, device)
    with user.activate():
        f = stack.top.create_file("data.bin")
        f.write(0, bytes(range(256)) * (16 * PAGE_SIZE // 256))
        f.sync()
    return stack


class TestEvictionClock:
    def test_oldest_installed_clean_page_is_the_victim(
        self, node, evict_env, user
    ):
        node.vmm.capacity_pages = 4
        with user.activate():
            f = evict_env.top.resolve("data.bin")
            mapping = node.vmm.create_address_space("t").map(f, RO)
            for page in range(4):
                mapping.read(page * PAGE_SIZE, 8)
            mapping.read(4 * PAGE_SIZE, 8)
        store = mapping.cache.store
        assert 0 not in store
        assert all(page in store for page in (1, 2, 3, 4))

    def test_dirty_page_outlives_younger_clean_pages(
        self, node, evict_env, user
    ):
        """The clock migrates a dirtied entry to the dirty queue instead
        of evicting it, so the next-oldest clean page goes first."""
        node.vmm.capacity_pages = 4
        with user.activate():
            f = evict_env.top.resolve("data.bin")
            mapping = node.vmm.create_address_space("t").map(f, RW)
            mapping.write(0, b"D")  # page 0: oldest, but dirty
            for page in range(1, 4):
                mapping.read(page * PAGE_SIZE, 8)
            mapping.read(4 * PAGE_SIZE, 8)
        store = mapping.cache.store
        assert store.get(0) is not None and store.get(0).dirty
        assert 1 not in store  # oldest *clean* page was the victim
        assert all(page in store for page in (2, 3, 4))

    def test_faulting_page_is_never_its_own_victim(self, node, evict_env, user):
        node.vmm.capacity_pages = 1
        with user.activate():
            f = evict_env.top.resolve("data.bin")
            mapping = node.vmm.create_address_space("t").map(f, RO)
            mapping.read(0, 8)
            mapping.read(PAGE_SIZE, 8)
        store = mapping.cache.store
        assert 0 not in store and 1 in store
        assert node.vmm.resident_pages() == 1

    def test_resident_counter_tracks_store_exactly(self, node, evict_env, user):
        with user.activate():
            f = evict_env.top.resolve("data.bin")
            mapping = node.vmm.create_address_space("t").map(f, RO)
            for page in range(6):
                mapping.read(page * PAGE_SIZE, 8)
        assert node.vmm.resident_pages() == len(mapping.cache.store) == 6
        mapping.cache.store.clear()
        assert node.vmm.resident_pages() == 0

    def test_stale_queue_entries_are_harmless(self, node, evict_env, user):
        """Dropping pages behind the clock's back (store.clear) leaves
        stale queue entries; reclaim must skip them and keep the bound."""
        with user.activate():
            f = evict_env.top.resolve("data.bin")
            mapping = node.vmm.create_address_space("t").map(f, RO)
            for page in range(6):
                mapping.read(page * PAGE_SIZE, 8)
            mapping.cache.store.clear()
            node.vmm.capacity_pages = 2
            for page in range(6):
                mapping.read(page * PAGE_SIZE, 8)
                assert node.vmm.resident_pages() <= 2


# --------------------------------------------------------------------------
# Read-ahead hint forwarding through stacked layers
# --------------------------------------------------------------------------
class TestReadaheadThroughCompfs:
    def test_ranged_page_in_reaches_the_disk_layer(
        self, world, node, device, user
    ):
        """A cold read through coherent COMPFS issues one ranged page-in
        for the whole compressed image; the coherency layer prefetches
        the missing run and the disk layer clusters the device reads —
        far fewer transfers than pages."""
        stack = create_sfs(node, device)
        payload = incompressible_bytes(8 * PAGE_SIZE, seed=3)
        first = CompFs(
            node.create_domain("compfs-a", Credentials("compfs", True)),
            coherent=True,
        )
        first.stack_on(stack.top)
        with user.activate():
            f = first.create_file("big.z")
            f.write(0, payload)
            f.sync()
            stack.top.sync_fs()
        for state in stack.coherency_layer._states.values():
            state.store.clear()
            state.streams.reset()
        second = CompFs(
            node.create_domain("compfs-b", Credentials("compfs", True)),
            coherent=True,
        )
        second.stack_on(stack.top)
        reads_before = device.reads
        ranged_before = world.counters.get("disk.page_in_range")
        with user.activate():
            assert second.resolve("big.z").read(0, len(payload)) == payload
        assert world.counters.get("coherency.page_in_range") >= 1
        assert world.counters.get("disk.page_in_range") > ranged_before
        # ~8 pages of incompressible image came in via clustered reads.
        assert device.reads - reads_before < 8


class TestCfsReadaheadOverride:
    def _roundtrip(self, stack, cfs, user):
        with user.activate():
            f = stack.top.create_file("r.dat")
            f.write(0, b"x" * (2 * PAGE_SIZE))
            f.sync()
            local = cfs.interpose(stack.top.resolve("r.dat"))
            assert local.read(0, 16) == b"x" * 16
        return next(iter(cfs._states.values()))

    def test_window_applied_per_cache_not_node_wide(
        self, world, node, device, user
    ):
        stack = create_sfs(node, device)
        cfs = start_cfs(node, readahead_pages=4)
        state = self._roundtrip(stack, cfs, user)
        assert state.mapping.cache.readahead_override == 4
        assert node.vmm.readahead_pages == 0  # global policy untouched

    def test_no_override_by_default(self, world, node, device, user):
        stack = create_sfs(node, device)
        cfs = start_cfs(node)
        state = self._roundtrip(stack, cfs, user)
        assert state.mapping.cache.readahead_override is None
