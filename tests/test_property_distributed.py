"""Property-based distributed coherency: hypothesis-generated operation
interleavings across a server and a remote client must observe one
linear history, under both coherency protocols."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fs.coherency import CoherencyLayer
from repro.fs.dfs import DfsLayer, mount_remote
from repro.fs.disk_layer import DiskLayer
from repro.ipc.domain import Credentials
from repro.storage.block_device import RamDevice
from repro.types import PAGE_SIZE, AccessRights
from repro.world import World

SPAN = 4 * PAGE_SIZE

ops = st.lists(
    st.tuples(
        st.sampled_from(["server_file", "client_map", "client_file"]),
        st.sampled_from(["read", "write"]),
        st.integers(0, SPAN - 65),
        st.integers(1, 64),
    ),
    min_size=1,
    max_size=18,
)


def build(protocol: str):
    world = World()
    server = world.create_node("server")
    client = world.create_node("client")
    disk = DiskLayer(
        server.create_domain("disk"), RamDevice(server.nucleus, "ram", 8192),
        format_device=True,
    )
    coherency = CoherencyLayer(
        server.create_domain("coh", Credentials("c", True)), protocol=protocol
    )
    coherency.stack_on(disk)
    dfs = DfsLayer(
        server.create_domain("dfs", Credentials("d", True)), protocol=protocol
    )
    dfs.stack_on(coherency)
    server.fs_context.bind("dfs", dfs)
    mount_remote(client, server, "dfs")
    su = world.create_user_domain(server, "su")
    cu = world.create_user_domain(client, "cu")
    with su.activate():
        server_file = dfs.create_file("arena.bin")
        server_file.write(0, bytes(SPAN))
    with cu.activate():
        client_file = client.fs_context.resolve("dfs@server").resolve("arena.bin")
        client_map = client.vmm.create_address_space("cu").map(
            client_file, AccessRights.READ_WRITE
        )
    views = {
        "server_file": (su, server_file),
        "client_map": (cu, client_map),
        "client_file": (cu, client_file),
    }
    return views


class TestDistributedLinearHistory:
    @given(ops=ops)
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_per_block(self, ops):
        self._run("per_block", ops)

    @given(ops=ops)
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_whole_file(self, ops):
        self._run("whole_file", ops)

    def _run(self, protocol, ops):
        views = build(protocol)
        oracle = bytearray(SPAN)
        for step, (view, kind, offset, size) in enumerate(ops):
            domain, obj = views[view]
            if kind == "write":
                data = bytes(((step * 29 + j) % 251) + 1 for j in range(size))
                with domain.activate():
                    obj.write(offset, data)
                oracle[offset : offset + size] = data
            else:
                with domain.activate():
                    got = obj.read(offset, size)
                assert got == bytes(oracle[offset : offset + size]), (
                    f"step {step}: {view} {kind} @{offset}+{size} ({protocol})"
                )
        for name, (domain, obj) in views.items():
            with domain.activate():
                assert obj.read(0, SPAN) == bytes(oracle), (name, protocol)
