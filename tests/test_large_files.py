"""Large-file tests through the full stack: indirect and
double-indirect geometry exercised via the layered SFS, mappings over
big files, and COMPFS on multi-megabyte data."""

import pytest

from repro.bench.workloads import compressible_bytes, pattern_bytes
from repro.fs.compfs import CompFs
from repro.fs.sfs import create_sfs
from repro.ipc.domain import Credentials
from repro.storage.block_device import RamDevice
from repro.storage.inode import NUM_DIRECT
from repro.types import PAGE_SIZE, AccessRights
from repro.world import World


@pytest.fixture
def big_env(world, node, user):
    device = RamDevice(node.nucleus, "bigram", 65536)  # 256 MB
    stack = create_sfs(node, device)
    return stack, user


class TestIndirectThroughStack:
    def test_write_read_past_direct_blocks(self, big_env, user):
        stack, user = big_env
        size = (NUM_DIRECT + 20) * PAGE_SIZE  # into single-indirect
        payload = pattern_bytes(size, tag=9)
        with user.activate():
            f = stack.top.create_file("big1.dat")
            f.write(0, payload)
            f.sync()
            stack.top.sync_fs()
            again = stack.top.resolve("big1.dat")
            # Spot-check the indirect region.
            probe = (NUM_DIRECT + 5) * PAGE_SIZE
            assert again.read(probe, 256) == payload[probe : probe + 256]
        assert stack.disk_layer.volume.fsck() == []

    def test_sparse_big_file(self, big_env, user):
        stack, user = big_env
        far = (NUM_DIRECT + 100) * PAGE_SIZE
        with user.activate():
            f = stack.top.create_file("sparse.dat")
            f.write(far, b"way out there")
            f.sync()
            stack.top.sync_fs()
            assert f.get_length() == far + 13
            assert f.read(0, 16) == bytes(16)
            assert f.read(far, 13) == b"way out there"
        volume = stack.disk_layer.volume
        ino = volume.lookup(volume.sb.root_ino, "sparse.dat")
        # The hole allocated no data blocks.
        assert len(volume._mapped_blocks(volume.iget(ino))) <= 2
        assert volume.fsck() == []

    def test_mapping_over_indirect_region(self, big_env, node, user):
        stack, user = big_env
        size = (NUM_DIRECT + 8) * PAGE_SIZE
        payload = pattern_bytes(size, tag=4)
        with user.activate():
            f = stack.top.create_file("map.dat")
            f.write(0, payload)
            mapping = node.vmm.create_address_space("t").map(
                f, AccessRights.READ_WRITE
            )
            probe = (NUM_DIRECT + 3) * PAGE_SIZE
            assert mapping.read(probe, 64) == payload[probe : probe + 64]
            mapping.write(probe, b"PATCHED!")
            assert stack.top.resolve("map.dat").read(probe, 8) == b"PATCHED!"

    def test_truncate_big_file_returns_blocks(self, big_env, user):
        stack, user = big_env
        volume = stack.disk_layer.volume
        with user.activate():
            f = stack.top.create_file("shrink.dat")
            f.write(0, b"z" * ((NUM_DIRECT + 30) * PAGE_SIZE))
            f.sync()
            used_full = volume.allocator.used_count
            f.set_length(PAGE_SIZE)
            f.sync()
            stack.top.sync_fs()
        assert volume.allocator.used_count < used_full
        assert volume.fsck() == []


class TestCompfsOnLargeData:
    def test_megabyte_roundtrip(self, world, node, user):
        device = RamDevice(node.nucleus, "czram", 65536)
        stack = create_sfs(node, device)
        compfs = CompFs(
            node.create_domain("cz", Credentials("c", True)), coherent=False
        )
        compfs.stack_on(stack.top)
        payload = compressible_bytes(2 * 1024 * 1024, seed=21)
        with user.activate():
            f = compfs.create_file("huge.z")
            f.write(0, payload)
            f.sync()
            report = compfs.space_report(f)
            assert report["stored_bytes"] < len(payload) // 2
            again = compfs.resolve("huge.z")
            assert again.read(0, 4096) == payload[:4096]
            assert again.read(len(payload) - 4096, 4096) == payload[-4096:]
        assert stack.disk_layer.volume.fsck() == []
