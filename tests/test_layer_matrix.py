"""Composition matrix: the same POSIX workload runs unchanged over
every layer type — the architecture's core claim that "as long as the
interface of the new layer conforms to the interface of a file system,
clients will view the new layer as a file system, regardless of how it
is implemented"."""

import pytest

from repro.bench.workloads import pattern_bytes
from repro.fs.cfs import start_cfs
from repro.fs.compfs import CompFs
from repro.fs.cryptfs import CryptFs
from repro.fs.dfs import export_dfs, mount_remote
from repro.fs.mirrorfs import MirrorFs
from repro.fs.nullfs import NullFs
from repro.fs.quotafs import QuotaFs
from repro.fs.sfs import create_sfs
from repro.ipc.domain import Credentials
from repro.storage.block_device import RamDevice
from repro.types import PAGE_SIZE
from repro.unix import O_CREAT, O_RDONLY, O_RDWR, Posix
from repro.world import World


def _stack(kind: str):
    """Build a (root context, client domain) pair for each stack kind."""
    world = World()
    node = world.create_node("matrix")
    device = RamDevice(node.nucleus, "ram", 16384)
    sfs = create_sfs(node, device)
    user = world.create_user_domain(node)

    def layer(cls, **kwargs):
        instance = cls(
            node.create_domain(kind, Credentials(kind, True)), **kwargs
        )
        instance.stack_on(sfs.top)
        return instance

    if kind == "sfs":
        return sfs.top, user
    if kind == "mono":
        node2 = world.create_node("mono-node")
        mono = create_sfs(
            node2, RamDevice(node2.nucleus, "ram", 16384),
            placement="not_stacked",
        )
        return mono.top, world.create_user_domain(node2)
    if kind == "nullfs":
        return layer(NullFs), user
    if kind == "compfs":
        return layer(CompFs), user
    if kind == "cryptfs":
        return layer(CryptFs, key=b"matrix"), user
    if kind == "quotafs":
        return layer(QuotaFs, budget_bytes=10**9), user
    if kind == "mirrorfs":
        device_b = RamDevice(node.nucleus, "ram-b", 16384)
        sfs_b = create_sfs(node, device_b, name="sfs-b")
        mirror = MirrorFs(node.create_domain("mir", Credentials("m", True)))
        mirror.stack_on(sfs.top)
        mirror.stack_on(sfs_b.top)
        return mirror, user
    if kind == "dfs-remote":
        client = world.create_node("client")
        dfs = export_dfs(node, sfs.top)
        mount_remote(client, node, "dfs")
        cu = world.create_user_domain(client, "cu")
        with cu.activate():
            root = client.fs_context.resolve("dfs@server".replace("server", node.name))
        return root, cu
    raise ValueError(kind)


KINDS = [
    "sfs",
    "mono",
    "nullfs",
    "compfs",
    "cryptfs",
    "quotafs",
    "mirrorfs",
    "dfs-remote",
]


@pytest.mark.parametrize("kind", KINDS)
class TestSameWorkloadEverywhere:
    def test_posix_session(self, kind):
        root, user = _stack(kind)
        posix = Posix(root, user)
        payload = pattern_bytes(2 * PAGE_SIZE + 123, tag=7)

        fd = posix.open("doc.bin", O_RDWR | O_CREAT)
        assert posix.write(fd, payload) == len(payload)
        assert posix.fstat(fd).size == len(payload)
        posix.lseek(fd, 0)
        assert posix.read(fd, len(payload)) == payload
        posix.fsync(fd)
        posix.close(fd)

        fd = posix.open("doc.bin", O_RDONLY)
        assert posix.pread(fd, 100, PAGE_SIZE) == payload[PAGE_SIZE : PAGE_SIZE + 100]
        posix.close(fd)

        fd = posix.open("doc.bin", O_RDWR)
        posix.ftruncate(fd, 100)
        assert posix.fstat(fd).size == 100
        posix.close(fd)

        assert "doc.bin" in posix.listdir()
        posix.unlink("doc.bin")
        assert posix.listdir() == []

    def test_overwrite_and_extend(self, kind):
        root, user = _stack(kind)
        posix = Posix(root, user)
        fd = posix.open("grow.bin", O_RDWR | O_CREAT)
        posix.write(fd, b"aaaa")
        posix.pwrite(fd, b"BB", 2)
        posix.pwrite(fd, b"tail", 10)
        assert posix.pread(fd, 14, 0) == b"aaBB" + bytes(6) + b"tail"

    def test_many_small_files(self, kind):
        root, user = _stack(kind)
        posix = Posix(root, user)
        for i in range(10):
            fd = posix.open(f"f{i}.dat", O_RDWR | O_CREAT)
            posix.write(fd, pattern_bytes(100 + i, tag=i))
            posix.close(fd)
        for i in range(10):
            assert posix.stat(f"f{i}.dat").size == 100 + i
            fd = posix.open(f"f{i}.dat", O_RDONLY)
            assert posix.read(fd, 200) == pattern_bytes(100 + i, tag=i)
            posix.close(fd)
