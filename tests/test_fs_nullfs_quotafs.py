"""Tests for the NULLFS pass-through layer and the QUOTAFS policy
layer."""

import pytest

from repro.fs.nullfs import NullFs
from repro.fs.quotafs import QuotaExceededError, QuotaFs
from repro.fs.sfs import create_sfs
from repro.ipc.domain import Credentials
from repro.types import PAGE_SIZE, AccessRights


@pytest.fixture
def base(world, node, device, user):
    stack = create_sfs(node, device)
    return world, node, stack, user


class TestNullFs:
    @pytest.fixture
    def nullfs(self, base, node):
        world, _, stack, user = base
        layer = NullFs(node.create_domain("null", Credentials("n", True)))
        layer.stack_on(stack.top)
        return layer

    def test_transparent_io(self, base, nullfs, user):
        world, node, stack, user = base
        with user.activate():
            f = nullfs.create_file("t.dat")
            f.write(0, b"pass through")
            assert f.read(0, 12) == b"pass through"
            # Visible identically below.
            assert stack.top.resolve("t.dat").read(0, 12) == b"pass through"

    def test_bind_forwarded_shares_cache(self, base, nullfs, user):
        world, node, stack, user = base
        with user.activate():
            f_null = nullfs.create_file("m.dat")
            f_null.write(0, b"m" * PAGE_SIZE)
            f_under = stack.top.resolve("m.dat")
            aspace = node.vmm.create_address_space("t")
            m_null = aspace.map(nullfs.resolve("m.dat"), AccessRights.READ_WRITE)
            m_under = aspace.map(f_under, AccessRights.READ_WRITE)
            assert m_null.cache is m_under.cache
            m_null.write(0, b"SHARED")
            assert m_under.read(0, 6) == b"SHARED"
        assert world.counters.get("nullfs.bind_forwarded") >= 1

    def test_directories_and_rename(self, base, nullfs, user):
        world, node, stack, user = base
        with user.activate():
            d = nullfs.create_dir("sub")
            d.create_file("a.txt").write(0, b"a")
            d.rename("a.txt", "b.txt")
            assert nullfs.resolve("sub/b.txt").read(0, 1) == b"a"

    def test_attrs_and_truncate_passthrough(self, base, nullfs, user):
        world, node, stack, user = base
        with user.activate():
            f = nullfs.create_file("t2.dat")
            f.write(0, b"0123456789")
            assert f.get_attributes().size == 10
            f.set_length(4)
            assert stack.top.resolve("t2.dat").get_length() == 4

    def test_coherent_with_direct_access(self, base, nullfs, user):
        world, node, stack, user = base
        with user.activate():
            f = nullfs.create_file("c.dat")
            f.write(0, b"original")
            stack.top.resolve("c.dat").write(0, b"DIRECT!!")
            assert nullfs.resolve("c.dat").read(0, 8) == b"DIRECT!!"


class TestQuotaFs:
    @pytest.fixture
    def quota(self, base, node):
        world, _, stack, user = base
        layer = QuotaFs(
            node.create_domain("quota", Credentials("q", True)),
            budget_bytes=10 * PAGE_SIZE,
        )
        layer.stack_on(stack.top)
        return layer

    def test_writes_within_budget(self, base, quota, user):
        *_, user = base
        with user.activate():
            f = quota.create_file("ok.dat")
            f.write(0, b"x" * (5 * PAGE_SIZE))
        assert quota.used_bytes == 5 * PAGE_SIZE
        assert quota.remaining() == 5 * PAGE_SIZE

    def test_write_over_budget_rejected(self, base, quota, user):
        *_, user = base
        with user.activate():
            f = quota.create_file("big.dat")
            with pytest.raises(QuotaExceededError):
                f.write(0, b"x" * (11 * PAGE_SIZE))
        # Nothing was charged for the rejected write.
        assert quota.used_bytes == 0

    def test_overwrite_costs_nothing(self, base, quota, user):
        *_, user = base
        with user.activate():
            f = quota.create_file("rw.dat")
            f.write(0, b"x" * PAGE_SIZE)
            f.write(0, b"y" * PAGE_SIZE)  # no growth
        assert quota.used_bytes == PAGE_SIZE

    def test_truncate_refunds(self, base, quota, user):
        *_, user = base
        with user.activate():
            f = quota.create_file("t.dat")
            f.write(0, b"x" * (4 * PAGE_SIZE))
            f.set_length(PAGE_SIZE)
        assert quota.used_bytes == PAGE_SIZE

    def test_unlink_refunds(self, base, quota, user):
        *_, user = base
        with user.activate():
            f = quota.create_file("gone.dat")
            f.write(0, b"x" * (3 * PAGE_SIZE))
            quota.unbind("gone.dat")
        assert quota.used_bytes == 0

    def test_budget_usable_again_after_refund(self, base, quota, user):
        *_, user = base
        with user.activate():
            f = quota.create_file("a.dat")
            f.write(0, b"x" * (10 * PAGE_SIZE))
            quota.unbind("a.dat")
            g = quota.create_file("b.dat")
            g.write(0, b"y" * (10 * PAGE_SIZE))  # fits again
        assert quota.used_bytes == 10 * PAGE_SIZE

    def test_writable_mapping_denied_when_exhausted(self, base, quota, user):
        world, node, stack, user = base
        with user.activate():
            f = quota.create_file("m.dat")
            f.write(0, b"x" * (10 * PAGE_SIZE))
            handle = quota.resolve("m.dat")
            with pytest.raises(QuotaExceededError):
                node.vmm.create_address_space("t").map(
                    handle, AccessRights.READ_WRITE
                )
            ro = node.vmm.create_address_space("t2").map(
                handle, AccessRights.READ_ONLY
            )
            assert ro.read(0, 1) == b"x"

    def test_quota_over_compfs(self, base, node, user):
        """Policy layers compose: quota over compression counts
        *plaintext* bytes (the view it sees)."""
        from repro.fs.compfs import CompFs

        world, _, stack, user = base
        compfs = CompFs(node.create_domain("cz", Credentials("c", True)))
        compfs.stack_on(stack.top)
        quota = QuotaFs(
            node.create_domain("q2", Credentials("q", True)),
            budget_bytes=2 * PAGE_SIZE,
        )
        quota.stack_on(compfs)
        with user.activate():
            f = quota.create_file("z.dat")
            f.write(0, b"a" * PAGE_SIZE)
            with pytest.raises(QuotaExceededError):
                f.write(PAGE_SIZE, b"b" * (2 * PAGE_SIZE))
        assert quota.used_bytes == PAGE_SIZE
