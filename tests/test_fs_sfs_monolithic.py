"""Unit tests for SFS assembly (placements) and the monolithic SFS."""

import pytest

from repro.errors import FsError, StackingError
from repro.fs.monolithic import MonolithicSfs
from repro.fs.sfs import PLACEMENTS, create_sfs
from repro.fs.stack import describe_stack, domains_of, stack_depth, stack_layers
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE, AccessRights


class TestCreateSfs:
    def test_two_domains_placement(self, sfs):
        assert sfs.placement == "two_domains"
        assert sfs.disk_layer.domain is not sfs.coherency_layer.domain
        assert stack_depth(sfs.top) == 2

    def test_one_domain_placement(self, sfs_factory):
        node, stack = sfs_factory(placement="one_domain")
        assert stack.disk_layer.domain is stack.coherency_layer.domain
        assert stack_depth(stack.top) == 2

    def test_not_stacked_placement(self, sfs_factory):
        node, stack = sfs_factory(placement="not_stacked")
        assert isinstance(stack.top, MonolithicSfs)
        assert stack_depth(stack.top) == 1

    def test_unknown_placement_rejected(self, world, node, device):
        with pytest.raises(StackingError):
            create_sfs(node, device, placement="three_domains")

    def test_exported_in_fs_context(self, node, sfs):
        assert node.fs_context.resolve("sfs") is sfs.top

    def test_behaviour_identical_across_placements(self, sfs_factory):
        """Same workload, same results, regardless of placement — only
        the virtual cost differs (that's Table 2's premise)."""
        results = []
        for placement in PLACEMENTS:
            node, stack = sfs_factory(placement=placement)
            user = node.world.create_user_domain(node)
            with user.activate():
                f = stack.top.create_file("w.dat")
                f.write(0, b"abc" * 1000)
                f.write(1500, b"XYZ")
                data = f.read(1498, 7)
                size = f.get_attributes().size
            results.append((data, size))
        assert len(set(results)) == 1

    def test_costs_ordered_across_placements(self, sfs_factory):
        """open cost: not_stacked < one_domain < two_domains."""
        costs = {}
        for placement in PLACEMENTS:
            node, stack = sfs_factory(placement=placement)
            world = node.world
            user = world.create_user_domain(node)
            with user.activate():
                stack.top.create_file("o.dat")
                stack.top.resolve("o.dat")  # warm
                before = world.clock.now_us
                stack.top.resolve("o.dat")
                costs[placement] = world.clock.now_us - before
        assert costs["not_stacked"] < costs["one_domain"] < costs["two_domains"]


class TestMonolithicSfs:
    @pytest.fixture
    def mono(self, sfs_factory):
        node, stack = sfs_factory(placement="not_stacked")
        user = node.world.create_user_domain(node)
        return node, stack.top, user

    def test_create_write_read(self, mono):
        node, fs, user = mono
        with user.activate():
            f = fs.create_file("m.dat")
            f.write(0, b"monolithic")
            assert f.read(0, 10) == b"monolithic"

    def test_cached_reads_avoid_disk(self, mono):
        node, fs, user = mono
        device = fs.device
        with user.activate():
            f = fs.create_file("m.dat")
            f.write(0, b"x" * PAGE_SIZE)
            f.read(0, PAGE_SIZE)
            reads = device.reads
            f.read(0, PAGE_SIZE)
            assert device.reads == reads

    def test_sync_persists(self, mono):
        node, fs, user = mono
        with user.activate():
            f = fs.create_file("m.dat")
            f.write(0, b"durable")
            f.sync()
        from repro.storage.volume import Volume

        volume = Volume.mount(fs.device)
        ino = volume.lookup(volume.sb.root_ino, "m.dat")
        assert volume.read_data(ino, 0, 7) == b"durable"

    def test_mapping_coherent_with_file_interface(self, mono):
        node, fs, user = mono
        with user.activate():
            f = fs.create_file("m.dat")
            f.write(0, b"z" * PAGE_SIZE)
            mapping = node.vmm.create_address_space("t").map(
                f, AccessRights.READ_WRITE
            )
            mapping.write(0, b"MAPPED")
            assert fs.resolve("m.dat").read(0, 6) == b"MAPPED"
            f.write(0, b"FILEIF")
            assert mapping.read(0, 6) == b"FILEIF"

    def test_resolve_multi_component(self, mono):
        node, fs, user = mono
        volume = fs.volume
        from repro.storage.inode import FileType

        d = volume.create(volume.sb.root_ino, "dir", FileType.DIRECTORY)
        volume.create(d.ino, "leaf.dat", FileType.REGULAR)
        with user.activate():
            handle = fs.resolve("dir/leaf.dat")
            assert handle.get_length() == 0

    def test_unbind(self, mono):
        node, fs, user = mono
        with user.activate():
            fs.create_file("gone")
            fs.unbind("gone")
            names = [n for n, _ in fs.list_bindings()]
            assert "gone" not in names

    def test_truncate(self, mono):
        node, fs, user = mono
        with user.activate():
            f = fs.create_file("t.dat")
            f.write(0, b"0123456789")
            f.set_length(3)
            assert f.read(0, 100) == b"012"

    def test_stack_on_rejected(self, mono):
        node, fs, user = mono
        with pytest.raises(StackingError):
            fs.stack_on(fs)


class TestStackIntrospection:
    def test_stack_layers_order(self, sfs):
        layers = stack_layers(sfs.top)
        assert [l.fs_type() for l in layers] == ["coherency", "disk"]

    def test_describe_contains_domains(self, sfs):
        text = describe_stack(sfs.top)
        assert "coherency" in text and "disk" in text
        assert "sfs-coherency" in text and "sfs-disk" in text

    def test_domains_of(self, sfs):
        assert domains_of(sfs.top) == [
            "testnode/sfs-coherency",
            "testnode/sfs-disk",
        ]

    def test_diamond_stack_layers_once(self, world, node):
        """fs4 over fs1+fs2 where fs3 also uses fs1: each layer listed
        once."""
        from repro.fs.compfs import CompFs
        from repro.fs.mirrorfs import MirrorFs
        from repro.ipc.domain import Credentials

        dev1 = BlockDevice(node.nucleus, "d1", 4096)
        dev2 = BlockDevice(node.nucleus, "d2", 4096)
        fs1 = create_sfs(node, dev1, name="fs1").top
        fs2 = create_sfs(node, dev2, name="fs2").top
        fs4 = MirrorFs(node.create_domain("fs4", Credentials("m", True)))
        fs4.stack_on(fs1)
        fs4.stack_on(fs2)
        layers = stack_layers(fs4)
        assert len(layers) == len(set(id(l) for l in layers))
        assert stack_depth(fs4) == 3
