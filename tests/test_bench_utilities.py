"""Unit tests for the bench harness, workload generators, world
counters, and the report generator."""

import zlib

import pytest

from repro.bench.harness import (
    Measurement,
    TableFormatter,
    measure,
    measure_once,
    normalized,
)
from repro.bench.workloads import (
    build_tree_spec,
    compressible_bytes,
    file_names,
    hot_cold_accesses,
    incompressible_bytes,
    pattern_bytes,
    random_ranges,
    sequential_ranges,
)
from repro.types import PAGE_SIZE
from repro.world import World


class TestMeasure:
    def test_mean_of_constant_op(self, world):
        def op():
            world.clock.advance(10, "cpu")

        result = measure(world, "op", op, iterations=5, runs=3)
        assert result.mean_us == 10
        assert result.runs == 3 and result.iterations == 5

    def test_warmup_not_counted(self, world):
        state = {"first": True}

        def op():
            if state["first"]:
                world.clock.advance(1000, "cpu")  # cold first call
                state["first"] = False
            else:
                world.clock.advance(10, "cpu")

        result = measure(world, "op", op, iterations=10, runs=2, warmup=1)
        assert result.mean_us == 10

    def test_breakdown_per_iteration(self, world):
        def op():
            world.clock.advance(6, "disk")
            world.clock.advance(4, "cpu")

        result = measure(world, "op", op, iterations=4, runs=2)
        assert result.breakdown["disk"] == pytest.approx(6)
        assert result.breakdown["cpu"] == pytest.approx(4)

    def test_measure_once(self, world):
        result = measure_once(world, "x", lambda: world.clock.advance(7))
        assert result.mean_us == 7

    def test_mean_ms(self):
        assert Measurement("x", 1500.0, 1, 1, {}).mean_ms == 1.5


class TestTableFormatter:
    def test_render_aligns_columns(self):
        table = TableFormatter("T", ["a", "b"])
        table.add_row("row1", [100.0, 2000.0])
        table.add_row("longer-row", [1.0, 1_000_000.0])
        out = table.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "100.0 us" in out
        assert "1000.00 ms" in out  # >= 1000 us rendered in ms
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # all rows same width

    def test_normalized(self):
        assert normalized(139.0, 100.0) == "139%"
        assert normalized(5, 0) == "n/a"


class TestWorkloads:
    def test_compressible_compresses(self):
        blob = compressible_bytes(50_000, seed=1)
        assert len(zlib.compress(blob)) < len(blob) / 2

    def test_incompressible_does_not(self):
        blob = incompressible_bytes(50_000, seed=1)
        assert len(zlib.compress(blob)) > len(blob) * 0.9

    def test_deterministic_by_seed(self):
        assert compressible_bytes(1000, seed=3) == compressible_bytes(1000, seed=3)
        assert compressible_bytes(1000, seed=3) != compressible_bytes(1000, seed=4)
        assert incompressible_bytes(100, 1) == incompressible_bytes(100, 1)

    def test_pattern_bytes_self_describing(self):
        a = pattern_bytes(1000, tag=1)
        b = pattern_bytes(1000, tag=2)
        assert a != b
        assert pattern_bytes(1000, tag=1) == a
        assert len(a) == 1000

    def test_file_names_unique(self):
        names = file_names(100)
        assert len(set(names)) == 100

    def test_sequential_ranges_cover_file(self):
        ranges = list(sequential_ranges(3 * PAGE_SIZE + 100))
        assert sum(size for _, size in ranges) == 3 * PAGE_SIZE + 100
        assert ranges[0] == (0, PAGE_SIZE)
        assert ranges[-1][1] == 100

    def test_random_ranges_aligned_and_bounded(self):
        for offset, size in random_ranges(10 * PAGE_SIZE, 50, seed=2):
            assert offset % PAGE_SIZE == 0
            assert offset + size <= 10 * PAGE_SIZE

    def test_hot_cold_skew(self):
        files = file_names(100)
        accesses = list(hot_cold_accesses(files, 2000, seed=5))
        hot = set(files[:10])
        hot_fraction = sum(1 for a in accesses if a in hot) / len(accesses)
        assert hot_fraction > 0.8

    def test_tree_spec_shape(self):
        spec = build_tree_spec(depth=2, fanout=2, files_per_dir=3)
        dirs = [path for kind, path in spec if kind == "dir"]
        files = [path for kind, path in spec if kind == "file"]
        assert len(dirs) == 2 + 4  # level0: 2, level1: 4
        assert len(files) == 3 * (1 + 2 + 4)


class TestCounters:
    def test_inc_amount(self, world):
        world.counters.inc("x", 5)
        world.counters.inc("x")
        assert world.counters.get("x") == 6

    def test_reset(self, world):
        world.counters.inc("x")
        world.counters.reset()
        assert world.counters.get("x") == 0

    def test_delta_since_ignores_unchanged(self, world):
        world.counters.inc("a")
        snapshot = world.counters.snapshot()
        world.counters.inc("b", 2)
        assert world.counters.delta_since(snapshot) == {"b": 2}


class TestReport:
    def test_quick_report_runs(self, capsys):
        from repro.report import main

        assert main(["--quick", "--figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "report complete" in out

    def test_tables_only(self, capsys):
        from repro.report import main

        assert main(["--quick", "--tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out and "Table 3" in out
        assert "Figure 5" not in out
