"""Persistent volumes: image-backed block stores, clean/dirty unmount
lifecycle, crash-mid-flush recovery, and cylinder-group geometry."""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceError, StorageError
from repro.fs import NullFs, create_sfs
from repro.ipc.domain import Credentials
from repro.storage import (
    STATE_CLEAN,
    BlockDevice,
    FileType,
    ImageBlockStore,
    MemoryBlockStore,
    SuperBlock,
    Volume,
)
from repro.world import World

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def image_device(path, num_blocks=2048, fresh=True):
    world = World()
    node = world.create_node("n")
    if fresh:
        return world.create_image(node.nucleus, str(path), num_blocks)
    return world.open_image(node.nucleus, str(path))


class TestImageBlockStore:
    def test_create_and_reopen_geometry(self, tmp_path):
        path = str(tmp_path / "geo.img")
        store = ImageBlockStore.create(path, num_blocks=64, block_size=512)
        store.write(3, b"x" * 512)
        store.close()
        again = ImageBlockStore.open(path)
        assert again.num_blocks == 64
        assert again.block_size == 512
        assert again.persistent
        assert again.read(3) == b"x" * 512
        again.close()

    def test_unwritten_blocks_read_zero(self, tmp_path):
        store = ImageBlockStore.create(str(tmp_path / "z.img"), 16, 512)
        assert store.read(7) == bytes(512)
        assert store.read_run(0, 4) == bytes(4 * 512)
        store.close()

    def test_sparse_on_disk(self, tmp_path):
        path = str(tmp_path / "sparse.img")
        store = ImageBlockStore.create(path, num_blocks=100_000, block_size=4096)
        store.write(99_999, b"end" + bytes(4093))
        store.close()
        # Logical size is the full array; allocated size is tiny.
        assert os.path.getsize(path) >= 100_000 * 4096
        assert os.stat(path).st_blocks * 512 < 1_000_000

    def test_rejects_bad_magic(self, tmp_path):
        path = str(tmp_path / "bad.img")
        with open(path, "wb") as fh:
            fh.write(b"NOTANIMG" + bytes(4096))
        with pytest.raises(DeviceError, match="magic"):
            ImageBlockStore.open(path)

    def test_rejects_truncated_image(self, tmp_path):
        path = str(tmp_path / "short.img")
        store = ImageBlockStore.create(path, num_blocks=64, block_size=512)
        store.close()
        with open(path, "r+b") as fh:
            fh.truncate(4096 + 10 * 512)
        with pytest.raises(DeviceError, match="short"):
            ImageBlockStore.open(path)

    def test_closed_store_raises(self, tmp_path):
        store = ImageBlockStore.create(str(tmp_path / "c.img"), 16, 512)
        store.close()
        with pytest.raises(DeviceError, match="closed"):
            store.read(0)

    def test_memoryview_write_lands(self, tmp_path):
        """Zero-copy discipline: a memoryview rides straight into the file."""
        store = ImageBlockStore.create(str(tmp_path / "mv.img"), 16, 512)
        buf = bytearray(b"v" * 512)
        store.write(5, memoryview(buf))
        assert store.read(5) == b"v" * 512
        store.close()

    def test_device_adopts_store_geometry(self, tmp_path):
        store = ImageBlockStore.create(str(tmp_path / "a.img"), 32, 1024)
        world = World()
        node = world.create_node("n")
        dev = BlockDevice(node.nucleus, "img", store=store)
        assert dev.num_blocks == 32
        assert dev.block_size == 1024
        dev.close()


class TestVolumeLifecycle:
    def test_unmount_marks_clean_remount_sees_it(self, tmp_path):
        dev = image_device(tmp_path / "v.img")
        vol = Volume.mkfs(dev, inode_count=64)
        f = vol.create(vol.sb.root_ino, "f", FileType.REGULAR)
        vol.write_data(f.ino, 0, b"data" * 100)
        vol.unmount()
        sb = SuperBlock.unpack(dev.peek(0))
        assert sb.state == STATE_CLEAN
        dev.close()

        dev2 = image_device(tmp_path / "v.img", fresh=False)
        vol2 = Volume.mount(dev2)
        assert vol2.was_clean
        assert vol2.fsck() == []
        ino = vol2.lookup(vol2.sb.root_ino, "f")
        assert vol2.read_data(ino, 0, 4) == b"data"
        dev2.close()

    def test_mutation_after_unmount_redirties(self, tmp_path):
        dev = image_device(tmp_path / "v.img")
        vol = Volume.mkfs(dev, inode_count=64)
        vol.unmount()
        assert SuperBlock.unpack(dev.peek(0)).state == STATE_CLEAN
        vol.create(vol.sb.root_ino, "late", FileType.REGULAR)
        # The first mutation wrote the superblock DIRTY before anything else.
        assert SuperBlock.unpack(dev.peek(0)).state != STATE_CLEAN
        vol.unmount()
        assert SuperBlock.unpack(dev.peek(0)).state == STATE_CLEAN
        dev.close()

    def test_unmount_idempotent(self, tmp_path):
        dev = image_device(tmp_path / "v.img")
        vol = Volume.mkfs(dev, inode_count=64)
        first = vol.unmount()
        assert first > 0
        assert vol.unmount() == 0
        dev.close()

    def test_skipping_unmount_reports_dirty(self, tmp_path):
        dev = image_device(tmp_path / "v.img")
        vol = Volume.mkfs(dev, inode_count=64)
        vol.create(vol.sb.root_ino, "f", FileType.REGULAR)
        vol.sync()
        dev.flush()
        dev.close()
        dev2 = image_device(tmp_path / "v.img", fresh=False)
        vol2 = Volume.mount(dev2)
        assert not vol2.was_clean
        problems = vol2.fsck()
        assert any("superblock" in p and "dirty" in p for p in problems)
        dev2.close()


def apply_ops(volume, ops):
    """Drive a volume through an op sequence, mirroring into an oracle
    {name: contents} dict (flat namespace under the root)."""
    root = volume.sb.root_ino
    oracle = {}
    for kind, name, payload in ops:
        if kind == "create":
            if name in oracle:
                continue
            inode = volume.create(root, name, FileType.REGULAR)
            if payload:
                volume.write_data(inode.ino, 0, payload)
            oracle[name] = payload
        elif kind == "write":
            if name not in oracle:
                continue
            ino = volume.lookup(root, name)
            volume.write_data(ino, 0, payload)
            old = oracle[name]
            oracle[name] = payload + old[len(payload):]
        elif kind == "unlink":
            if name not in oracle:
                continue
            volume.unlink(root, name)
            del oracle[name]
        elif kind == "truncate":
            if name not in oracle:
                continue
            length = len(payload)
            volume.truncate(volume.lookup(root, name), length)
            old = oracle[name]
            oracle[name] = old[:length] + bytes(max(0, length - len(old)))
    return oracle


op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["create", "write", "unlink", "truncate"]),
        st.sampled_from(["a", "b", "c", "d", "e"]),
        st.binary(min_size=0, max_size=6000),
    ),
    max_size=30,
)


class TestRoundTripProperty:
    @given(ops=op_strategy)
    @settings(max_examples=25, deadline=None)
    def test_image_roundtrip(self, ops, tmp_path_factory):
        """Any op sequence, unmounted to an image and remounted by a
        fresh World, yields the identical tree and a clean fsck."""
        path = str(tmp_path_factory.mktemp("rt") / "rt.img")
        dev = image_device(path, num_blocks=4096)
        vol = Volume.mkfs(dev, inode_count=128)
        oracle = apply_ops(vol, ops)
        vol.unmount()
        dev.close()

        dev2 = image_device(path, fresh=False)
        vol2 = Volume.mount(dev2)
        assert vol2.was_clean
        assert vol2.fsck() == []
        root = vol2.sb.root_ino
        assert set(vol2.readdir(root)) == set(oracle)
        for name, data in oracle.items():
            ino = vol2.lookup(root, name)
            assert vol2.read_data(ino, 0, len(data) + 16) == data
        dev2.close()
        os.unlink(path)


class TestCrashMidFlush:
    def _build_and_crash(self, path, fail_after):
        dev = image_device(path, num_blocks=2048)
        vol = Volume.mkfs(dev, inode_count=128)
        root = vol.sb.root_ino
        f = vol.create(root, "keep", FileType.REGULAR)
        vol.write_data(f.ino, 0, b"k" * 5000)
        vol.unmount()
        # New work whose flush will be torn.
        g = vol.create(root, "torn", FileType.REGULAR)
        vol.write_data(g.ino, 0, b"t" * 9000)
        dev.inject_power_failure_after(fail_after)
        with pytest.raises(DeviceError, match="power failure"):
            vol.unmount()
        dev.close()  # the medium survives; the machine died

    def test_detects_dirty_and_repairs_leaks(self, tmp_path):
        path = str(tmp_path / "crash.img")
        # One write survives: the bitmap lands, i-nodes do not -> the
        # new file's blocks are allocated-but-unreferenced (leaked) and
        # the rewritten root directory's old block is a lost claim.
        self._build_and_crash(path, fail_after=1)
        dev = image_device(path, fresh=False)
        vol = Volume.mount(dev)
        assert not vol.was_clean
        problems = vol.fsck()
        assert any("superblock" in p for p in problems)
        assert any("leaked" in p for p in problems)
        vol.fsck(repair=True)
        assert vol.fsck() == []
        # Pre-crash state is intact.
        ino = vol.lookup(vol.sb.root_ino, "keep")
        assert vol.read_data(ino, 0, 5000) == b"k" * 5000
        assert "torn" not in vol.readdir(vol.sb.root_ino)
        # Repaired state survives its own unmount/remount.
        vol.unmount()
        dev.close()
        dev2 = image_device(path, fresh=False)
        vol2 = Volume.mount(dev2)
        assert vol2.was_clean
        assert vol2.fsck() == []
        dev2.close()

    def test_crash_after_metadata_only_dirty_flag(self, tmp_path):
        path = str(tmp_path / "late.img")
        # Everything except the final CLEAN superblock write lands: the
        # only problem is the dirty flag itself.
        self._build_and_crash(path, fail_after=2)
        dev = image_device(path, fresh=False)
        vol = Volume.mount(dev)
        assert not vol.was_clean
        problems = vol.fsck()
        assert problems == ["superblock: volume was not cleanly unmounted (dirty)"]
        vol.fsck(repair=True)
        assert vol.fsck() == []
        ino = vol.lookup(vol.sb.root_ino, "torn")
        assert vol.read_data(ino, 0, 9000) == b"t" * 9000
        dev.close()

    def test_fsck_repairs_double_claim(self, tmp_path):
        dev = image_device(tmp_path / "dc.img")
        vol = Volume.mkfs(dev, inode_count=64)
        root = vol.sb.root_ino
        f1 = vol.create(root, "f1", FileType.REGULAR)
        f2 = vol.create(root, "f2", FileType.REGULAR)
        vol.write_data(f1.ino, 0, b"one!" * 100)
        vol.write_data(f2.ino, 0, b"two!" * 100)
        stolen = vol.iget(f1.ino).direct[0]
        orphaned = vol.iget(f2.ino).direct[0]
        vol.iget(f2.ino).direct[0] = stolen
        problems = vol.fsck()
        assert any("claimed by" in p for p in problems)
        vol.fsck(repair=True)
        assert vol.fsck() == []
        # Both files read their own (duplicated) bytes.
        assert vol.read_data(f1.ino, 0, 4) == b"one!"
        assert vol.read_data(f2.ino, 0, 4) == b"one!"  # copied contested block
        assert vol.iget(f2.ino).direct[0] != stolen
        # The orphaned original block went back to the free pool.
        assert not vol.allocator.is_allocated(orphaned)
        dev.close()


class TestStackPersistence:
    def test_three_layer_stack_fresh_world_roundtrip(self, tmp_path):
        """A tree written through nullfs -> coherency -> disk onto an
        image serves identical reads from a brand-new World."""
        path = str(tmp_path / "stack.img")
        world = World()
        node = world.create_node("alpha")
        dev = world.create_image(node.nucleus, path, num_blocks=4096)
        sfs = create_sfs(node, dev, placement="two_domains", format_device=True)
        null = NullFs(node.create_domain("null", Credentials("null", True)))
        null.stack_on(sfs.top)
        user = world.create_user_domain(node)
        payload = bytes(range(256)) * 64
        with user.activate():
            d = null.create_dir("tree")
            f = d.create_file("blob.bin")
            f.write(0, payload)
            null.create_file("top.txt").write(0, b"at the root")
        assert world.save() > 0
        dev.close()

        world2 = World()
        node2 = world2.create_node("alpha")
        dev2 = world2.open_image(node2.nucleus, path)
        sfs2 = create_sfs(node2, dev2, placement="two_domains", format_device=False)
        null2 = NullFs(node2.create_domain("null", Credentials("null", True)))
        null2.stack_on(sfs2.top)
        assert sfs2.volume.was_clean
        assert sfs2.volume.fsck() == []
        user2 = world2.create_user_domain(node2)
        with user2.activate():
            assert null2.resolve("tree/blob.bin").read(0, len(payload)) == payload
            assert null2.resolve("top.txt").read(0, 11) == b"at the root"
        dev2.close()

    def test_fresh_process_serves_identical_reads(self, tmp_path):
        """The acceptance-criteria wording taken literally: a second OS
        process remounts the image and reads the same bytes."""
        path = str(tmp_path / "proc.img")
        dev = image_device(path, num_blocks=2048)
        vol = Volume.mkfs(dev, inode_count=64)
        vol.write_data(
            vol.create(vol.sb.root_ino, "x", FileType.REGULAR).ino,
            0,
            b"cross-process bytes",
        )
        vol.unmount()
        dev.close()
        code = (
            "import sys; sys.path.insert(0, sys.argv[2])\n"
            "from repro.world import World\n"
            "from repro.storage import Volume\n"
            "w = World(); n = w.create_node('n')\n"
            "dev = w.open_image(n.nucleus, sys.argv[1])\n"
            "v = Volume.mount(dev)\n"
            "assert v.was_clean and v.fsck() == []\n"
            "ino = v.lookup(v.sb.root_ino, 'x')\n"
            "assert v.read_data(ino, 0, 19) == b'cross-process bytes'\n"
            "print('OK')\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code, path, REPO_SRC],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == "OK"

    def test_monolithic_unmount_remount(self, tmp_path):
        path = str(tmp_path / "mono.img")
        world = World()
        node = world.create_node("n")
        dev = world.create_image(node.nucleus, path, num_blocks=2048)
        sfs = create_sfs(node, dev, placement="not_stacked", format_device=True)
        user = world.create_user_domain(node)
        with user.activate():
            sfs.top.create_file("m.txt").write(0, b"mono")
        sfs.unmount()
        sfs.remount()
        assert sfs.volume.was_clean
        with user.activate():
            assert sfs.top.resolve("m.txt").read(0, 4) == b"mono"
        dev.close()


class TestCylinderGroups:
    def test_multigroup_layout_roundtrip(self, tmp_path):
        dev = image_device(tmp_path / "cg.img", num_blocks=4096)
        vol = Volume.mkfs(dev, inode_count=128, cylinder_groups=4)
        assert vol.sb.cg_count == 4
        assert len(vol.sb.groups()) == 4
        root = vol.sb.root_ino
        for i in range(40):
            f = vol.create(root, f"f{i}", FileType.REGULAR)
            vol.write_data(f.ino, 0, bytes([i]) * 3000)
        assert vol.fsck() == []
        vol.unmount()
        dev.close()
        dev2 = image_device(tmp_path / "cg.img", fresh=False)
        vol2 = Volume.mount(dev2)
        assert vol2.was_clean
        assert vol2.sb.cg_count == 4
        assert vol2.fsck() == []
        for i in range(40):
            ino = vol2.lookup(vol2.sb.root_ino, f"f{i}")
            assert vol2.read_data(ino, 0, 3000) == bytes([i]) * 3000
        dev2.close()

    def test_file_blocks_follow_inode_group(self):
        world = World()
        node = world.create_node("n")
        dev = BlockDevice(node.nucleus, "mem", num_blocks=8192)
        vol = Volume.mkfs(dev, inode_count=256, cylinder_groups=4)
        root = vol.sb.root_ino
        groups = vol.sb.groups()
        f = vol.create(root, "f", FileType.REGULAR)
        vol.write_data(f.ino, 0, b"z" * 8192)
        gi = vol.sb.group_of_ino(f.ino)
        g = groups[gi]
        for _, block in vol._mapped_blocks(vol.iget(f.ino)):
            assert g.data_start <= block < g.end

    def test_directories_spread_across_groups(self):
        world = World()
        node = world.create_node("n")
        dev = BlockDevice(node.nucleus, "mem", num_blocks=8192)
        vol = Volume.mkfs(dev, inode_count=256, cylinder_groups=4)
        root = vol.sb.root_ino
        dirs = [vol.create(root, f"d{i}", FileType.DIRECTORY) for i in range(8)]
        occupied = {vol.sb.group_of_ino(d.ino) for d in dirs}
        assert len(occupied) > 1

    def test_too_many_groups_rejected(self):
        with pytest.raises(StorageError, match="too small"):
            SuperBlock.compute(4096, 64, 64, cylinder_groups=32)

    def test_memory_store_still_default(self):
        world = World()
        node = world.create_node("n")
        dev = BlockDevice(node.nucleus, "mem", num_blocks=128)
        assert isinstance(dev.store, MemoryBlockStore)
        assert not dev.store.persistent
