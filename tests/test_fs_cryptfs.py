"""Unit tests for CRYPTFS: keystream determinism, roundtrips, ciphertext
on disk, per-block invalidation, and degraded (channel-refused) mode."""

import pytest

from repro.bench.workloads import incompressible_bytes
from repro.fs.cryptfs import CryptFs, keystream, xor_block
from repro.fs.sfs import create_sfs
from repro.ipc.domain import Credentials
from repro.types import PAGE_SIZE, AccessRights

RW = AccessRights.READ_WRITE


@pytest.fixture
def env(world, node, device):
    sfs = create_sfs(node, device)
    domain = node.create_domain("cryptfs", Credentials("cryptfs", True))
    layer = CryptFs(domain, key=b"unit-test-key")
    layer.stack_on(sfs.top)
    user = world.create_user_domain(node)
    return world, node, sfs, layer, user


class TestCipher:
    def test_keystream_deterministic(self):
        assert keystream(b"k", 0, 64) == keystream(b"k", 0, 64)

    def test_keystream_varies_by_block(self):
        assert keystream(b"k", 0, 64) != keystream(b"k", 1, 64)

    def test_keystream_varies_by_key(self):
        assert keystream(b"a", 0, 64) != keystream(b"b", 0, 64)

    def test_keystream_length(self):
        assert len(keystream(b"k", 0, 100)) == 100
        assert len(keystream(b"k", 0, PAGE_SIZE)) == PAGE_SIZE

    def test_xor_involution(self):
        data = incompressible_bytes(PAGE_SIZE, seed=1)
        assert xor_block(xor_block(data, b"k", 3), b"k", 3) == data

    def test_xor_changes_data(self):
        data = b"plaintext" * 100
        assert xor_block(data, b"k", 0) != data


class TestRoundtrip:
    def test_write_read(self, env):
        _, _, _, layer, user = env
        with user.activate():
            f = layer.create_file("e.bin")
            payload = incompressible_bytes(3 * PAGE_SIZE, seed=2)
            f.write(0, payload)
            assert f.read(0, len(payload)) == payload

    def test_ciphertext_on_underlying(self, env):
        _, _, sfs, layer, user = env
        with user.activate():
            f = layer.create_file("e.bin")
            secret = b"top secret contents!" * 50
            f.write(0, secret)
            f.sync()
            raw = sfs.top.resolve("e.bin").read(0, len(secret))
            assert raw != secret
            assert xor_block(raw[:PAGE_SIZE], b"unit-test-key", 0)[
                : len(secret) if len(secret) < PAGE_SIZE else PAGE_SIZE
            ].startswith(b"top secret")

    def test_length_preserved(self, env):
        _, _, sfs, layer, user = env
        with user.activate():
            f = layer.create_file("e.bin")
            f.write(0, b"x" * 12345)
            f.sync()
            assert sfs.top.resolve("e.bin").get_length() == 12345
            assert f.get_length() == 12345

    def test_partial_overwrite(self, env):
        _, _, _, layer, user = env
        with user.activate():
            f = layer.create_file("e.bin")
            f.write(0, b"a" * 100)
            f.write(50, b"B" * 10)
            assert f.read(45, 20) == b"aaaaa" + b"B" * 10 + b"aaaaa"

    def test_cross_page_write(self, env):
        _, _, _, layer, user = env
        payload = incompressible_bytes(PAGE_SIZE, seed=3)
        with user.activate():
            f = layer.create_file("e.bin")
            f.write(0, bytes(2 * PAGE_SIZE))
            f.write(PAGE_SIZE - 100, payload)
            f.sync()
            again = layer.resolve("e.bin")
            assert again.read(PAGE_SIZE - 100, PAGE_SIZE) == payload

    def test_reload_after_cache_drop(self, env):
        """Data must decrypt correctly from disk, not just from cache."""
        _, _, _, layer, user = env
        payload = incompressible_bytes(2 * PAGE_SIZE, seed=4)
        with user.activate():
            f = layer.create_file("e.bin")
            f.write(0, payload)
            f.sync()
        state = next(iter(layer._states.values()))
        state.plain.clear()
        with user.activate():
            assert layer.resolve("e.bin").read(0, len(payload)) == payload

    def test_truncate(self, env):
        _, _, _, layer, user = env
        with user.activate():
            f = layer.create_file("e.bin")
            f.write(0, b"0123456789")
            f.set_length(4)
            assert f.read(0, 100) == b"0123"

    def test_wrong_key_reads_garbage(self, env):
        _, node, sfs, layer, user = env
        with user.activate():
            f = layer.create_file("e.bin")
            f.write(0, b"sensitive")
            f.sync()
        wrong = CryptFs(
            node.create_domain("cryptfs2", Credentials("c2", True)),
            key=b"WRONG-key",
        )
        wrong.stack_on(sfs.top)
        with user.activate():
            assert wrong.resolve("e.bin").read(0, 9) != b"sensitive"


class TestCoherenceWithDirectAccess:
    def test_direct_write_invalidates_plaintext(self, env):
        _, _, sfs, layer, user = env
        with user.activate():
            f = layer.create_file("c.bin")
            f.write(0, b"original")
            f.read(0, 8)  # cache plaintext
            # Direct client writes new ciphertext to the underlying file.
            new_plain = b"REPLACED"
            image = xor_block(new_plain, b"unit-test-key", 0)
            raw = sfs.top.resolve("c.bin")
            raw.write(0, image)
            assert layer.resolve("c.bin").read(0, 8) == b"REPLACED"

    def test_mapping_of_cryptfile_coherent(self, env):
        _, node, _, layer, user = env
        with user.activate():
            f = layer.create_file("m.bin")
            f.write(0, b"z" * PAGE_SIZE)
            mapping = node.vmm.create_address_space("t").map(f, RW)
            mapping.write(0, b"VIA MAP")
            assert layer.resolve("m.bin").read(0, 7) == b"VIA MAP"


class TestDegradedMode:
    def test_works_over_mirrorfs(self, world, node):
        """mirrorfs refuses writable binds; cryptfs must degrade to the
        file interface and still behave correctly."""
        from repro.fs.mirrorfs import MirrorFs
        from repro.storage.block_device import BlockDevice

        dev_a = BlockDevice(node.nucleus, "ma", 4096)
        dev_b = BlockDevice(node.nucleus, "mb", 4096)
        sfs_a = create_sfs(node, dev_a, name="ma")
        sfs_b = create_sfs(node, dev_b, name="mb")
        mirror = MirrorFs(node.create_domain("mir", Credentials("m", True)))
        mirror.stack_on(sfs_a.top)
        mirror.stack_on(sfs_b.top)
        crypt = CryptFs(
            node.create_domain("cry", Credentials("c", True)), key=b"k2"
        )
        crypt.stack_on(mirror)
        user = world.create_user_domain(node)
        with user.activate():
            f = crypt.create_file("d.bin")
            f.write(0, b"mirrored secret")
            f.sync()
            assert crypt.resolve("d.bin").read(0, 15) == b"mirrored secret"
            raw_a = sfs_a.top.resolve("d.bin").read(0, 15)
            raw_b = sfs_b.top.resolve("d.bin").read(0, 15)
            assert raw_a == raw_b != b"mirrored secret"
        assert world.counters.get("cryptfs.bind_refused") == 1
