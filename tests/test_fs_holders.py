"""Unit tests for the MRSW block-holder table, using scripted cache
objects that record the coherency actions performed on them."""

import pytest

from repro.ipc.invocation import operation
from repro.types import PAGE_SIZE, AccessRights
from repro.vm.cache_object import CacheObject
from repro.vm.channel import CacheRights, Channel
from repro.vm.pager_object import PagerObject
from repro.fs.holders import BlockHolderTable

RO = AccessRights.READ_ONLY
RW = AccessRights.READ_WRITE


class RecordingCache(CacheObject):
    """A cache object that logs coherency actions and returns scripted
    modified data."""

    def __init__(self, domain, dirty=None):
        super().__init__(domain)
        self.dirty = dict(dirty or {})
        self.actions = []

    @operation
    def flush_back(self, offset, size):
        self.actions.append(("flush_back", offset, size))
        out, self.dirty = self.dirty, {}
        return out

    @operation
    def deny_writes(self, offset, size):
        self.actions.append(("deny_writes", offset, size))
        out, self.dirty = self.dirty, {}
        return out

    @operation
    def write_back(self, offset, size):
        self.actions.append(("write_back", offset, size))
        out = dict(self.dirty)
        self.dirty = {}
        return out

    @operation
    def delete_range(self, offset, size):
        self.actions.append(("delete_range", offset, size))

    @operation
    def zero_fill(self, offset, size):
        self.actions.append(("zero_fill", offset, size))

    @operation
    def populate(self, offset, size, access, data):
        self.actions.append(("populate", offset, size))

    @operation
    def destroy_cache(self):
        self.actions.append(("destroy",))


class NullPager(PagerObject):
    @operation
    def page_in(self, offset, size, access):
        return b""

    @operation
    def page_out(self, offset, size, data):
        pass

    @operation
    def write_out(self, offset, size, data):
        pass

    @operation
    def sync(self, offset, size, data):
        pass

    @operation
    def done_with_pager_object(self):
        pass


@pytest.fixture
def make_channel(node):
    def build(dirty=None):
        domain = node.nucleus
        cache = RecordingCache(domain, dirty)
        rights = CacheRights(domain, "test")
        channel = Channel(NullPager(domain), cache, rights, "test")
        return channel

    return build


class TestAcquire:
    def test_no_holders_no_actions(self, make_channel):
        table = BlockHolderTable()
        requester = make_channel()
        assert table.acquire(requester, 0, PAGE_SIZE, RW) == {}
        assert table.holders_of(0) == [(requester, RW)]

    def test_readers_coexist(self, make_channel):
        table = BlockHolderTable()
        r1, r2 = make_channel(), make_channel()
        table.acquire(r1, 0, PAGE_SIZE, RO)
        table.acquire(r2, 0, PAGE_SIZE, RO)
        assert r1.cache_object.actions == []
        assert len(table.holders_of(0)) == 2

    def test_writer_flushes_readers(self, make_channel):
        table = BlockHolderTable()
        reader, writer = make_channel(), make_channel()
        table.acquire(reader, 0, PAGE_SIZE, RO)
        table.acquire(writer, 0, PAGE_SIZE, RW)
        assert ("flush_back", 0, PAGE_SIZE) in reader.cache_object.actions
        assert table.holders_of(0) == [(writer, RW)]

    def test_writer_flushes_writer_and_recovers_data(self, make_channel):
        table = BlockHolderTable()
        w1 = make_channel(dirty={0: b"w1-data"})
        w2 = make_channel()
        table.acquire(w1, 0, PAGE_SIZE, RW)
        recovered = table.acquire(w2, 0, PAGE_SIZE, RW)
        assert recovered == {0: b"w1-data"}
        assert table.writer_of(0) is w2

    def test_reader_downgrades_writer(self, make_channel):
        table = BlockHolderTable()
        writer = make_channel(dirty={0: b"dirty"})
        reader = make_channel()
        table.acquire(writer, 0, PAGE_SIZE, RW)
        recovered = table.acquire(reader, 0, PAGE_SIZE, RO)
        assert recovered == {0: b"dirty"}
        assert ("deny_writes", 0, PAGE_SIZE) in writer.cache_object.actions
        # Writer retained the data read-only; both are now readers.
        assert {rights for _, rights in table.holders_of(0)} == {RO}
        assert table.writer_of(0) is None

    def test_reader_does_not_disturb_readers(self, make_channel):
        table = BlockHolderTable()
        r1, r2 = make_channel(), make_channel()
        table.acquire(r1, 0, PAGE_SIZE, RO)
        table.acquire(r2, 0, PAGE_SIZE, RO)
        assert r1.cache_object.actions == []

    def test_requester_not_acted_on(self, make_channel):
        table = BlockHolderTable()
        w = make_channel(dirty={0: b"mine"})
        table.acquire(w, 0, PAGE_SIZE, RW)
        recovered = table.acquire(w, 0, PAGE_SIZE, RW)
        assert recovered == {}
        assert w.cache_object.actions == []

    def test_pager_itself_as_requester(self, make_channel):
        """acquire(None, ...) — file-interface access by the pager."""
        table = BlockHolderTable()
        w = make_channel(dirty={0: b"client-data"})
        table.acquire(w, 0, PAGE_SIZE, RW)
        recovered = table.acquire(None, 0, PAGE_SIZE, RW)
        assert recovered == {0: b"client-data"}
        assert table.holders_of(0) == []

    def test_per_block_granularity(self, make_channel):
        table = BlockHolderTable()
        w = make_channel()
        table.acquire(w, 0, PAGE_SIZE, RW)
        other = make_channel()
        # A write to block 5 must not disturb the holder of block 0.
        table.acquire(other, 5 * PAGE_SIZE, PAGE_SIZE, RW)
        assert w.cache_object.actions == []
        assert table.writer_of(0) is w
        assert table.writer_of(5) is other

    def test_range_spanning_blocks(self, make_channel):
        table = BlockHolderTable()
        w = make_channel(dirty={1: b"b1"})
        table.acquire(w, 0, 3 * PAGE_SIZE, RW)
        r = make_channel()
        recovered = table.acquire(r, PAGE_SIZE, PAGE_SIZE, RO)
        assert recovered == {1: b"b1"}
        # Only the overlapping block was downgraded.
        assert table.writer_of(0) is w
        assert table.writer_of(1) is None


class TestCollectAndInvalidate:
    def test_collect_latest_write_back(self, make_channel):
        table = BlockHolderTable()
        w = make_channel(dirty={0: b"fresh"})
        table.acquire(w, 0, PAGE_SIZE, RW)
        assert table.collect_latest(0, PAGE_SIZE) == {0: b"fresh"}
        # Mode unchanged: still the writer.
        assert table.writer_of(0) is w

    def test_collect_latest_skips_readers(self, make_channel):
        table = BlockHolderTable()
        r = make_channel(dirty={0: b"should-not-be-asked"})
        table.acquire(r, 0, PAGE_SIZE, RO)
        assert table.collect_latest(0, PAGE_SIZE) == {}
        assert r.cache_object.actions == []

    def test_invalidate_notifies_all(self, make_channel):
        table = BlockHolderTable()
        r1, r2 = make_channel(), make_channel()
        table.acquire(r1, 0, PAGE_SIZE, RO)
        table.acquire(r2, 0, PAGE_SIZE, RO)
        table.invalidate(0, PAGE_SIZE)
        assert ("delete_range", 0, PAGE_SIZE) in r1.cache_object.actions
        assert ("delete_range", 0, PAGE_SIZE) in r2.cache_object.actions
        assert table.holders_of(0) == []

    def test_invalidate_excludes(self, make_channel):
        table = BlockHolderTable()
        keep, drop = make_channel(), make_channel()
        table.acquire(keep, 0, PAGE_SIZE, RO)
        table.acquire(drop, 0, PAGE_SIZE, RO)
        table.invalidate(0, PAGE_SIZE, exclude=keep)
        assert keep.cache_object.actions == []
        assert table.holders_of(0) == [(keep, RO)]

    def test_drop_channel(self, make_channel):
        table = BlockHolderTable()
        c = make_channel()
        table.acquire(c, 0, 4 * PAGE_SIZE, RO)
        table.drop_channel(c)
        assert not table.any_holder()

    def test_closed_channels_skipped(self, make_channel):
        table = BlockHolderTable()
        c = make_channel(dirty={0: b"lost"})
        table.acquire(c, 0, PAGE_SIZE, RW)
        c.closed = True
        assert table.acquire(None, 0, PAGE_SIZE, RW) == {}

    def test_forget_range(self, make_channel):
        table = BlockHolderTable()
        c = make_channel()
        table.acquire(c, 0, 2 * PAGE_SIZE, RO)
        table.forget_range(c, 0, PAGE_SIZE)
        assert table.holders_of(0) == []
        assert table.holders_of(1) == [(c, RO)]
