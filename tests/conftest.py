"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.fs.sfs import create_sfs
from repro.storage.block_device import BlockDevice, RamDevice
from repro.storage.volume import Volume
from repro.world import World


@pytest.fixture
def world() -> World:
    return World()


@pytest.fixture
def node(world):
    return world.create_node("testnode")


@pytest.fixture
def user(world, node):
    return world.create_user_domain(node)


@pytest.fixture
def device(node) -> BlockDevice:
    return BlockDevice(node.nucleus, "sd0", num_blocks=8192)


@pytest.fixture
def ram_device(node) -> RamDevice:
    return RamDevice(node.nucleus, "ram0", num_blocks=8192)


@pytest.fixture
def volume(ram_device) -> Volume:
    return Volume.mkfs(ram_device)


@pytest.fixture
def sfs(world, node, device):
    """The production configuration: coherency over disk, two domains."""
    return create_sfs(node, device, placement="two_domains", cache=True)


@pytest.fixture
def sfs_factory(world):
    """Build independent SFS instances (own node+device per call)."""
    counter = [0]

    def build(placement: str = "two_domains", cache: bool = True):
        counter[0] += 1
        node = world.create_node(f"sfs-node-{counter[0]}")
        device = BlockDevice(node.nucleus, "sd0", num_blocks=8192)
        return node, create_sfs(node, device, placement=placement, cache=cache)

    return build
