"""Unit tests for the attribute value types."""

import pytest

from repro.fs.attributes import CachedAttributes, FileAttributes
from repro.storage.inode import FileType, Inode


class TestFileAttributes:
    def test_from_inode_roundtrip(self):
        inode = Inode(
            ino=5,
            type=FileType.REGULAR,
            nlink=2,
            size=999,
            atime_us=1,
            mtime_us=2,
            ctime_us=3,
        )
        attrs = FileAttributes.from_inode(inode)
        assert (attrs.size, attrs.nlink, attrs.ftype) == (
            999,
            2,
            FileType.REGULAR,
        )
        other = Inode(ino=6, type=FileType.REGULAR)
        attrs.apply_to_inode(other)
        assert (other.size, other.nlink) == (999, 2)
        assert (other.atime_us, other.mtime_us, other.ctime_us) == (1, 2, 3)

    def test_copy_is_independent(self):
        attrs = FileAttributes(size=10)
        clone = attrs.copy()
        clone.size = 20
        assert attrs.size == 10


class TestCachedAttributes:
    def test_starts_clean(self):
        cached = CachedAttributes(FileAttributes(size=5))
        assert not cached.dirty

    def test_touch_atime_dirties(self):
        cached = CachedAttributes(FileAttributes())
        cached.touch_atime(123)
        assert cached.attrs.atime_us == 123
        assert cached.dirty

    def test_touch_mtime_updates_ctime_too(self):
        cached = CachedAttributes(FileAttributes())
        cached.touch_mtime(456)
        assert cached.attrs.mtime_us == 456
        assert cached.attrs.ctime_us == 456
        assert cached.dirty

    def test_grow_only_grows(self):
        cached = CachedAttributes(FileAttributes(size=100))
        cached.grow(50)
        assert cached.attrs.size == 100
        assert not cached.dirty
        cached.grow(200)
        assert cached.attrs.size == 200
        assert cached.dirty

    def test_set_size_dirty_only_on_change(self):
        cached = CachedAttributes(FileAttributes(size=7))
        cached.set_size(7)
        assert not cached.dirty
        cached.set_size(3)
        assert cached.attrs.size == 3
        assert cached.dirty
