"""Unit tests for COMPFS: compression format, both coherence cases,
mappings of file_COMP, and space accounting."""

import pytest

from repro.bench.workloads import compressible_bytes, incompressible_bytes
from repro.errors import FsError
from repro.fs.compfs import CompFs, pack_compressed, unpack_compressed
from repro.fs.sfs import create_sfs
from repro.ipc.domain import Credentials
from repro.types import PAGE_SIZE, AccessRights

RO = AccessRights.READ_ONLY
RW = AccessRights.READ_WRITE


@pytest.fixture
def env(world, node, device):
    sfs = create_sfs(node, device)
    user = world.create_user_domain(node)

    def build(coherent=True):
        domain = node.create_domain(
            f"compfs-{'c' if coherent else 'n'}", Credentials("compfs", True)
        )
        layer = CompFs(domain, coherent=coherent)
        layer.stack_on(sfs.top)
        return layer

    return world, node, sfs, user, build


class TestFormat:
    def test_roundtrip(self):
        blob = compressible_bytes(10_000, seed=1)
        assert unpack_compressed(pack_compressed(blob)) == blob

    def test_empty(self):
        assert unpack_compressed(pack_compressed(b"")) == b""
        assert unpack_compressed(b"") == b""

    def test_bad_magic_rejected(self):
        with pytest.raises(FsError):
            unpack_compressed(b"XXXX" + bytes(100))

    def test_truncated_header_rejected(self):
        with pytest.raises(FsError):
            unpack_compressed(b"CZ")

    def test_size_mismatch_detected(self):
        import struct

        payload = pack_compressed(b"hello")
        forged = struct.pack("<4sQ", b"CZ01", 999) + payload[12:]
        with pytest.raises(FsError):
            unpack_compressed(forged)

    def test_actually_compresses(self):
        blob = compressible_bytes(100_000, seed=2)
        assert len(pack_compressed(blob)) < len(blob) // 2


class TestBasicOperation:
    def test_create_write_read(self, env):
        _, _, _, user, build = env
        compfs = build()
        with user.activate():
            f = compfs.create_file("a.z")
            payload = compressible_bytes(20_000, seed=3)
            f.write(0, payload)
            assert f.read(0, len(payload)) == payload
            assert f.get_length() == len(payload)

    def test_persisted_compressed(self, env):
        _, _, sfs, user, build = env
        compfs = build()
        payload = compressible_bytes(50_000, seed=4)
        with user.activate():
            f = compfs.create_file("a.z")
            f.write(0, payload)
            f.sync()
            raw = sfs.top.resolve("a.z")
            assert raw.read(0, 4) == b"CZ01"
            assert raw.get_length() < len(payload)

    def test_space_report(self, env):
        _, _, _, user, build = env
        compfs = build()
        payload = compressible_bytes(30_000, seed=5)
        with user.activate():
            f = compfs.create_file("a.z")
            f.write(0, payload)
            f.sync()
            report = compfs.space_report(f)
        assert report["plaintext_bytes"] == 30_000
        assert report["stored_bytes"] < 30_000

    def test_incompressible_data_survives(self, env):
        _, _, _, user, build = env
        compfs = build()
        payload = incompressible_bytes(15_000, seed=6)
        with user.activate():
            f = compfs.create_file("rand.bin")
            f.write(0, payload)
            f.sync()
            assert compfs.resolve("rand.bin").read(0, 15_000) == payload

    def test_overwrite_and_extend(self, env):
        _, _, _, user, build = env
        compfs = build()
        with user.activate():
            f = compfs.create_file("grow.z")
            f.write(0, b"aaaa")
            f.write(2, b"BBBB")  # overlap + extend
            assert f.read(0, 6) == b"aaBBBB"
            assert f.get_length() == 6

    def test_truncate(self, env):
        _, _, _, user, build = env
        compfs = build()
        with user.activate():
            f = compfs.create_file("t.z")
            f.write(0, b"0123456789")
            f.set_length(4)
            assert f.get_length() == 4
            assert f.read(0, 100) == b"0123"

    def test_attributes_show_plaintext_size(self, env):
        _, _, _, user, build = env
        compfs = build()
        payload = compressible_bytes(8_000, seed=7)
        with user.activate():
            f = compfs.create_file("a.z")
            f.write(0, payload)
            assert f.get_attributes().size == 8_000

    def test_reopen_after_sync_reloads(self, env):
        _, _, _, user, build = env
        compfs = build()
        payload = compressible_bytes(12_000, seed=8)
        with user.activate():
            f = compfs.create_file("a.z")
            f.write(0, payload)
            f.sync()
            again = compfs.resolve("a.z")
            assert again.read(0, len(payload)) == payload

    def test_empty_file(self, env):
        _, _, _, user, build = env
        compfs = build()
        with user.activate():
            f = compfs.create_file("empty.z")
            assert f.get_length() == 0
            assert f.read(0, 10) == b""

    def test_directories_wrapped(self, env):
        _, _, _, user, build = env
        compfs = build()
        with user.activate():
            sub = compfs.create_dir("sub")
            f = sub.create_file("inner.z")
            f.write(0, b"nested")
            assert compfs.resolve("sub/inner.z").read(0, 6) == b"nested"


class TestCoherenceCases:
    def _direct_rewrite(self, sfs, name, new_plain, user):
        image = pack_compressed(new_plain)
        with user.activate():
            raw = sfs.top.resolve(name)
            raw.set_length(len(image))
            raw.write(0, image)

    def test_case1_stale_after_direct_write(self, env):
        _, _, sfs, user, build = env
        compfs = build(coherent=False)
        with user.activate():
            f = compfs.create_file("s.z")
            f.write(0, b"version one")
            f.sync()
            f.read(0, 4)  # prime the plaintext cache
        self._direct_rewrite(sfs, "s.z", b"version TWO", user)
        with user.activate():
            assert compfs.resolve("s.z").read(0, 11) == b"version one"  # stale!

    def test_case2_coherent_after_direct_write(self, env):
        _, _, sfs, user, build = env
        compfs = build(coherent=True)
        with user.activate():
            f = compfs.create_file("s.z")
            f.write(0, b"version one")
            f.read(0, 4)
        self._direct_rewrite(sfs, "s.z", b"version TWO", user)
        with user.activate():
            assert compfs.resolve("s.z").read(0, 11) == b"version TWO"

    def test_case2_compfs_write_visible_directly(self, env):
        _, _, sfs, user, build = env
        compfs = build(coherent=True)
        with user.activate():
            f = compfs.create_file("w.z")
            f.write(0, b"written through compfs")
            raw = sfs.top.resolve("w.z")
            image = raw.read(0, raw.get_length())
            assert unpack_compressed(image) == b"written through compfs"

    def test_case1_write_back_needs_sync(self, env):
        _, _, sfs, user, build = env
        compfs = build(coherent=False)
        with user.activate():
            f = compfs.create_file("lazy.z")
            f.write(0, b"lazy data")
            assert sfs.top.resolve("lazy.z").get_length() == 0  # not yet
            f.sync()
            assert sfs.top.resolve("lazy.z").get_length() > 0


class TestMappings:
    def test_map_file_comp_reads_plaintext(self, env):
        _, node, _, user, build = env
        compfs = build()
        payload = compressible_bytes(3 * PAGE_SIZE, seed=9)
        with user.activate():
            f = compfs.create_file("m.z")
            f.write(0, payload)
            mapping = node.vmm.create_address_space("t").map(f, RO)
            assert mapping.read(PAGE_SIZE, 64) == payload[PAGE_SIZE : PAGE_SIZE + 64]

    def test_mapped_write_coherent_with_read(self, env):
        _, node, _, user, build = env
        compfs = build()
        with user.activate():
            f = compfs.create_file("mw.z")
            f.write(0, b"x" * PAGE_SIZE)
            mapping = node.vmm.create_address_space("t").map(f, RW)
            mapping.write(0, b"MAPWRITE")
            mapping.cache.sync()
            assert compfs.resolve("mw.z").read(0, 8) == b"MAPWRITE"

    def test_binds_to_file_comp_handled_by_compfs(self, env, world):
        """COMPFS can never share the underlying cache — plaintext and
        compressed bytes differ (sec. 4.2.2)."""
        _, node, _, user, build = env
        compfs = build()
        with user.activate():
            f = compfs.create_file("b.z")
            f.write(0, b"y" * PAGE_SIZE)
            node.vmm.create_address_space("t").map(f, RO).read(0, 4)
        assert world.counters.get("compfs.channel_created") == 1
