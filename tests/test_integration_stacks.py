"""Integration tests: full multi-layer stacks exercised end to end,
including the paper's sec. 4.5 walkthrough and the figure scenarios."""

import pytest

from repro.bench import figures
from repro.bench.workloads import compressible_bytes, pattern_bytes
from repro.fs.creators import LayerSpec, build_stack, register_standard_creators
from repro.fs.dfs import mount_remote
from repro.fs.sfs import create_sfs
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE, AccessRights
from repro.unix import O_CREAT, O_RDWR, Posix
from repro.world import World


class TestSection45Walkthrough:
    """The paper's 'putting everything together' sequence, step by step."""

    @pytest.fixture
    def stacked(self, world):
        server = world.create_node("server")
        client = world.create_node("client")
        register_standard_creators(server)
        device = BlockDevice(server.nucleus, "sd0", 16384)
        sfs = create_sfs(server, device)
        compfs, dfs = build_stack(
            server,
            sfs.top,
            [LayerSpec("compfs", {"coherent": True}), LayerSpec("dfs")],
            export_as="stacked",
            export_all=True,
        )
        mount_remote(client, server, "stacked")
        return world, server, client, sfs, compfs, dfs

    def test_remote_lookup_resolves_through_all_layers(self, stacked):
        world, server, client, sfs, compfs, dfs = stacked
        su = world.create_user_domain(server, "su")
        cu = world.create_user_domain(client, "cu")
        with su.activate():
            dfs.create_file("walk.dat").write(0, b"resolved through the stack")
        with cu.activate():
            remote = client.fs_context.resolve("stacked@server")
            f = remote.resolve("walk.dat")
            assert f.read(0, 26) == b"resolved through the stack"

    def test_remote_read_decompresses_on_the_way(self, stacked):
        world, server, client, sfs, compfs, dfs = stacked
        su = world.create_user_domain(server, "su")
        cu = world.create_user_domain(client, "cu")
        payload = compressible_bytes(64 * 1024, seed=11)
        with su.activate():
            f = dfs.create_file("big.dat")
            f.write(0, payload)
            f.sync()
        snapshot = world.counters.snapshot()
        with cu.activate():
            remote = client.fs_context.resolve("stacked@server")
            assert remote.resolve("big.dat").read(0, len(payload)) == payload
        traffic = world.counters.delta_since(snapshot)
        # COMPFS served page-ins; SFS served COMPFS; the disk was read.
        assert traffic.get("compfs.page_in", 0) > 0 or traffic.get(
            "op.read", 0
        ) > 0

    def test_all_views_coherent(self, stacked):
        """'At any point the underlying data may be accessed through
        file_COMP or (compressed) through file_SFS.  All such accesses
        will be coherent with each other and with remote DFS clients.'"""
        world, server, client, sfs, compfs, dfs = stacked
        su = world.create_user_domain(server, "su")
        cu = world.create_user_domain(client, "cu")
        with su.activate():
            dfs.create_file("coh.dat").write(0, b"first")
        with cu.activate():
            remote = client.fs_context.resolve("stacked@server")
            rf = remote.resolve("coh.dat")
            assert rf.read(0, 5) == b"first"
            rf.write(0, b"SECND")
        with su.activate():
            assert compfs.resolve("coh.dat").read(0, 5) == b"SECND"
            # And the raw SFS bytes are a fresh compressed image.
            raw = sfs.top.resolve("coh.dat")
            assert raw.read(0, 4) == b"CZ01"

    def test_underlying_files_exported_too(self, stacked):
        """'A decision is made whether or not to export SFS, COMPFS, and
        DFS files' — export_all bound each layer into /fs."""
        world, server, client, sfs, compfs, dfs = stacked
        names = [n for n, _ in server.fs_context.list_bindings()]
        assert "sfs" in names
        assert any(n.startswith("compfs-") for n in names)
        assert "stacked" in names


class TestDeepStacks:
    def test_four_layer_stack(self, world):
        """cryptfs on compfs on coherency on disk: transforms compose."""
        node = world.create_node("deep")
        register_standard_creators(node)
        device = BlockDevice(node.nucleus, "sd0", 16384)
        sfs = create_sfs(node, device)
        compfs, cryptfs = build_stack(
            node,
            sfs.top,
            [LayerSpec("compfs", {"coherent": True}), LayerSpec("cryptfs")],
            export_as="vault",
        )
        user = world.create_user_domain(node)
        payload = compressible_bytes(20_000, seed=12)
        with user.activate():
            top = node.fs_context.resolve("vault")
            f = top.create_file("secret.dat")
            f.write(0, payload)
            f.sync()
            assert top.resolve("secret.dat").read(0, len(payload)) == payload

    def test_posix_over_deep_stack(self, world):
        node = world.create_node("deep2")
        register_standard_creators(node)
        device = BlockDevice(node.nucleus, "sd0", 16384)
        sfs = create_sfs(node, device)
        build_stack(node, sfs.top, [LayerSpec("compfs")], export_as="cz")
        user = world.create_user_domain(node)
        posix = Posix(node.fs_context.resolve("cz"), user)
        posix.mkdir("home")
        fd = posix.open("home/notes.txt", O_RDWR | O_CREAT)
        posix.write(fd, b"posix over a stack")
        posix.lseek(fd, 0)
        assert posix.read(fd, 18) == b"posix over a stack"
        assert posix.listdir("home") == ["notes.txt"]

    def test_many_files_many_layers(self, world):
        node = world.create_node("many")
        register_standard_creators(node)
        device = BlockDevice(node.nucleus, "sd0", 32768)
        sfs = create_sfs(node, device)
        (compfs,) = build_stack(node, sfs.top, [LayerSpec("compfs")])
        user = world.create_user_domain(node)
        with user.activate():
            for i in range(25):
                f = compfs.create_file(f"file{i:02d}.dat")
                f.write(0, pattern_bytes(3000 + i * 100, tag=i))
            compfs.sync_fs()
            for i in range(25):
                f = compfs.resolve(f"file{i:02d}.dat")
                expected = pattern_bytes(3000 + i * 100, tag=i)
                assert f.read(0, len(expected)) == expected
        # The volume stayed consistent underneath it all.
        assert sfs.disk_layer.volume.fsck() == []


class TestFigureScenarios:
    """The figure builders double as integration assertions."""

    def test_fig01(self):
        result = figures.fig01_node_structure()
        assert result["vmm_in_nucleus"]
        assert "fs_creators" in result["root_contexts"]

    def test_fig02(self):
        result = figures.fig02_pager_cache_channels()
        assert result["pager1_channels_to_vmm1"] == 2
        assert result["pager2_channels"] == 2
        assert result["vmm2_caches"] == 1

    def test_fig03(self):
        result = figures.fig03_configuration()
        assert result["fs4_unders"] == ["coherency", "coherency"]
        assert result["replicas_match"]

    def test_fig04(self):
        result = figures.fig04_dual_role()
        assert all(
            result[k]
            for k in (
                "acts_as_pager_to_vmm",
                "acts_as_cache_manager_below",
                "up_cache_is_plain_cache",
                "down_pager_is_fs_pager",
            )
        )

    def test_fig05_incoherent(self):
        result = figures.fig05_compfs_case1()
        assert result["stored_is_compressed"]
        assert not result["compfs_sees_direct_write"]

    def test_fig06_coherent(self):
        result = figures.fig06_compfs_case2()
        assert result["compfs_sees_direct_write"]
        assert result["flush_events_at_compfs"] >= 1

    def test_fig07(self):
        result = figures.fig07_dfs()
        assert result["binds_forwarded"] >= 1
        assert result["local_sees_remote_write"]

    def test_fig08(self):
        result = figures.fig08_interface_hierarchy()
        assert all(v is True for v in result.values())

    def test_fig09(self):
        result = figures.fig09_full_stack()
        assert result["remote_read_correct"]
        assert result["stored_bytes"] < result["plain_bytes"]
        assert result["depth"] == 4

    def test_fig10(self):
        result = figures.fig10_sfs_structure()
        assert result["layers"] == ["coherency", "disk"]
        assert result["separate_domains"]
        assert result["exported_is_coherency_layer"]
