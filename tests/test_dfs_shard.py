"""The sharded DFS: striping and placement, quorum writes/reads with
failover, versioned idempotent block puts, re-replication and
rebalancing, configuration validation at ``stack_on``, the degenerate
single-node cell, and the benchmark's acceptance bars."""

from __future__ import annotations

import pathlib

import pytest

from repro.dfs import (
    QuorumReadError,
    QuorumWriteError,
    create_sharded_dfs,
)
from repro.errors import StackingError, TransientNetworkError
from repro.sim.faults import FaultPlan
from repro.types import PAGE_SIZE, AccessRights
from repro.world import World

BENCH = pathlib.Path(__file__).parent.parent / "benchmarks"

#: A heartbeat interval long enough that no inline liveness scan runs
#: unless a test forces one — keeps placement and failover behaviour
#: exactly as scripted.
NEVER = 10.0**15


def make_cluster(**kwargs):
    kwargs.setdefault("world", World())
    kwargs.setdefault("heartbeat_interval_us", NEVER)
    return create_sharded_dfs(**kwargs)


@pytest.fixture
def cluster():
    return make_cluster()


@pytest.fixture
def user(cluster):
    return cluster.world.create_user_domain(cluster.client)


class TestStriping:
    def test_multi_page_roundtrip(self, cluster, user):
        payload = bytes(range(256)) * (5 * PAGE_SIZE // 256)
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            assert handle.write(0, payload) == len(payload)
            assert handle.read(0, len(payload)) == payload
            assert handle.get_length() == len(payload)

    def test_unaligned_overwrite_read_modify_write(self, cluster, user):
        payload = b"a" * (2 * PAGE_SIZE)
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, payload)
            handle.write(PAGE_SIZE - 10, b"B" * 20)
            back = handle.read(PAGE_SIZE - 12, 24)
        assert back == b"aa" + b"B" * 20 + b"aa"

    def test_replication_places_every_block_everywhere(self, cluster, user):
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, bytes(4 * PAGE_SIZE))
        key = handle.state.file_key
        for service in cluster.datanodes.values():
            assert service.stored_blocks() == 4
            for index in range(4):
                assert service.stored_version(key, index) == 1

    def test_single_replica_round_robin_placement(self, user):
        cluster = make_cluster(replication=1, write_quorum=1)
        user = cluster.world.create_user_domain(cluster.client)
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, bytes(6 * PAGE_SIZE))
        key = handle.state.file_key
        for index in range(6):
            info = cluster.namenode.block_map.block(key, index)
            assert list(info.holders) == [f"dn{index % 3}"]

    def test_sparse_hole_reads_zero(self, cluster, user):
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(3 * PAGE_SIZE, b"x" * PAGE_SIZE)
            hole = handle.read(PAGE_SIZE, PAGE_SIZE)
        assert hole == bytes(PAGE_SIZE)

    def test_truncate_drops_blocks_and_zeroes_tail(self, cluster, user):
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, b"z" * (3 * PAGE_SIZE))
            handle.set_length(PAGE_SIZE + 100)
            assert handle.get_length() == PAGE_SIZE + 100
            assert handle.read(0, 4 * PAGE_SIZE) == b"z" * (PAGE_SIZE + 100)
            # Re-extend: the truncated tail must not resurface.
            handle.set_length(2 * PAGE_SIZE)
            tail = handle.read(PAGE_SIZE + 100, PAGE_SIZE - 100)
        assert tail == bytes(PAGE_SIZE - 100)
        key = handle.state.file_key
        assert cluster.namenode.block_map.block(key, 2) is None


class TestQuorumWrite:
    def test_write_survives_one_crashed_replica(self, cluster, user):
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, b"v1" * (PAGE_SIZE // 2))
        cluster.datanode_nodes[1].crash()
        counters = cluster.world.counters
        before = counters.snapshot()
        with user.activate():
            handle.write(0, b"v2" * (PAGE_SIZE // 2))
            assert handle.read(0, 4) == b"v2v2"
        delta = counters.delta_since(before)
        assert delta.get("shard.quorum_writes") == 1
        assert delta.get("shard.write_failover") == 1
        assert "shard.quorum_failures" not in delta

    def test_write_below_quorum_raises(self, cluster, user):
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, b"v1" * (PAGE_SIZE // 2))
        cluster.datanode_nodes[1].crash()
        cluster.datanode_nodes[2].crash()
        with user.activate():
            with pytest.raises(QuorumWriteError):
                handle.write(0, b"v2" * (PAGE_SIZE // 2))
        assert cluster.world.counters.get("shard.quorum_failures") == 1

    def test_minority_ack_is_committed_and_repaired(self, cluster, user):
        """A failed quorum write whose single ack *was* durable is
        tracked by the NameNode and repaired to full replication —
        the write failed the availability contract, not durability."""
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, b"v1" * (PAGE_SIZE // 2))
        cluster.datanode_nodes[1].crash()
        cluster.datanode_nodes[2].crash()
        with user.activate():
            with pytest.raises(QuorumWriteError):
                handle.write(0, b"v2" * (PAGE_SIZE // 2))
        cluster.datanode_nodes[1].recover()
        cluster.datanode_nodes[2].recover()
        cluster.namenode.heartbeat_scan()
        cluster.namenode.repair()
        assert cluster.namenode.fully_replicated()
        with user.activate():
            assert handle.read(0, 4) == b"v2v2"

    def test_partial_write_to_dead_single_replica_fails_on_rmw_read(self, user):
        cluster = make_cluster(replication=1, write_quorum=1)
        user = cluster.world.create_user_domain(cluster.client)
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, bytes(PAGE_SIZE))
        key = handle.state.file_key
        holder = next(iter(cluster.namenode.block_map.block(key, 0).holders))
        cluster.world.nodes[holder].crash()
        with user.activate():
            # Unaligned: the read-modify-write base read fails first.
            with pytest.raises(QuorumReadError):
                handle.write(10, b"x" * 10)
            # Aligned: the put itself fails the quorum.
            with pytest.raises(QuorumWriteError):
                handle.write(0, b"x" * PAGE_SIZE)


class TestQuorumRead:
    def test_read_fails_over_to_live_replica(self, cluster, user):
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, b"q" * PAGE_SIZE)
        key = handle.state.file_key
        first = list(cluster.namenode.block_map.block(key, 0).holders)[0]
        cluster.world.nodes[first].crash()
        with user.activate():
            assert handle.read(0, 8) == b"q" * 8
        assert cluster.world.counters.get("shard.read_failover") == 1

    def test_read_unavailable_when_no_replica_reachable(self, user):
        cluster = make_cluster(replication=1, write_quorum=1)
        user = cluster.world.create_user_domain(cluster.client)
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, bytes(PAGE_SIZE))
        key = handle.state.file_key
        holder = next(iter(cluster.namenode.block_map.block(key, 0).holders))
        cluster.world.nodes[holder].crash()
        with user.activate():
            with pytest.raises(QuorumReadError):
                handle.read(0, 16)
        assert cluster.world.counters.get("shard.read_unavailable") == 1

    def test_read_quorum_degrades_to_reachable_holders(self, user):
        """read_quorum=2 with only one of three holders reachable:
        the quorum clamps to the live population (like the write side)
        instead of failing a read a current replica could serve."""
        cluster = make_cluster(read_quorum=2)
        user = cluster.world.create_user_domain(cluster.client)
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, b"rd" * (PAGE_SIZE // 2))
        cluster.datanode_nodes[1].crash()
        cluster.datanode_nodes[2].crash()
        with user.activate():
            assert handle.read(0, 4) == b"rdrd"
        counters = cluster.world.counters
        assert counters.get("shard.read_degraded") == 1
        assert counters.get("shard.read_unavailable") == 0

    def test_read_quorum_two_cross_checks_replicas(self, user):
        cluster = make_cluster(read_quorum=2)
        user = cluster.world.create_user_domain(cluster.client)
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, b"rq" * (PAGE_SIZE // 2))
            assert handle.read(0, 4) == b"rqrq"
        # Two replies per located block: the read's message count shows
        # the second replica was consulted.
        pair = cluster.world.network.per_pair
        readers = [
            pair.get(("client", f"dn{i}"), 0) for i in range(3)
        ]
        assert sum(1 for count in readers if count > 0) >= 2


class TestRepairAndRebalance:
    def test_re_replication_after_crash_recovery(self, cluster, user):
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, b"a" * (2 * PAGE_SIZE))
        cluster.datanode_nodes[1].crash()
        with user.activate():
            handle.write(0, b"b" * (2 * PAGE_SIZE))
        cluster.namenode.heartbeat_scan()  # notice the crash
        # The target degrades to the live population: 2 live replicas
        # of 2 live nodes is not a deficit the NameNode can act on.
        assert cluster.namenode.under_replicated_count() == 0
        cluster.datanode_nodes[1].recover()
        cluster.namenode.heartbeat_scan()  # notice the recovery
        cluster.namenode.repair()
        assert cluster.namenode.fully_replicated()
        assert cluster.world.counters.get("shard.nn.re_replications") >= 2
        # The recovered node really holds the committed versions.
        key = handle.state.file_key
        committed = cluster.namenode.block_map.block(key, 0).version
        assert cluster.datanodes["dn1"].stored_version(key, 0) == committed

    def test_under_replication_visible_only_once_node_returns(self, cluster, user):
        """With 2 of 3 nodes live the target degrades to 2 replicas
        (nowhere to put a third); the deficit appears when the third
        node returns, and repair clears it."""
        cluster.datanode_nodes[2].crash()
        cluster.namenode.heartbeat_scan()
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, bytes(PAGE_SIZE))
        assert cluster.namenode.under_replicated_count() == 0
        cluster.datanode_nodes[2].recover()
        cluster.namenode.heartbeat_scan()
        assert cluster.namenode.under_replicated_count() == 0  # scan repaired it
        assert cluster.namenode.fully_replicated()
        del handle

    def test_move_records_target_when_source_delete_fails(self, user, monkeypatch):
        """A rebalance move whose source delete is lost must still have
        recorded the new replica (no unrecorded orphan on the target)
        and must keep the source holder until a delete succeeds."""
        cluster = make_cluster(datanodes=2, replication=1, write_quorum=1)
        user = cluster.world.create_user_domain(cluster.client)
        cluster.datanode_nodes[1].crash()
        cluster.namenode.heartbeat_scan()
        payload = bytes(range(256)) * (4 * PAGE_SIZE // 256)
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, payload)
        assert cluster.datanodes["dn0"].stored_blocks() == 4
        cluster.datanode_nodes[1].recover()

        def lost_delete(file_key, indices):
            raise TransientNetworkError("source delete lost")

        monkeypatch.setattr(cluster.datanodes["dn0"], "delete_blocks", lost_delete)
        cluster.namenode.heartbeat_scan()
        cluster.namenode.rebalance(max_moves=1)
        key = handle.state.file_key
        moved = [
            (index, info)
            for _, index, info in cluster.namenode.block_map.blocks()
            if "dn1" in info.holders
        ]
        assert moved  # copies landed and were recorded...
        for _, info in moved:
            assert info.holders["dn1"] == info.version
            assert "dn0" in info.holders  # ...and the source stays listed
        assert cluster.datanodes["dn1"].stored_blocks() == len(moved)
        with user.activate():
            assert handle.read(0, len(payload)) == payload
        del key

    def test_rebalancer_spreads_skewed_placement(self, user):
        cluster = make_cluster(datanodes=4, replication=1, write_quorum=1)
        user = cluster.world.create_user_domain(cluster.client)
        # Skew: write 8 blocks while only dn0 is live.
        for node in cluster.datanode_nodes[1:]:
            node.crash()
        cluster.namenode.heartbeat_scan()
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, bytes(8 * PAGE_SIZE))
        assert cluster.datanodes["dn0"].stored_blocks() == 8
        for node in cluster.datanode_nodes[1:]:
            node.recover()
        cluster.namenode.heartbeat_scan()
        cluster.namenode.rebalance(max_moves=16)
        counts = {
            name: cluster.namenode.block_map.blocks_held_by(name)
            for name in cluster.datanodes
        }
        assert max(counts.values()) - min(counts.values()) < 2
        with user.activate():
            assert handle.read(0, 8 * PAGE_SIZE) == bytes(8 * PAGE_SIZE)


class TestVersionBurning:
    """Version numbers are never reused — the invariant the datanodes'
    skip-but-ack idempotence rests on."""

    def test_prepare_burns_versions_without_commit(self, cluster):
        """A prepare whose commit never lands still consumed its
        version: the next prepare must move past it, or two different
        byte strings could share one version and replicas diverge."""
        nn = cluster.namenode
        v1 = nn.prepare_write_range("k", 0, 1)[0][1]
        v2 = nn.prepare_write_range("k", 0, 1)[0][1]
        assert (v1, v2) == (1, 2)
        nn.commit_write("k", [(0, v2, ["dn0"])])
        info = nn.block_map.block("k", 0)
        assert info.version == 2
        assert info.prepared == 2

    def test_blockmap_floor_survives_drop(self):
        from repro.dfs.blockmap import BlockMap

        bm = BlockMap()
        info = bm.block("f", 0, create=True)
        info.prepared = info.version = 3
        bm.drop_from("f", 0)
        assert bm.version_floor("f") == 3
        fresh = bm.block("f", 0, create=True)
        assert fresh.version == 0  # never written: still reads as zeros
        assert fresh.next_version() == 4  # but versions resume past the floor

    def test_truncate_orphan_never_acks_reissued_version(self, cluster, user):
        """Truncate with an unreachable holder leaves an orphan replica
        behind; the re-created block must be written at a strictly
        higher version so the orphan is overwritten, not skip-but-acked
        into the new write's quorum (which would mark its stale bytes
        current)."""
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, b"o" * (2 * PAGE_SIZE))
        key = handle.state.file_key
        cluster.datanode_nodes[1].crash()
        with user.activate():
            handle.set_length(PAGE_SIZE)  # dn1 unreachable: orphan stays
        assert cluster.datanodes["dn1"].stored_version(key, 1) == 1
        assert cluster.namenode.block_map.block(key, 1) is None
        cluster.datanode_nodes[1].recover()
        with user.activate():
            handle.set_length(2 * PAGE_SIZE)
            handle.write(PAGE_SIZE, b"N" * PAGE_SIZE)
        info = cluster.namenode.block_map.block(key, 1)
        assert info.version == 2  # past the orphan's burned version
        # The put superseded the orphan everywhere, including dn1.
        assert cluster.datanodes["dn1"].stored_version(key, 1) == 2
        with user.activate():
            assert handle.read(PAGE_SIZE, 4) == b"NNNN"


class TestConfiguration:
    def test_write_quorum_above_replication_rejected(self):
        with pytest.raises(StackingError):
            make_cluster(replication=3, write_quorum=4)

    def test_read_quorum_above_replication_rejected(self):
        with pytest.raises(StackingError):
            make_cluster(replication=2, write_quorum=1, read_quorum=3)

    def test_zero_write_quorum_rejected(self):
        with pytest.raises(StackingError):
            make_cluster(write_quorum=0)

    def test_no_datanodes_rejected(self):
        with pytest.raises(StackingError):
            make_cluster(datanodes=0, replication=1, write_quorum=1)

    def test_replication_above_datanode_count_degrades(self, user):
        """R=3 on a 2-node cluster writes both replicas and is counted
        fully replicated — the target caps at the live population."""
        cluster = make_cluster(datanodes=2, replication=3, write_quorum=2)
        user = cluster.world.create_user_domain(cluster.client)
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, b"d" * PAGE_SIZE)
            assert handle.read(0, 4) == b"dddd"
        key = handle.state.file_key
        assert len(cluster.namenode.block_map.block(key, 0).holders) == 2
        assert cluster.namenode.fully_replicated()

    def test_single_node_degenerates_to_plain_dfs(self, user):
        cluster = make_cluster(datanodes=1, replication=1, write_quorum=1)
        user = cluster.world.create_user_domain(cluster.client)
        payload = bytes(range(256)) * (3 * PAGE_SIZE // 256)
        with user.activate():
            handle = cluster.layer.create_file("f.dat")
            handle.write(0, payload)
            assert handle.read(0, len(payload)) == payload
        assert cluster.datanodes["dn0"].stored_blocks() == 3


class TestDataNodeVersioning:
    def test_put_below_or_at_stored_version_skips_but_acks(self, cluster):
        service = cluster.datanodes["dn0"]
        acks = service.put_blocks("k", [(0, b"new" + bytes(PAGE_SIZE - 3), 2)])
        assert acks == [(0, 2)]
        # Replay of the same version: acked, not applied.
        acks = service.put_blocks("k", [(0, b"dup" + bytes(PAGE_SIZE - 3), 2)])
        assert acks == [(0, 2)]
        # An older version: acked at the stored version, not applied.
        acks = service.put_blocks("k", [(0, b"old" + bytes(PAGE_SIZE - 3), 1)])
        assert acks == [(0, 2)]
        [(_, data, version)] = service.get_blocks("k", [0])
        assert bytes(data[:3]) == b"new"
        assert version == 2
        counters = cluster.world.counters
        assert counters.get("shard.dn.put_applied") == 1
        assert counters.get("shard.dn.put_skipped") == 2

    def test_pull_block_copies_from_peer(self, cluster):
        source = cluster.datanodes["dn0"]
        target = cluster.datanodes["dn1"]
        source.put_blocks("k", [(5, b"peer" + bytes(PAGE_SIZE - 4), 3)])
        assert target.pull_block("k", 5, source) == 3
        assert target.stored_version("k", 5) == 3
        assert cluster.world.counters.get("shard.dn.pulled") == 1


class TestMappedPath:
    def test_vmm_mapping_faults_through_shards(self, cluster, user):
        with user.activate():
            handle = cluster.layer.create_file("m.dat")
            handle.write(0, b"s" * (2 * PAGE_SIZE))
            aspace = cluster.client.vmm.create_address_space("a")
            mapping = aspace.map(handle, AccessRights.READ_WRITE)
            assert mapping.read(0, 4) == b"ssss"
            mapping.write(10, b"dirty")
            # The coherent read recalls the dirty mapped page and
            # pushes it to the shards before serving.
            assert handle.read(10, 5) == b"dirty"
        assert cluster.world.counters.get("shardfs.page_in") >= 1

    def test_unaligned_length_survives_mapped_flush(self, cluster, user):
        """The VMM flushes whole pages; an unaligned file's length must
        not be rounded up to the page boundary when a dirty mapped page
        is recalled or synced (trailing zeros would become content)."""
        with user.activate():
            handle = cluster.layer.create_file("u.dat")
            handle.write(0, b"u" * 100)
            aspace = cluster.client.vmm.create_address_space("ua")
            mapping = aspace.map(handle, AccessRights.READ_WRITE)
            mapping.write(10, b"dirty")
            # Coherent read recalls the dirty page and pushes the whole
            # page to the shards.
            assert handle.read(10, 5) == b"dirty"
            assert handle.get_length() == 100
            handle.sync()
            assert handle.get_length() == 100
            # Reads clamp at the true EOF — no page-tail zeros served.
            back = handle.read(0, PAGE_SIZE)
        assert back == b"u" * 10 + b"dirty" + b"u" * 85

    def test_determinism_across_identical_runs(self):
        def run():
            cluster = make_cluster()
            user = cluster.world.create_user_domain(cluster.client)
            plan = FaultPlan(seed=5)
            plan.crash(
                "dn2",
                at_us=cluster.world.clock.now_us + 5_000.0,
                recover_at_us=cluster.world.clock.now_us + 40_000.0,
            )
            cluster.world.install_fault_plan(plan)
            with user.activate():
                handle = cluster.layer.create_file("d.dat")
                for i in range(12):
                    handle.write(i * PAGE_SIZE, bytes([i]) * PAGE_SIZE)
                    handle.read(0, PAGE_SIZE)
            cluster.namenode.heartbeat_scan()
            cluster.namenode.repair()
            return (
                cluster.world.clock.now_us,
                cluster.world.network.messages,
                cluster.world.counters.snapshot(),
            )

        assert run() == run()


class TestShardBenchmarkBars:
    """The ISSUE's acceptance bars for the reference shard schedule
    (one datanode crashed mid-write over a 100-op striped workload),
    asserted against the committed BENCH_shard.json."""

    @pytest.fixture(scope="class")
    def record(self):
        from benchmarks.bench_dfs_shard import build_record

        return build_record()

    def test_quorum_cell_completes_everything(self, record):
        quorum = record["cells"]["quorum"]
        assert quorum["availability_pct"] == 100.0
        assert quorum["failed"] == 0

    def test_quorum_cell_returns_to_full_replication(self, record):
        quorum = record["cells"]["quorum"]
        assert quorum["fully_replicated"] is True
        assert quorum["under_replicated"] == 0
        assert quorum["re_replications"] > 0

    def test_single_replica_cell_loses_operations(self, record):
        single = record["cells"]["single_replica"]
        assert single["failed"] >= 10

    def test_both_cells_saw_the_schedule(self, record):
        for cell in record["cells"].values():
            assert cell["faults_applied"] == {"crashes": 1, "recoveries": 1}

    def test_record_matches_committed_bytes(self, record):
        from benchmarks.emit_common import dump_record

        assert dump_record(record) == (BENCH / "BENCH_shard.json").read_text()
