"""Unit tests for the virtual clock and stopwatch."""

import pytest

from repro.sim.clock import SimClock, StopWatch


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_us == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance(2.5)
        assert clock.now_us == 12.5

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        assert clock.now_us == 0.0

    def test_zero_advance_allowed(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now_us == 0.0

    def test_category_attribution(self):
        clock = SimClock()
        clock.advance(5, "disk")
        clock.advance(3, "disk")
        clock.advance(2, "cpu")
        assert clock.charged("disk") == 8
        assert clock.charged("cpu") == 2
        assert clock.charged("network") == 0

    def test_categories_snapshot_is_copy(self):
        clock = SimClock()
        clock.advance(1, "cpu")
        snapshot = clock.categories()
        snapshot["cpu"] = 999
        assert clock.charged("cpu") == 1

    def test_listener_sees_every_charge(self):
        clock = SimClock()
        events = []
        clock.add_listener(lambda cat, delta: events.append((cat, delta)))
        clock.advance(4, "disk")
        clock.advance(1, "cpu")
        assert events == [("disk", 4), ("cpu", 1)]

    def test_listener_removal(self):
        clock = SimClock()
        events = []
        listener = lambda cat, delta: events.append(delta)
        clock.add_listener(listener)
        clock.advance(1)
        clock.remove_listener(listener)
        clock.advance(1)
        assert events == [1]

    def test_charge_counts(self):
        clock = SimClock()
        clock.advance(5, "disk")
        clock.advance(0.0, "disk")
        clock.advance(1, "cpu")
        assert clock.charge_count("disk") == 2  # zero-delta counts
        assert clock.charge_count("cpu") == 1
        assert clock.charge_count("network") == 0
        assert clock.charge_counts() == {"disk": 2, "cpu": 1}

    def test_charge_counts_snapshot_is_copy(self):
        clock = SimClock()
        clock.advance(1, "cpu")
        snapshot = clock.charge_counts()
        snapshot["cpu"] = 999
        assert clock.charge_count("cpu") == 1


class TestStopWatch:
    def test_measures_elapsed(self):
        clock = SimClock()
        clock.advance(100)
        watch = StopWatch(clock)
        with watch:
            clock.advance(42)
        assert watch.elapsed_us == 42

    def test_breakdown_only_counts_window(self):
        clock = SimClock()
        clock.advance(100, "disk")
        with StopWatch(clock) as watch:
            clock.advance(7, "disk")
            clock.advance(3, "cpu")
        assert watch.breakdown == {"disk": 7, "cpu": 3}

    def test_empty_window(self):
        clock = SimClock()
        with StopWatch(clock) as watch:
            pass
        assert watch.elapsed_us == 0
        assert watch.breakdown == {}

    def test_nested_watches(self):
        clock = SimClock()
        outer = StopWatch(clock)
        inner = StopWatch(clock)
        with outer:
            clock.advance(5)
            with inner:
                clock.advance(10)
        assert inner.elapsed_us == 10
        assert outer.elapsed_us == 15

    def test_zero_delta_charge_appears_in_breakdown(self):
        # A category explicitly charged 0.0 inside the window (e.g. a
        # zero-byte memcpy) must appear with value 0.0; earlier
        # revisions silently dropped it.
        clock = SimClock()
        with StopWatch(clock) as watch:
            clock.advance(0.0, "memcpy")
            clock.advance(3, "cpu")
        assert watch.breakdown == {"memcpy": 0.0, "cpu": 3}

    def test_uncharged_category_still_omitted(self):
        clock = SimClock()
        clock.advance(100, "disk")  # before the window
        with StopWatch(clock) as watch:
            clock.advance(1, "cpu")
        assert "disk" not in watch.breakdown

    def test_nested_regions_sharing_one_clock_breakdowns(self):
        # Regression test: nested StopWatch regions over one clock must
        # each attribute exactly the charges made inside their own
        # window — including a zero-delta charge in the inner region —
        # without the inner snapshot disturbing the outer one.
        clock = SimClock()
        clock.advance(50, "disk")  # pre-existing totals
        outer = StopWatch(clock)
        inner = StopWatch(clock)
        with outer:
            clock.advance(5, "cpu")
            with inner:
                clock.advance(10, "disk")
                clock.advance(0.0, "flush")
            clock.advance(2, "cpu")
        assert inner.breakdown == {"disk": 10, "flush": 0.0}
        assert outer.breakdown == {"cpu": 7, "disk": 10, "flush": 0.0}
        assert outer.elapsed_us == 17
