"""Unit tests for the disk layer (base, non-coherent on-disk layer)."""

import pytest

from repro.errors import (
    FileNotFoundError_,
    FsError,
    IsADirectoryError_,
    NameNotFoundError,
)
from repro.fs.disk_layer import DiskDirectory, DiskFile, DiskLayer
from repro.types import PAGE_SIZE, AccessRights
from repro.vm.memory_object import CacheManager


@pytest.fixture
def disk(node, ram_device):
    return DiskLayer(node.create_domain("disk"), ram_device, format_device=True)


class TestFileOperations:
    def test_create_write_read(self, disk, user):
        with user.activate():
            f = disk.create_file("a.txt")
            f.write(0, b"disk data")
            assert f.read(0, 9) == b"disk data"

    def test_every_data_access_hits_device(self, disk, user, ram_device):
        """The disk layer never caches data (paper fig. 10 notes)."""
        with user.activate():
            f = disk.create_file("a.txt")
            f.write(0, b"x" * PAGE_SIZE)
            reads_before = ram_device.reads
            f.read(0, PAGE_SIZE)
            f.read(0, PAGE_SIZE)
            assert ram_device.reads >= reads_before + 2

    def test_open_and_stat_need_no_device_io(self, disk, user, ram_device):
        """...but open and stat are served from the i-node/dentry cache."""
        with user.activate():
            f = disk.create_file("a.txt")
            f.write(0, b"data")
            disk.resolve("a.txt")  # warm the dentry cache
            reads_before = ram_device.reads
            handle = disk.resolve("a.txt")
            handle.get_attributes()
            assert ram_device.reads == reads_before

    def test_attributes_reflect_inode(self, disk, user):
        with user.activate():
            f = disk.create_file("a.txt")
            f.write(0, b"12345")
            attrs = f.get_attributes()
            assert attrs.size == 5
            assert attrs.nlink == 1

    def test_set_length(self, disk, user):
        with user.activate():
            f = disk.create_file("a.txt")
            f.write(0, b"123456789")
            f.set_length(4)
            assert f.get_length() == 4
            assert f.read(0, 100) == b"1234"

    def test_source_key_stable_across_opens(self, disk, user):
        with user.activate():
            disk.create_file("a.txt")
            h1 = disk.resolve("a.txt")
            h2 = disk.resolve("a.txt")
            assert h1 is not h2
            assert h1.source_key == h2.source_key

    def test_check_access_on_directory_write(self, disk, user):
        with user.activate():
            disk.create_dir("d")
            handle = disk.resolve("d")
            assert isinstance(handle, DiskDirectory)


class TestNaming:
    def test_multi_component_resolve(self, disk, user):
        with user.activate():
            d = disk.create_dir("sub")
            d.create_file("leaf.txt").write(0, b"deep")
            f = disk.resolve("sub/leaf.txt")
            assert f.read(0, 4) == b"deep"

    def test_resolve_missing(self, disk, user):
        with user.activate():
            with pytest.raises(FileNotFoundError_):
                disk.resolve("ghost")

    def test_resolve_through_file_rejected(self, disk, user):
        from repro.errors import NotADirectoryError_

        with user.activate():
            disk.create_file("plain")
            with pytest.raises((NotADirectoryError_, FileNotFoundError_)):
                disk.resolve("plain/deeper")

    def test_list_bindings(self, disk, user):
        with user.activate():
            disk.create_file("b")
            disk.create_file("a")
            disk.create_dir("c")
            names = [name for name, _ in disk.list_bindings()]
            assert names == ["a", "b", "c"]

    def test_unbind_unlinks(self, disk, user):
        with user.activate():
            disk.create_file("gone")
            disk.unbind("gone")
            with pytest.raises(FileNotFoundError_):
                disk.resolve("gone")

    def test_arbitrary_bind_rejected(self, disk, user):
        with user.activate():
            with pytest.raises(FsError):
                disk.bind("thing", object())

    def test_rename(self, disk, user):
        with user.activate():
            disk.create_file("old").write(0, b"content")
            disk.rename("old", "new")
            assert disk.resolve("new").read(0, 7) == b"content"

    def test_listing_does_not_charge_open_state(self, disk, user, world):
        with user.activate():
            for i in range(3):
                disk.create_file(f"f{i}")
            open_cost = world.cost_model.fs_open_state_us
            before = world.clock.now_us
            disk.list_bindings()
            # Listing three files must not pay 3x open-state.
            assert world.clock.now_us - before < 3 * open_cost


class TestPagerBehaviour:
    def test_bind_creates_channel(self, disk, user, node, world):
        with user.activate():
            f = disk.create_file("m.dat")
            f.write(0, b"m" * PAGE_SIZE)
            mapping = node.vmm.create_address_space("t").map(
                f, AccessRights.READ_ONLY
            )
            assert mapping.read(0, 1) == b"m"
        assert world.counters.get("disk.channel_created") == 1

    def test_no_coherency_between_channels(self, disk, user, node):
        """Two cache managers of the same disk file diverge — that is the
        point of the disk layer being non-coherent (sec. 6.3 motivates
        the coherency layer with exactly this)."""
        with user.activate():
            f = disk.create_file("m.dat")
            f.write(0, b"A" * PAGE_SIZE)
            aspace = node.vmm.create_address_space("t")
            m1 = aspace.map(disk.resolve("m.dat"), AccessRights.READ_WRITE)
            m1.read(0, 4)
            m1.write(0, b"NEW!")  # dirty in the VMM cache only
            # The file interface reads the device directly: stale.
            assert f.read(0, 4) == b"AAAA"

    def test_page_out_clamped_to_file_size(self, disk, user, node):
        with user.activate():
            f = disk.create_file("m.dat")
            f.write(0, b"short")
            mapping = node.vmm.create_address_space("t").map(
                f, AccessRights.READ_WRITE, length=PAGE_SIZE
            )
            mapping.write(0, b"SHORT")
            mapping.cache.sync()
            assert f.get_length() == 5

    def test_attr_ops_through_fs_pager(self, disk, user, node):
        from repro.fs.attributes import FileAttributes
        from repro.ipc.narrow import narrow
        from repro.vm.pager_object import FsPager

        with user.activate():
            f = disk.create_file("m.dat")
            f.write(0, b"payload")
            mapping = node.vmm.create_address_space("t").map(
                f, AccessRights.READ_ONLY
            )
            pager = narrow(mapping.cache.channel.pager_object, FsPager)
            assert pager is not None
            attrs = pager.attr_page_in()
            assert attrs.size == 7
            attrs.size = 3
            pager.attr_write_out(attrs)
            assert f.get_length() == 3

    def test_stack_on_rejected(self, disk, node):
        with pytest.raises(Exception):
            disk.stack_on(disk)
        assert disk.under_layers() == []

    def test_fs_type(self, disk):
        assert disk.fs_type() == "disk"
