"""Tests for the pluggable coherency protocols: both keep every view
correct; they differ in how much they invalidate (false sharing)."""

import pytest

from repro.fs.coherency import CoherencyLayer
from repro.fs.disk_layer import DiskLayer
from repro.fs.holders import (
    BlockHolderTable,
    WholeFileHolderTable,
    make_holder_table,
)
from repro.ipc.domain import Credentials
from repro.storage.block_device import RamDevice
from repro.types import PAGE_SIZE, AccessRights
from repro.world import World

RW = AccessRights.READ_WRITE


def build(protocol: str):
    world = World()
    node = world.create_node("proto")
    device = RamDevice(node.nucleus, "ram", 8192)
    disk = DiskLayer(node.create_domain("disk"), device, format_device=True)
    coherency = CoherencyLayer(
        node.create_domain("coh", Credentials("c", True)), protocol=protocol
    )
    coherency.stack_on(disk)
    user = world.create_user_domain(node)
    with user.activate():
        f = coherency.create_file("shared.bin")
        f.write(0, bytes(8 * PAGE_SIZE))
    return world, node, coherency, user


class TestFactory:
    def test_per_block(self):
        assert isinstance(make_holder_table("per_block"), BlockHolderTable)

    def test_whole_file(self):
        assert isinstance(make_holder_table("whole_file"), WholeFileHolderTable)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_holder_table("optimistic")


@pytest.mark.parametrize("protocol", ["per_block", "whole_file"])
class TestBothProtocolsAreCorrect:
    def test_mapping_and_file_views_coherent(self, protocol):
        world, node, coherency, user = build(protocol)
        with user.activate():
            f = coherency.resolve("shared.bin")
            mapping = node.vmm.create_address_space("t").map(f, RW)
            mapping.write(0, b"VIA MAPPING")
            assert coherency.resolve("shared.bin").read(0, 11) == b"VIA MAPPING"
            f.write(0, b"VIA FILE IF")
            assert mapping.read(0, 11) == b"VIA FILE IF"

    def test_two_mappings_coherent(self, protocol):
        world, node, coherency, user = build(protocol)
        with user.activate():
            m1 = node.vmm.create_address_space("a").map(
                coherency.resolve("shared.bin"), RW
            )
            m2 = node.vmm.create_address_space("b").map(
                coherency.resolve("shared.bin"), RW
            )
            # Distinct caches only if the handles are distinct sources;
            # here they are equivalent, so force separate channels via a
            # second coherency state is not possible — both mappings
            # share a cache.  Write/read still must agree.
            m1.write(PAGE_SIZE, b"one")
            assert m2.read(PAGE_SIZE, 3) == b"one"


class TestFalseSharing:
    """Two VMM-level writers on DIFFERENT blocks of the same file:
    per-block keeps them independent; whole-file ping-pongs."""

    def _two_node_writers(self, protocol):
        from repro.fs.dfs import DfsLayer, mount_remote

        world = World()
        server = world.create_node("server")
        clientA = world.create_node("clientA")
        clientB = world.create_node("clientB")
        device = RamDevice(server.nucleus, "ram", 8192)
        disk = DiskLayer(server.create_domain("disk"), device, format_device=True)
        coherency = CoherencyLayer(
            server.create_domain("coh", Credentials("c", True)),
            protocol=protocol,
        )
        coherency.stack_on(disk)
        server.fs_context.bind("fs", coherency)
        dfs = DfsLayer(
            server.create_domain("dfs", Credentials("d", True)),
            protocol=protocol,
        )
        dfs.stack_on(coherency)
        server.fs_context.bind("dfs", dfs)
        mount_remote(clientA, server, "dfs")
        mount_remote(clientB, server, "dfs")
        su = world.create_user_domain(server, "su")
        with su.activate():
            dfs.create_file("hot.bin").write(0, bytes(8 * PAGE_SIZE))
        mappings = []
        for client, name in ((clientA, "ua"), (clientB, "ub")):
            cu = world.create_user_domain(client, name)
            with cu.activate():
                rf = client.fs_context.resolve("dfs@server").resolve("hot.bin")
                mappings.append(
                    (cu, client.vmm.create_address_space(name).map(rf, RW))
                )
        return world, mappings

    @pytest.mark.parametrize("protocol", ["per_block", "whole_file"])
    def test_disjoint_writes_correct_under_both(self, protocol):
        world, mappings = self._two_node_writers(protocol)
        (cu_a, m_a), (cu_b, m_b) = mappings
        for round_number in range(4):
            with cu_a.activate():
                m_a.write(0, bytes([round_number + 1]) * 64)
            with cu_b.activate():
                m_b.write(4 * PAGE_SIZE, bytes([round_number + 101]) * 64)
        with cu_a.activate():
            assert m_a.read(0, 1) == bytes([4])
            assert m_a.read(4 * PAGE_SIZE, 1) == bytes([104])

    def test_whole_file_causes_more_coherency_traffic(self):
        costs = {}
        for protocol in ("per_block", "whole_file"):
            world, mappings = self._two_node_writers(protocol)
            (cu_a, m_a), (cu_b, m_b) = mappings
            snapshot = world.counters.snapshot()
            for round_number in range(4):
                with cu_a.activate():
                    m_a.write(0, b"A" * 64)
                with cu_b.activate():
                    m_b.write(4 * PAGE_SIZE, b"B" * 64)
            delta = world.counters.delta_since(snapshot)
            costs[protocol] = delta.get("vmm.flush_back", 0) + delta.get(
                "vmm.fault", 0
            )
        assert costs["whole_file"] > costs["per_block"]
