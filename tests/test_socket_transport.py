"""The real socket transport: framing, round trips, compound batches,
failure mapping, retries, and simulated/socket backend parity."""

import socket

import pytest

from repro.errors import (
    NodeCrashedError,
    TransientNetworkError,
    UnixError,
)
from repro.ipc import CompoundInvocation
from repro.ipc.network import NetworkPartitionError
from repro.ipc.retry import RetryPolicy
from repro.ipc import wire
from repro.ipc.transport import (
    ServerThread,
    SimulatedTransport,
    SocketServer,
    SocketTransport,
)
from repro.serve import Control, FileService, build_service
from repro.world import World


# --- harness ----------------------------------------------------------------

class ServedWorld:
    """One FileService world behind an in-process socket server."""

    def __init__(self, stack="sfs"):
        self.world, self.node, self.service = build_service(stack)
        self.server = self.node.serve()
        self.node.expose("fs", self.service)
        self.node.expose("control", Control(self.world, self.server))
        self.thread = ServerThread(self.server)
        self.port = self.thread.start()

    def client(self, **kwargs):
        kwargs.setdefault("dst", self.node.name)
        kwargs.setdefault("connect_timeout_s", 2.0)
        kwargs.setdefault("reply_timeout_s", 5.0)
        return SocketTransport("127.0.0.1", self.port, **kwargs)

    def stop(self):
        self.thread.stop()


@pytest.fixture
def served():
    harness = ServedWorld()
    yield harness
    harness.stop()


def closed_port() -> int:
    """A localhost port with nothing listening on it."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


# --- wire format ------------------------------------------------------------

class TestWireCodec:
    def test_value_round_trip(self):
        values = [
            None, True, False, 0, -1, 2**62, -(2**70), 3.25, "héllo",
            b"\x00\xffbytes", [1, [2, 3]], ("a", None), {"k": {"n": 1}},
            [{"mixed": (b"x", 1.5, False)}],
        ]
        for value in values:
            assert wire.decode_value(wire.encode_value(value)) == value

    def test_tuple_list_distinction_survives(self):
        assert wire.decode_value(wire.encode_value((1, 2))) == (1, 2)
        assert isinstance(wire.decode_value(wire.encode_value([1, 2])), list)

    def test_file_attributes_struct(self):
        from repro.fs.attributes import FileAttributes
        from repro.storage.inode import FileType

        attrs = FileAttributes(
            size=77, atime_us=1, mtime_us=2, ctime_us=3,
            ftype=FileType.DIRECTORY, nlink=2,
        )
        back = wire.decode_value(wire.encode_value(attrs))
        assert back == attrs and isinstance(back.ftype, FileType)

    def test_exception_round_trip(self):
        exc = wire.decode_value(wire.encode_value(UnixError("ENOENT", "gone")))
        assert isinstance(exc, UnixError)
        assert exc.code == "ENOENT" and "gone" in str(exc)
        exc = wire.decode_value(wire.encode_value(NodeCrashedError("down")))
        assert isinstance(exc, NodeCrashedError)

    def test_unknown_exception_decodes_as_remote_error(self):
        fields = {"type": "SomethingWeird", "message": "boom"}
        exc = wire.exception_from_fields(fields)
        assert isinstance(exc, wire.RemoteError)
        assert exc.remote_type == "SomethingWeird"

    def test_unencodable_value_raises(self):
        with pytest.raises(wire.WireEncodeError):
            wire.encode_value(object())
        with pytest.raises(wire.WireEncodeError):
            wire.encode_value({1: "non-string key"})

    def test_frame_round_trip(self):
        frame = wire.pack_frame(
            wire.REQUEST, 7, "client", "server", "stat",
            {"target": "fs", "args": ["a"], "kwargs": {}},
        )
        msg = wire.unpack_body(frame[4:])
        assert (msg.kind, msg.seq, msg.src, msg.dst, msg.op) == (
            wire.REQUEST, 7, "client", "server", "stat"
        )
        assert msg.payload["args"] == ["a"]

    def test_corrupt_frames_raise(self):
        frame = wire.pack_frame(wire.REPLY, 1, "a", "b", "op", None)
        with pytest.raises(wire.WireError):
            wire.unpack_body(frame[4:-1])          # truncated
        with pytest.raises(wire.WireError):
            wire.unpack_body(b"XX" + frame[6:])    # bad magic
        with pytest.raises(wire.WireError):
            wire.decode_value(b"\xfe")             # unknown tag


# --- round trips ------------------------------------------------------------

class TestSocketRoundTrip:
    def test_invoke_round_trip(self, served):
        client = served.client()
        try:
            fs = client.bind("fs")
            fs.mkdir("d")
            assert fs.write_file("d/x", b"payload") == 7
            assert fs.read_file("d/x") == b"payload"
            assert fs.listdir("") == ["d"]
            attrs = fs.stat("d/x")
            assert attrs.size == 7
        finally:
            client.close()

    def test_remote_errors_surface_typed(self, served):
        client = served.client()
        try:
            fs = client.bind("fs")
            with pytest.raises(UnixError) as excinfo:
                fs.stat("missing")
            assert excinfo.value.code == "ENOENT"
        finally:
            client.close()

    def test_ping_send_surface(self, served):
        client = served.client()
        try:
            client.send(None, None, 1024)  # raw round trip, 1 KB payload
            assert client.messages == 1
            assert client.bytes_out > 1024
        finally:
            client.close()

    def test_compound_batch_one_frame(self, served):
        client = served.client()
        try:
            fs = client.bind("fs")
            fs.mkdir("d")
            for name in ("a", "b", "c"):
                fs.write_file(f"d/{name}", name.encode())
            frames = client.messages
            batch = CompoundInvocation()
            batch.add(fs.stat, "d/a")
            batch.add(fs.stat, "d/b")
            batch.add(fs.stat, "d/c")
            result = batch.commit()
            assert client.messages - frames == 1
            assert served.server.compound_batches == 1
            assert [a.size for a in result.values()] == [1, 1, 1]
        finally:
            client.close()

    def test_compound_fail_fast_demux(self, served):
        client = served.client()
        try:
            fs = client.bind("fs")
            fs.write_file("ok", b"fine")
            batch = CompoundInvocation()
            batch.add(fs.stat, "ok")
            batch.add(fs.stat, "missing")
            batch.add(fs.stat, "ok")
            result = batch.commit()
            assert not result.ok and result.failed_index == 1
            assert result[0].size == 4
            assert isinstance(result.error.cause, UnixError)
            from repro.ipc import CompoundSubOpError

            with pytest.raises(CompoundSubOpError):
                result[2]  # skipped: raises the aborting failure
        finally:
            client.close()


# --- failure mapping and retries --------------------------------------------

class TestFailureMapping:
    def test_connect_refused_is_partition(self):
        client = SocketTransport(
            "127.0.0.1", closed_port(), connect_timeout_s=0.5
        )
        try:
            with pytest.raises(NetworkPartitionError):
                client.bind("fs").stat("x")
        finally:
            client.close()

    def test_connect_error_is_transient(self):
        client = SocketTransport(
            "127.0.0.1", closed_port(), connect_timeout_s=0.5
        )
        try:
            with pytest.raises(TransientNetworkError):
                client.invoke("fs", "stat", ("x",))
        finally:
            client.close()

    def test_server_crash_mid_invoke(self, served):
        client = served.client()
        try:
            fs = client.bind("fs")
            fs.write_file("f", b"data")
            served.server.fail_next_reply()
            # The op executes server-side but the reply never arrives.
            with pytest.raises(NodeCrashedError):
                fs.stat("f")
            # The transport reconnects on the next call.
            assert fs.stat("f").size == 4
        finally:
            client.close()

    def test_idempotent_retry_covers_crash(self, served):
        policy = RetryPolicy(
            max_attempts=4, base_backoff_us=1000.0, timeout_us=1e6
        )
        client = served.client(retry_policy=policy)
        try:
            fs = client.bind("fs", idempotent=FileService.IDEMPOTENT_OPS)
            fs.write_file("f", b"data")
            served.server.fail_next_reply()
            # stat is declared idempotent: the lost reply is retried
            # through a fresh connection and succeeds.
            assert fs.stat("f").size == 4
            assert client.retries == 1
        finally:
            client.close()

    def test_mutating_op_not_retried_on_lost_reply(self, served):
        policy = RetryPolicy(
            max_attempts=4, base_backoff_us=1000.0, timeout_us=1e6
        )
        client = served.client(retry_policy=policy)
        try:
            fs = client.bind("fs", idempotent=FileService.IDEMPOTENT_OPS)
            served.server.fail_next_reply()
            # write_file executed server-side; resending could double-
            # apply, so the crash surfaces instead.
            with pytest.raises(NodeCrashedError):
                fs.write_file("f", b"data")
            assert client.retries == 0
        finally:
            client.close()

    def test_send_phase_retry_after_refused(self):
        # Nothing listens yet: with a policy the connect failures back
        # off and surface only after the attempts are exhausted.
        policy = RetryPolicy(
            max_attempts=3, base_backoff_us=1000.0, timeout_us=1e6
        )
        client = SocketTransport(
            "127.0.0.1", closed_port(),
            connect_timeout_s=0.2, retry_policy=policy,
        )
        try:
            with pytest.raises(NetworkPartitionError):
                client.invoke("fs", "listdir", ())
            assert client.retries == 2  # 3 attempts = 2 retries
        finally:
            client.close()


# --- backend parity ---------------------------------------------------------

def run_script(fs, control):
    """A scripted op sequence; returns every outcome (values and typed
    errors) so two backends can be compared verbatim."""
    out = []
    out.append(control.ping())
    out.append(fs.mkdir("dir"))
    out.append(fs.write_file("dir/a", b"alpha"))
    out.append(fs.write_file("dir/b", b"bee"))
    out.append(fs.read_file("dir/a"))
    out.append(fs.listdir(""))
    out.append(fs.listdir("dir"))
    out.append(fs.stat("dir/a"))
    try:
        fs.stat("nope")
    except UnixError as exc:
        out.append(("error", type(exc).__name__, exc.code))
    batch = CompoundInvocation()
    batch.add(fs.stat, "dir/a")
    batch.add(fs.stat, "nope")
    batch.add(fs.stat, "dir/b")
    result = batch.commit()
    out.append(result[0])
    out.append(("failed_index", result.failed_index))
    out.append(fs.unlink("dir/b"))
    out.append(fs.listdir("dir"))
    return out


class TestBackendParity:
    def test_simulated_and_socket_backends_agree(self, served):
        # Socket backend: a served world driven over TCP.
        client = served.client()
        try:
            socket_out = run_script(
                client.bind("fs"), client.bind("control")
            )
        finally:
            client.close()

        # Simulated backend: an identical world driven through the
        # in-process transport — same stub code path, no sockets.
        world, node, service = build_service("sfs")
        node.expose("fs", service)
        node.expose("control", Control(world))
        simulated = SimulatedTransport(world.network, registry=None)
        simulated.registry.exports = node.exports
        sim_out = run_script(
            simulated.bind("fs"), simulated.bind("control")
        )
        assert sim_out == socket_out


# --- the network seam -------------------------------------------------------

class TestTransportSeam:
    def test_default_transport_is_simulated(self):
        world = World()
        assert isinstance(world.network.transport, SimulatedTransport)

    def test_network_send_routes_through_transport(self):
        world = World()
        a = world.create_node("a")
        b = world.create_node("b")
        sent = []
        original = world.network.transport

        class Recording(SimulatedTransport):
            def send(self, src, dst, nbytes, checked=True):
                sent.append((src.name, dst.name, nbytes))
                original.send(src, dst, nbytes, checked=checked)

        world.network.install_transport(Recording(world.network))
        world.network.send(a, b, 123)
        assert sent == [("a", "b", 123)]
        assert world.network.messages == 1

    def test_invocation_path_uses_seam(self):
        # A cross-node invocation must flow through Network.send.
        from repro.ipc.domain import Credentials
        from repro.ipc.invocation import operation
        from repro.ipc.object import SpringObject

        class Service(SpringObject):
            @operation
            def hello(self):
                return "hi"

        world = World()
        a = world.create_node("a")
        b = world.create_node("b")
        server_domain = b.create_domain("srv", Credentials("srv", True))
        service = Service(server_domain)
        seen = []
        original = world.network.transport

        class Recording(SimulatedTransport):
            def send(self, src, dst, nbytes, checked=True):
                seen.append((src.name, dst.name))
                original.send(src, dst, nbytes, checked=checked)

        world.network.install_transport(Recording(world.network))
        client = world.create_user_domain(a)
        with client.activate():
            assert service.hello() == "hi"
        assert seen == [("a", "b")]


class TestServerThread:
    def test_port_zero_assigns_port(self):
        server = SocketServer({"c": Control(World())})
        thread = ServerThread(server)
        port = thread.start()
        try:
            assert port > 0
            client = SocketTransport("127.0.0.1", port)
            assert client.bind("c").ping() == "pong"
            client.close()
        finally:
            thread.stop()

    def test_unknown_export_and_private_ops_rejected(self):
        from repro.errors import InvocationError, NameNotFoundError

        server = SocketServer({"c": Control(World())})
        thread = ServerThread(server)
        port = thread.start()
        client = SocketTransport("127.0.0.1", port)
        try:
            with pytest.raises(NameNotFoundError):
                client.invoke("nope", "ping", ())
            with pytest.raises(InvocationError):
                client.invoke("c", "_world", ())
            with pytest.raises(InvocationError):
                client.invoke("c", "no_such_op", ())
        finally:
            client.close()
            thread.stop()
