"""Unit tests for the SunOS 4.1.3 baseline — functional behaviour and
the Table 3 calibration anchors."""

import pytest

from repro.baseline.sunos import SunOsCosts, SunOsFs
from repro.errors import UnixError
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE
from repro.world import World


@pytest.fixture
def sunos(world, node):
    device = BlockDevice(node.nucleus, "sd0", 8192)
    return SunOsFs(world, device)


class TestFunctional:
    def test_create_write_read(self, sunos):
        fd = sunos.open("f.dat", create=True)
        sunos.write(fd, b"hello sunos")
        sunos.pread(fd, 11, 0) == b"hello sunos"

    def test_sequential_position(self, sunos):
        fd = sunos.open("f.dat", create=True)
        sunos.write(fd, b"abc")
        sunos.write(fd, b"def")
        assert sunos.pread(fd, 6, 0) == b"abcdef"

    def test_open_missing(self, sunos):
        with pytest.raises(UnixError):
            sunos.open("ghost.dat")

    def test_nested_path(self, sunos):
        sunos.mkdir_p("usr/local")
        fd = sunos.open("usr/local/f.dat", create=True)
        sunos.write(fd, b"deep")
        assert sunos.pread(fd, 4, 0) == b"deep"

    def test_fstat(self, sunos, world):
        fd = sunos.open("f.dat", create=True)
        sunos.pwrite(fd, b"123", 0)
        assert sunos.fstat(fd).size == 3

    def test_fsync_persists(self, sunos):
        fd = sunos.open("f.dat", create=True)
        sunos.pwrite(fd, b"durable", 0)
        sunos.fsync(fd)
        from repro.storage.volume import Volume

        volume = Volume.mount(sunos.volume.device)
        ino = volume.lookup(volume.sb.root_ino, "f.dat")
        assert volume.read_data(ino, 0, 7) == b"durable"

    def test_close_invalidates_fd(self, sunos):
        fd = sunos.open("f.dat", create=True)
        sunos.close(fd)
        with pytest.raises(UnixError):
            sunos.pread(fd, 1, 0)

    def test_uncached_mode_hits_disk(self, world, node):
        device = BlockDevice(node.nucleus, "sdu", 8192)
        fs = SunOsFs(world, device, cache=False)
        fd = fs.open("u.dat", create=True)
        fs.pwrite(fd, b"x" * PAGE_SIZE, 0)
        reads = device.reads
        fs.pread(fd, PAGE_SIZE, 0)
        fs.pread(fd, PAGE_SIZE, 0)
        assert device.reads >= reads + 2


class TestTable3Calibration:
    """Exact reproduction of the paper's SunOS numbers."""

    @pytest.fixture
    def warm(self, sunos, world):
        fd = sunos.open("bench.dat", create=True)
        sunos.pwrite(fd, b"b" * PAGE_SIZE, 0)
        sunos.pread(fd, PAGE_SIZE, 0)
        return sunos, fd, world

    def _cost(self, world, op):
        before = world.clock.now_us
        op()
        return world.clock.now_us - before

    def test_open_127us(self, warm):
        fs, fd, world = warm
        assert self._cost(world, lambda: fs.open("bench.dat")) == 127.0

    def test_read_82us(self, warm):
        fs, fd, world = warm
        assert self._cost(world, lambda: fs.pread(fd, PAGE_SIZE, 0)) == 82.0

    def test_write_86us(self, warm):
        fs, fd, world = warm
        assert (
            self._cost(world, lambda: fs.pwrite(fd, b"w" * PAGE_SIZE, 0)) == 86.0
        )

    def test_fstat_28us(self, warm):
        fs, fd, world = warm
        assert self._cost(world, lambda: fs.fstat(fd)) == 28.0

    def test_spring_2_to_7_times_slower(self, warm, sfs_factory):
        """The paper's headline comparison holds in the reproduction."""
        fs, fd, world = warm
        sunos_costs = {
            "open": self._cost(world, lambda: fs.open("bench.dat")),
            "read": self._cost(world, lambda: fs.pread(fd, PAGE_SIZE, 0)),
            "write": self._cost(world, lambda: fs.pwrite(fd, b"w" * PAGE_SIZE, 0)),
            "stat": self._cost(world, lambda: fs.fstat(fd)),
        }
        node, stack = sfs_factory(placement="not_stacked")
        spring_world = node.world
        user = spring_world.create_user_domain(node)
        with user.activate():
            f = stack.top.create_file("bench.dat")
            f.write(0, b"b" * PAGE_SIZE)
            f.read(0, PAGE_SIZE)
            f.get_attributes()

            def cost(op):
                before = spring_world.clock.now_us
                op()
                return spring_world.clock.now_us - before

            spring_costs = {
                "open": cost(lambda: stack.top.resolve("bench.dat")),
                "read": cost(lambda: f.read(0, PAGE_SIZE)),
                "write": cost(lambda: f.write(0, b"w" * PAGE_SIZE)),
                "stat": cost(lambda: f.get_attributes()),
            }
        for op in sunos_costs:
            ratio = spring_costs[op] / sunos_costs[op]
            assert 1.8 <= ratio <= 7.5, (op, ratio)
