"""Unit tests for the POSIX facade."""

import pytest

from repro.errors import UnixError
from repro.unix import (
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    Posix,
)


@pytest.fixture
def posix(sfs, user):
    return Posix(sfs.top, user)


class TestOpenClose:
    def test_create_and_open(self, posix):
        fd = posix.open("new.txt", O_RDWR | O_CREAT)
        assert fd >= 3
        posix.close(fd)
        assert posix.open_fds() == 0

    def test_open_missing_without_creat(self, posix):
        with pytest.raises(UnixError) as err:
            posix.open("ghost.txt")
        assert err.value.code == "ENOENT"

    def test_open_existing_with_creat_reuses(self, posix):
        fd1 = posix.open("same.txt", O_RDWR | O_CREAT)
        posix.write(fd1, b"body")
        posix.close(fd1)
        fd2 = posix.open("same.txt", O_RDWR | O_CREAT)
        assert posix.fstat(fd2).size == 4

    def test_trunc(self, posix):
        fd = posix.open("t.txt", O_RDWR | O_CREAT)
        posix.write(fd, b"0123456789")
        posix.close(fd)
        fd = posix.open("t.txt", O_RDWR | O_TRUNC)
        assert posix.fstat(fd).size == 0

    def test_bad_fd(self, posix):
        with pytest.raises(UnixError) as err:
            posix.read(99, 10)
        assert err.value.code == "EBADF"

    def test_close_twice(self, posix):
        fd = posix.open("x.txt", O_RDWR | O_CREAT)
        posix.close(fd)
        with pytest.raises(UnixError):
            posix.close(fd)

    def test_fds_independent_positions(self, posix):
        fd1 = posix.open("p.txt", O_RDWR | O_CREAT)
        posix.write(fd1, b"abcdef")
        fd2 = posix.open("p.txt", O_RDONLY)
        assert posix.read(fd2, 3) == b"abc"
        assert posix.read(fd2, 3) == b"def"
        posix.lseek(fd1, 0)
        assert posix.read(fd1, 2) == b"ab"


class TestReadWrite:
    def test_sequential_io(self, posix):
        fd = posix.open("seq.txt", O_RDWR | O_CREAT)
        posix.write(fd, b"hello ")
        posix.write(fd, b"world")
        posix.lseek(fd, 0)
        assert posix.read(fd, 11) == b"hello world"

    def test_read_on_writeonly_fd(self, posix):
        fd = posix.open("w.txt", O_WRONLY | O_CREAT)
        with pytest.raises(UnixError):
            posix.read(fd, 1)

    def test_write_on_readonly_fd(self, posix):
        posix.open("r.txt", O_RDWR | O_CREAT)
        fd = posix.open("r.txt", O_RDONLY)
        with pytest.raises(UnixError):
            posix.write(fd, b"x")

    def test_pread_pwrite_ignore_position(self, posix):
        fd = posix.open("p.txt", O_RDWR | O_CREAT)
        posix.write(fd, b"0123456789")
        assert posix.pread(fd, 3, 4) == b"456"
        posix.pwrite(fd, b"XY", 2)
        posix.lseek(fd, 0)
        assert posix.read(fd, 10) == b"01XY456789"

    def test_append_mode(self, posix):
        fd = posix.open("log.txt", O_WRONLY | O_CREAT | O_APPEND)
        posix.write(fd, b"line1\n")
        posix.lseek(fd, 0)
        posix.write(fd, b"line2\n")  # append seeks to end regardless
        assert posix.stat("log.txt").size == 12

    def test_lseek_modes(self, posix):
        fd = posix.open("s.txt", O_RDWR | O_CREAT)
        posix.write(fd, b"0123456789")
        assert posix.lseek(fd, 2, SEEK_SET) == 2
        assert posix.lseek(fd, 3, SEEK_CUR) == 5
        assert posix.lseek(fd, -1, SEEK_END) == 9
        assert posix.read(fd, 1) == b"9"

    def test_negative_seek_rejected(self, posix):
        fd = posix.open("s.txt", O_RDWR | O_CREAT)
        with pytest.raises(UnixError):
            posix.lseek(fd, -1, SEEK_SET)

    def test_ftruncate(self, posix):
        fd = posix.open("t.txt", O_RDWR | O_CREAT)
        posix.write(fd, b"0123456789")
        posix.ftruncate(fd, 4)
        assert posix.fstat(fd).size == 4

    def test_fsync(self, posix, sfs):
        fd = posix.open("d.txt", O_RDWR | O_CREAT)
        posix.write(fd, b"synced")
        posix.fsync(fd)
        volume = sfs.disk_layer.volume
        ino = volume.lookup(volume.sb.root_ino, "d.txt")
        assert volume.read_data(ino, 0, 6) == b"synced"


class TestDirectories:
    def test_mkdir_and_nested_paths(self, posix):
        posix.mkdir("projects")
        fd = posix.open("projects/readme.md", O_RDWR | O_CREAT)
        posix.write(fd, b"# hi")
        assert posix.stat("projects/readme.md").size == 4
        assert posix.listdir("projects") == ["readme.md"]

    def test_listdir_root(self, posix):
        posix.open("a", O_CREAT | O_RDWR)
        posix.open("b", O_CREAT | O_RDWR)
        assert posix.listdir() == ["a", "b"]

    def test_unlink(self, posix):
        posix.open("gone", O_CREAT | O_RDWR)
        posix.unlink("gone")
        assert posix.listdir() == []
        with pytest.raises(UnixError):
            posix.unlink("gone")

    def test_rename(self, posix):
        fd = posix.open("old", O_CREAT | O_RDWR)
        posix.write(fd, b"data")
        posix.rename("old", "new")
        assert posix.stat("new").size == 4
        with pytest.raises(UnixError):
            posix.stat("old")

    def test_stat_directory_is_eisdir(self, posix):
        posix.mkdir("d")
        with pytest.raises(UnixError) as err:
            posix.stat("d")
        assert err.value.code == "EISDIR"


class TestOverStacks:
    def test_posix_over_compfs(self, world, node, device, user):
        """The facade works over ANY stack — that's the architecture's
        'clients view the new layer as a file system' claim."""
        from repro.fs.compfs import CompFs
        from repro.fs.sfs import create_sfs
        from repro.ipc.domain import Credentials

        sfs = create_sfs(node, device)
        compfs = CompFs(node.create_domain("cz", Credentials("c", True)))
        compfs.stack_on(sfs.top)
        posix = Posix(compfs, user)
        fd = posix.open("doc.txt", O_RDWR | O_CREAT)
        posix.write(fd, b"compressed transparently " * 40)
        posix.fsync(fd)
        posix.lseek(fd, 0)
        assert posix.read(fd, 10) == b"compressed"
        raw = Posix(sfs.top, user)
        assert raw.stat("doc.txt").size < 1000
