"""Unit tests for the creator registry and the build_stack configuration
tool (paper sec. 4.4-4.5)."""

import pytest

from repro.errors import FsError
from repro.fs.creators import (
    CREATABLE_LAYERS,
    LayerSpec,
    build_stack,
    lookup_creator,
    register_standard_creators,
)
from repro.fs.fs_interfaces import StackableFs, StackableFsCreator
from repro.fs.sfs import create_sfs


@pytest.fixture
def booted(world, node, device):
    creators = register_standard_creators(node)
    sfs = create_sfs(node, device)
    return world, node, sfs, creators


class TestCreatorRegistry:
    def test_all_types_registered_under_well_known_place(self, booted):
        _, node, _, _ = booted
        names = [n for n, _ in node.fs_creators.list_bindings()]
        for tag in CREATABLE_LAYERS:
            assert f"{tag}_creator" in names

    def test_lookup_by_normal_resolve(self, booted):
        """sec. 4.4 step 1: lookup via a normal naming resolve."""
        _, node, _, _ = booted
        creator = node.fs_creators.resolve("dfs_creator")
        assert isinstance(creator, StackableFsCreator)
        assert creator.creator_type() == "dfs"

    def test_lookup_helper(self, booted):
        _, node, _, _ = booted
        assert lookup_creator(node, "compfs").creator_type() == "compfs"

    def test_lookup_unregistered(self, world):
        bare = world.create_node("bare")
        with pytest.raises(FsError):
            lookup_creator(bare, "compfs")

    def test_create_returns_stackable_fs(self, booted):
        _, node, _, _ = booted
        instance = lookup_creator(node, "compfs").create()
        assert isinstance(instance, StackableFs)
        assert instance.under_layers() == []

    def test_each_create_is_fresh_instance_own_domain(self, booted):
        _, node, _, _ = booted
        creator = lookup_creator(node, "cryptfs")
        a, b = creator.create(), creator.create()
        assert a is not b
        assert a.domain is not b.domain

    def test_create_accepts_options(self, booted):
        _, node, _, _ = booted
        layer = lookup_creator(node, "compfs").create(coherent=False)
        assert layer.coherent is False


class TestBuildStack:
    def test_single_layer(self, booted):
        world, node, sfs, _ = booted
        (compfs,) = build_stack(node, sfs.top, [LayerSpec("compfs")])
        assert compfs.under_layers() == [sfs.top]

    def test_multi_layer_order(self, booted):
        """sec. 4.5: DFS on COMPFS on SFS."""
        world, node, sfs, _ = booted
        compfs, dfs = build_stack(
            node, sfs.top, [LayerSpec("compfs"), LayerSpec("dfs")]
        )
        assert dfs.under_layers() == [compfs]
        assert compfs.under_layers() == [sfs.top]

    def test_export_as(self, booted):
        world, node, sfs, _ = booted
        build_stack(node, sfs.top, [LayerSpec("compfs")], export_as="cz")
        assert node.fs_context.resolve("cz").fs_type() == "compfs"

    def test_export_all(self, booted):
        world, node, sfs, _ = booted
        layers = build_stack(
            node,
            sfs.top,
            [LayerSpec("compfs"), LayerSpec("dfs")],
            export_all=True,
        )
        names = [n for n, _ in node.fs_context.list_bindings()]
        assert any(n.startswith("compfs-") for n in names)
        assert any(n.startswith("dfs-") for n in names)

    def test_options_passed_through(self, booted):
        world, node, sfs, _ = booted
        (compfs,) = build_stack(
            node, sfs.top, [LayerSpec("compfs", {"coherent": False})]
        )
        assert compfs.coherent is False

    def test_built_stack_works_end_to_end(self, booted):
        world, node, sfs, _ = booted
        compfs, dfs = build_stack(
            node, sfs.top, [LayerSpec("compfs"), LayerSpec("dfs")],
            export_as="stacked",
        )
        user = world.create_user_domain(node)
        with user.activate():
            top = node.fs_context.resolve("stacked")
            f = top.create_file("через.dat")
            f.write(0, b"through three layers")
            assert top.resolve("через.dat").read(0, 20) == b"through three layers"
