"""Unit tests for DFS: remote access, bind forwarding, cross-node
coherency, and the P2-C2 cache-manager channel."""

import pytest

from repro.fs.dfs import DfsLayer, export_dfs, mount_remote
from repro.fs.sfs import create_sfs
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE, AccessRights

RO = AccessRights.READ_ONLY
RW = AccessRights.READ_WRITE


@pytest.fixture
def dist(world):
    server = world.create_node("server")
    client = world.create_node("client")
    device = BlockDevice(server.nucleus, "sd0", 8192)
    sfs = create_sfs(server, device)
    dfs = export_dfs(server, sfs.top)
    mount_remote(client, server, "dfs")
    server_user = world.create_user_domain(server, "server-user")
    client_user = world.create_user_domain(client, "client-user")
    with server_user.activate():
        f = dfs.create_file("shared.dat")
        f.write(0, b"S" * (2 * PAGE_SIZE))
    return world, server, client, sfs, dfs, server_user, client_user


def remote_file(client, name="shared.dat"):
    return client.fs_context.resolve("dfs@server").resolve(name)


class TestRemoteAccess:
    def test_remote_resolve_and_read(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        with cu.activate():
            rf = remote_file(client)
            assert rf.read(0, 4) == b"SSSS"
        assert world.network.messages > 0

    def test_remote_write_visible_at_server(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        with cu.activate():
            remote_file(client).write(0, b"FROM-CLIENT")
        with su.activate():
            assert dfs.resolve("shared.dat").read(0, 11) == b"FROM-CLIENT"

    def test_remote_create(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        with cu.activate():
            ctx = client.fs_context.resolve("dfs@server")
            f = ctx.create_file("by-client.dat")
            f.write(0, b"made remotely")
        with su.activate():
            assert sfs.top.resolve("by-client.dat").read(0, 13) == b"made remotely"

    def test_remote_stat(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        with cu.activate():
            attrs = remote_file(client).get_attributes()
        assert attrs.size == 2 * PAGE_SIZE

    def test_remote_listing(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        with cu.activate():
            names = [
                n for n, _ in client.fs_context.resolve("dfs@server").list_bindings()
            ]
        assert "shared.dat" in names

    def test_network_charged_for_remote_ops(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        before = world.clock.charged("network")
        with cu.activate():
            remote_file(client).read(0, PAGE_SIZE)
        assert world.clock.charged("network") > before


class TestBindForwarding:
    def test_local_bind_forwarded_to_sfs(self, dist):
        """Local clients of file_DFS use the same cache object as clients
        of file_SFS (Figure 7)."""
        world, server, client, sfs, dfs, su, cu = dist
        with su.activate():
            f_dfs = dfs.resolve("shared.dat")
            f_sfs = sfs.top.resolve("shared.dat")
            aspace = server.vmm.create_address_space("s")
            m_dfs = aspace.map(f_dfs, RW)
            m_sfs = aspace.map(f_sfs, RW)
            assert m_dfs.cache is m_sfs.cache  # the same cached memory
            m_dfs.write(0, b"via dfs mapping")
            assert m_sfs.read(0, 15) == b"via dfs mapping"
        assert world.counters.get("dfs.bind_forwarded") >= 1
        assert world.counters.get("dfs.bind_served") == 0

    def test_remote_bind_served_by_dfs(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        with cu.activate():
            rf = remote_file(client)
            client.vmm.create_address_space("c").map(rf, RO).read(0, 4)
        assert world.counters.get("dfs.bind_served") == 1

    def test_forwarding_disabled_ablation(self, world):
        server = world.create_node("srv2")
        device = BlockDevice(server.nucleus, "sd0", 4096)
        sfs = create_sfs(server, device)
        from repro.ipc.domain import Credentials

        dfs = DfsLayer(
            server.create_domain("dfs2", Credentials("dfs", True)),
            forward_local_binds=False,
        )
        dfs.stack_on(sfs.top)
        user = world.create_user_domain(server)
        with user.activate():
            f = dfs.create_file("x.dat")
            f.write(0, b"x" * PAGE_SIZE)
            server.vmm.create_address_space("u").map(f, RO).read(0, 1)
        assert world.counters.get("dfs.bind_served") == 1
        assert world.counters.get("dfs.bind_forwarded") == 0


class TestCrossNodeCoherency:
    def test_client_mapping_write_recalled_by_server_read(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        with cu.activate():
            rf = remote_file(client)
            mapping = client.vmm.create_address_space("c").map(rf, RW)
            mapping.write(0, b"CLIENT DIRTY")
        with su.activate():
            data = dfs.resolve("shared.dat").read(0, 12)
        assert data == b"CLIENT DIRTY"

    def test_server_write_invalidates_client_mapping(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        with cu.activate():
            rf = remote_file(client)
            mapping = client.vmm.create_address_space("c").map(rf, RW)
            assert mapping.read(0, 4) == b"SSSS"
        with su.activate():
            sfs.top.resolve("shared.dat").write(0, b"SERVER-SIDE!")
        with cu.activate():
            assert mapping.read(0, 12) == b"SERVER-SIDE!"

    def test_two_clients_coherent(self, world, dist):
        _, server, client, sfs, dfs, su, cu = dist
        client2 = world.create_node("client2")
        mount_remote(client2, server, "dfs")
        cu2 = world.create_user_domain(client2, "user2")
        with cu.activate():
            m1 = client.vmm.create_address_space("c1").map(
                remote_file(client), RW
            )
            m1.read(0, 4)
        with cu2.activate():
            rf2 = client2.fs_context.resolve("dfs@server").resolve("shared.dat")
            m2 = client2.vmm.create_address_space("c2").map(rf2, RW)
            m2.write(0, b"FROM CLIENT2")
        with cu.activate():
            assert m1.read(0, 12) == b"FROM CLIENT2"

    def test_writer_migrates_between_clients(self, world, dist):
        _, server, client, sfs, dfs, su, cu = dist
        client2 = world.create_node("client2")
        mount_remote(client2, server, "dfs")
        cu2 = world.create_user_domain(client2, "user2")
        with cu.activate():
            m1 = client.vmm.create_address_space("c1").map(
                remote_file(client), RW
            )
            m1.write(0, b"first writer")
        with cu2.activate():
            rf2 = client2.fs_context.resolve("dfs@server").resolve("shared.dat")
            m2 = client2.vmm.create_address_space("c2").map(rf2, RW)
            assert m2.read(0, 12) == b"first writer"
            m2.write(0, b"SEConDwriter")
        with su.activate():
            assert dfs.resolve("shared.dat").read(0, 12) == b"SEConDwriter"

    def test_remote_truncate_invalidates_clients(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        with cu.activate():
            rf = remote_file(client)
            mapping = client.vmm.create_address_space("c").map(rf, RO)
            mapping.read(0, 4)
        with su.activate():
            dfs.resolve("shared.dat").set_length(10)
        with cu.activate():
            assert remote_file(client).get_attributes().size == 10


class TestPartitionBehaviour:
    def test_remote_read_fails_under_partition(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        from repro.ipc.network import NetworkPartitionError

        with cu.activate():
            rf = remote_file(client)
        world.network.partition(server, client)
        with cu.activate():
            with pytest.raises(NetworkPartitionError):
                rf.read(0, 4)
        world.network.heal_all()
        with cu.activate():
            assert rf.read(0, 4) == b"SSSS"

    def test_local_access_survives_partition(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        world.network.partition(server, client)
        with su.activate():
            assert dfs.resolve("shared.dat").read(0, 4) == b"SSSS"
