"""Unit tests for the discrete-event scheduler and service queues."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.scheduler import Scheduler, ServiceQueue, request, think
from repro.world import World


class TestServiceQueue:
    def test_empty_queue_no_wait(self):
        clock = SimClock()
        queue = ServiceQueue(clock, servers=1, category="q")
        assert queue.admit(100.0) == 0.0
        assert clock.now_us == 0.0
        assert clock.charged("q") == 0.0

    def test_backlog_charges_queue_depth(self):
        clock = SimClock()
        queue = ServiceQueue(clock, servers=1, category="q")
        assert queue.admit(100.0) == 0.0  # t=0, slot busy until 100
        # Charging the wait advances the caller's clock, so each later
        # arrival lands where the previous reservation ends.
        assert queue.admit(100.0) == 100.0  # arrives 0, starts 100
        assert queue.admit(100.0) == 100.0  # arrives 100, starts 200
        assert clock.charged("q") == 200.0
        assert queue.total_wait_us == 200.0
        assert queue.peak_wait_us == 100.0
        assert queue.admitted == 3

    def test_simultaneous_arrivals_pay_depth_times_service(self):
        # Under the scheduler each admission happens inside its own
        # frame pinned at the arrival time, so three arrivals at t=0
        # wait 0, 1x, and 2x the service time.
        clock = SimClock()
        queue = ServiceQueue(clock, servers=1, category="q")
        waits = []
        for _ in range(3):
            clock.begin_frame(0.0)
            waits.append(queue.admit(100.0))
            clock.end_frame()
        assert waits == [0.0, 100.0, 200.0]
        assert queue.peak_wait_us == 200.0

    def test_multiple_servers_absorb_concurrency(self):
        clock = SimClock()
        queue = ServiceQueue(clock, servers=2, category="q")
        assert queue.admit(100.0) == 0.0
        assert queue.admit(100.0) == 0.0  # second slot
        wait = queue.admit(100.0)  # must wait for a slot
        assert wait > 0.0

    def test_slot_frees_after_service(self):
        clock = SimClock()
        queue = ServiceQueue(clock, servers=1, category="q")
        queue.admit(50.0)
        clock.advance(60.0, "cpu")  # past the reservation
        assert queue.backlog_us() == 0.0
        assert queue.admit(50.0) == 0.0

    def test_reset_drops_reservations_keeps_stats(self):
        clock = SimClock()
        queue = ServiceQueue(clock, servers=1, category="q")
        queue.admit(100.0)
        queue.admit(100.0)
        assert queue.backlog_us() > 0.0
        queue.reset()
        assert queue.backlog_us() == 0.0
        assert queue.admitted == 2  # cumulative stats survive
        assert queue.admit(100.0) == 0.0  # fresh slot, no wait

    def test_stats_shape(self):
        clock = SimClock()
        queue = ServiceQueue(clock, servers=3, category="q")
        queue.admit(10.0)
        stats = queue.stats()
        assert stats["servers"] == 3
        assert stats["admitted"] == 1
        assert stats["total_service_ms"] == 0.01

    def test_rejects_bad_arguments(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            ServiceQueue(clock, servers=0)
        queue = ServiceQueue(clock)
        with pytest.raises(ValueError):
            queue.admit(-1.0)


class TestScheduler:
    def test_think_advances_task_time(self):
        world = World()
        scheduler = world.scheduler()
        seen = []

        def client():
            yield think(100.0)
            seen.append(world.clock.now_us)

        scheduler.spawn(client())
        scheduler.run()
        assert seen == [100.0]
        assert world.clock.charged("client_think") == 100.0

    def test_request_result_delivered(self):
        world = World()
        scheduler = world.scheduler()
        results = []

        def op():
            world.clock.advance(42.0, "cpu")
            return "payload"

        def client():
            value = yield request(op)
            results.append((value, world.clock.now_us))

        scheduler.spawn(client())
        scheduler.run()
        assert results == [("payload", 42.0)]

    def test_bare_callable_is_a_request(self):
        world = World()
        scheduler = world.scheduler()
        results = []

        def client():
            value = yield (lambda: "bare")
            results.append(value)

        scheduler.spawn(client())
        scheduler.run()
        assert results == ["bare"]

    def test_overlapping_clients_interleave(self):
        # Two clients think different amounts, then run requests; the
        # scheduler must execute events in virtual-time order, not
        # spawn order.
        world = World()
        scheduler = world.scheduler()
        order = []

        def client(name, think_us):
            yield think(think_us)
            yield request(lambda: order.append((name, world.clock.now_us)))

        scheduler.spawn(client("slow", 200.0), name="slow")
        scheduler.spawn(client("fast", 50.0), name="fast")
        scheduler.run()
        assert order == [("fast", 50.0), ("slow", 200.0)]

    def test_ties_broken_by_spawn_order(self):
        world = World()
        scheduler = world.scheduler()
        order = []

        def client(name):
            yield request(lambda: order.append(name))

        for name in ("a", "b", "c"):
            scheduler.spawn(client(name), name=name)
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_exception_rethrown_into_task(self):
        world = World()
        scheduler = world.scheduler()
        caught = []

        def op():
            world.clock.advance(10.0, "cpu")
            raise RuntimeError("boom")

        def client():
            try:
                yield request(op)
            except RuntimeError as exc:
                caught.append((str(exc), world.clock.now_us))

        scheduler.spawn(client())
        scheduler.run()
        # The exception arrives at T + charged time, like a result.
        assert caught == [("boom", 10.0)]

    def test_frame_restored_after_request(self):
        world = World()
        scheduler = world.scheduler()

        def client():
            yield request(lambda: world.clock.advance(5.0, "cpu"))

        scheduler.spawn(client())
        scheduler.run()
        assert not world.clock.in_frame

    def test_task_result_and_timestamps(self):
        world = World()
        scheduler = world.scheduler()

        def client():
            yield think(30.0)
            return "done"

        task = scheduler.spawn(client(), name="c0")
        scheduler.run()
        assert task.done
        assert task.result == "done"
        assert task.started_us == 0.0
        assert task.finished_us == 30.0

    def test_run_until_leaves_future_events(self):
        world = World()
        scheduler = world.scheduler()
        seen = []

        def client():
            yield think(1000.0)
            seen.append("late")

        scheduler.spawn(client())
        scheduler.run(until_us=500.0)
        assert seen == []
        scheduler.run()
        assert seen == ["late"]

    def test_spawn_at_us(self):
        world = World()
        scheduler = world.scheduler()
        seen = []

        def client():
            seen.append(world.clock.now_us)
            yield think(1.0)

        scheduler.spawn(client(), at_us=250.0)
        scheduler.run()
        assert seen == [250.0]

    def test_bad_directive_rejected(self):
        world = World()
        scheduler = world.scheduler()

        def client():
            yield 42  # not a directive

        scheduler.spawn(client())
        with pytest.raises(TypeError):
            scheduler.run()

    def test_operations_counter(self):
        world = World()
        scheduler = world.scheduler()

        def client():
            yield request(lambda: None)
            yield think(1.0)
            yield request(lambda: None)

        scheduler.spawn(client())
        scheduler.run()
        assert scheduler.operations == 2

    def test_contention_through_service_queue(self):
        # Two clients hit a single-slot resource at the same instant:
        # the second pays one full service time of queueing delay.
        world = World()
        scheduler = world.scheduler()
        queue = ServiceQueue(world.clock, servers=1, category="q")
        finish = {}

        def client(name):
            yield request(lambda: queue.admit(100.0))
            finish[name] = world.clock.now_us

        scheduler.spawn(client("first"), name="first")
        scheduler.spawn(client("second"), name="second")
        scheduler.run()
        assert finish["first"] == 0.0  # no wait; service not charged here
        assert finish["second"] == 100.0  # waited out the first reservation
        assert world.clock.charged("q") == 100.0


class TestSchedulerDeterminism:
    @staticmethod
    def _run_once(seed):
        import random

        world = World()
        scheduler = world.scheduler()
        queue = ServiceQueue(world.clock, servers=1, category="q")
        trace = []

        def client(cid):
            rng = random.Random(seed * 1_000_003 + cid)
            for _ in range(3):
                yield think(rng.expovariate(1 / 100.0))
                yield request(lambda: queue.admit(25.0))
                trace.append((cid, world.clock.now_us))

        for cid in range(8):
            scheduler.spawn(client(cid), name=f"c{cid}")
        scheduler.run()
        return trace, world.clock.now_us, world.clock.categories()

    def test_same_seed_same_run(self):
        assert self._run_once(7) == self._run_once(7)

    def test_different_seed_different_run(self):
        assert self._run_once(7) != self._run_once(8)


class TestLoadSweepDeterminism:
    def test_small_sweep_reproduces_exactly(self):
        from repro.bench.loadgen import sweep

        loads = [1, 4]
        first = sweep("monolithic", loads, seed=11)
        second = sweep("monolithic", loads, seed=11)
        assert first == second

    def test_sequential_path_untouched_by_import(self):
        # Importing the scheduler machinery must not perturb a
        # sequential world: no frames, no queues, plain advances.
        world = World()
        world.clock.advance(10.0, "cpu")
        assert world.clock.now_us == 10.0
        assert not world.clock.in_frame
        assert world.busy_stack is None


class TestClockSchedulerIntegration:
    def test_seek_moves_global_time(self):
        clock = SimClock()
        clock.seek(500.0)
        assert clock.now_us == 500.0
        assert clock.categories() == {}  # seek charges nothing

    def test_seek_backwards_rejected(self):
        clock = SimClock()
        clock.seek(100.0)
        with pytest.raises(ValueError):
            clock.seek(50.0)

    def test_seek_inside_frame_rejected(self):
        clock = SimClock()
        clock.begin_frame(0.0)
        with pytest.raises(RuntimeError):
            clock.seek(10.0)
        clock.end_frame()

    def test_frame_charges_stay_in_categories(self):
        clock = SimClock()
        clock.seek(1000.0)
        clock.begin_frame(200.0)
        clock.advance(30.0, "disk")
        assert clock.now_us == 230.0  # frame-local time
        elapsed = clock.end_frame()
        assert elapsed == 30.0
        assert clock.now_us == 1000.0  # global time restored
        assert clock.charged("disk") == 30.0  # totals accumulate

    def test_frames_do_not_nest(self):
        clock = SimClock()
        clock.begin_frame(0.0)
        with pytest.raises(RuntimeError):
            clock.begin_frame(1.0)
        clock.end_frame()
        with pytest.raises(RuntimeError):
            clock.end_frame()

    def test_world_scheduler_is_lazy_singleton(self):
        world = World()
        assert world.scheduler() is world.scheduler()
