"""Tests for the shared layer plumbing in repro.fs.base and the channel
registry: bind handshakes, channel reuse, unsolicited accept_channel,
narrowing of channel ends, and sync propagation."""

import pytest

from repro.errors import StackingError
from repro.fs.coherency import CoherencyLayer
from repro.fs.disk_layer import DiskLayer
from repro.fs.sfs import create_sfs
from repro.ipc.domain import Credentials
from repro.storage.block_device import RamDevice
from repro.types import PAGE_SIZE, AccessRights
from repro.vm.pager_base import ChannelRegistry


@pytest.fixture
def layered(world, node, user):
    device = RamDevice(node.nucleus, "ram", 8192)
    disk = DiskLayer(node.create_domain("disk"), device, format_device=True)
    coherency = CoherencyLayer(node.create_domain("coh", Credentials("c", True)))
    coherency.stack_on(disk)
    with user.activate():
        f = coherency.create_file("x.dat")
        f.write(0, b"x" * PAGE_SIZE)
    return disk, coherency, user


class TestStacking:
    def test_stack_on_non_stackable_rejected(self, world, node):
        coherency = CoherencyLayer(node.create_domain("c1"))
        with pytest.raises(StackingError):
            coherency.stack_on("not a file system")

    def test_max_under_enforced(self, layered, node):
        disk, coherency, _ = layered
        other = CoherencyLayer(node.create_domain("c2"))
        other.stack_on(disk)
        with pytest.raises(StackingError):
            other.stack_on(disk)

    def test_under_property_requires_stacking(self, node):
        lonely = CoherencyLayer(node.create_domain("c3"))
        with pytest.raises(StackingError):
            _ = lonely.under

    def test_under_layers_returns_copy(self, layered):
        disk, coherency, _ = layered
        layers = coherency.under_layers()
        layers.append("garbage")
        assert coherency.under_layers() == [disk]


class TestChannelRegistry:
    def test_reuse_for_same_source_and_manager(self, layered, node, user):
        disk, coherency, _ = layered
        with user.activate():
            f1 = coherency.resolve("x.dat")
            f2 = coherency.resolve("x.dat")
            aspace = node.vmm.create_address_space("t")
            aspace.map(f1, AccessRights.READ_ONLY).read(0, 1)
            aspace.map(f2, AccessRights.READ_ONLY).read(0, 1)
        assert len(coherency.channels) == 1

    def test_separate_channels_per_source(self, layered, node, user):
        disk, coherency, _ = layered
        with user.activate():
            coherency.create_file("y.dat").write(0, b"y" * PAGE_SIZE)
            aspace = node.vmm.create_address_space("t")
            aspace.map(coherency.resolve("x.dat"), AccessRights.READ_ONLY).read(0, 1)
            aspace.map(coherency.resolve("y.dat"), AccessRights.READ_ONLY).read(0, 1)
        assert len(coherency.channels) == 2
        assert len(coherency.channels.channels_for(
            coherency.resolve("x.dat").source_key)) == 1

    def test_closed_channel_recreated(self, layered, node, user):
        disk, coherency, _ = layered
        with user.activate():
            f = coherency.resolve("x.dat")
            mapping = node.vmm.create_address_space("t").map(
                f, AccessRights.READ_ONLY
            )
            mapping.read(0, 1)
            mapping.cache.channel.pager_object.done_with_pager_object()
            assert len(coherency.channels) == 0
            mapping2 = node.vmm.create_address_space("t2").map(
                coherency.resolve("x.dat"), AccessRights.READ_ONLY
            )
            assert mapping2.read(0, 1) == b"x"
        assert len(coherency.channels) == 1

    def test_close_all(self):
        registry = ChannelRegistry()
        assert len(registry) == 0
        registry.close_all()
        assert registry.all_channels() == []


class TestAcceptChannel:
    def test_unsolicited_accept_rejected(self, layered, node):
        """accept_channel outside a bind_below call is a protocol
        violation and must not silently create state."""
        disk, coherency, _ = layered
        from repro.fs.base import LayerPagerObject

        rogue_pager = LayerPagerObject(node.nucleus, disk, ("disk", 0, 999))
        with pytest.raises(StackingError):
            coherency.accept_channel(rogue_pager, "rogue")

    def test_down_channel_ends_narrow_correctly(self, layered, node, user):
        from repro.ipc.narrow import narrow
        from repro.vm.cache_object import FsCache
        from repro.vm.pager_object import FsPager

        disk, coherency, _ = layered
        with user.activate():
            coherency.resolve("x.dat").read(0, 1)
        state = next(iter(coherency._states.values()))
        assert narrow(state.down_channel.pager_object, FsPager) is not None
        assert narrow(state.down_channel.cache_object, FsCache) is not None


class TestSyncPropagation:
    def test_sync_fs_reaches_every_layer(self, world, node, user):
        """sync_fs on the top layer flushes the whole stack to disk."""
        device = RamDevice(node.nucleus, "ram2", 8192)
        stack = create_sfs(node, device)
        from repro.fs.compfs import CompFs

        compfs = CompFs(node.create_domain("cz", Credentials("c", True)),
                        coherent=False)
        compfs.stack_on(stack.top)
        with user.activate():
            f = compfs.create_file("deep.dat")
            f.write(0, b"must reach the disk")
            compfs.sync_fs()
        from repro.storage.volume import Volume

        volume = Volume.mount(device)
        ino = volume.lookup(volume.sb.root_ino, "deep.dat")
        # COMPFS flushed (compressed image) AND the SFS pushed it down.
        assert volume.iget(ino).size > 0

    def test_pager_ops_fail_loudly_for_unknown_source(self, node):
        """Channel ops on a source the layer never opened fail loudly
        (no silent default), not silently, if something binds to it."""
        from repro.errors import FsError
        from repro.fs.base import BaseLayer, LayerPagerObject

        class InertLayer(BaseLayer):
            def fs_type(self):
                return "inert"

            def resolve(self, name):
                raise NotImplementedError

            def bind(self, name, obj):
                raise NotImplementedError

            def unbind(self, name):
                raise NotImplementedError

            def rebind(self, name, obj):
                raise NotImplementedError

            def list_bindings(self):
                return []

        layer = InertLayer(node.create_domain("inert"))
        pager = LayerPagerObject(layer.domain, layer, "src")
        with pytest.raises(FsError):
            pager.page_in(0, PAGE_SIZE, AccessRights.READ_ONLY)
        with pytest.raises(FsError):
            pager.attr_page_in()
