"""Unit tests for interface narrowing, interposition plumbing, and the
network model (including partitions)."""

import pytest

from repro.errors import NarrowError
from repro.ipc.interpose import InterposerBase
from repro.ipc.invocation import operation
from repro.ipc.narrow import narrow, narrow_or_raise
from repro.ipc.network import NetworkPartitionError
from repro.ipc.object import SpringObject
from repro.world import World


class Base(SpringObject):
    @operation
    def hello(self) -> str:
        return "base"


class Extended(Base):
    @operation
    def extra(self) -> str:
        return "extended"


class TestNarrow:
    def test_narrow_to_own_type(self, world):
        node = world.create_node("n")
        obj = Extended(node.nucleus)
        assert narrow(obj, Extended) is obj

    def test_narrow_to_supertype(self, world):
        node = world.create_node("n")
        obj = Extended(node.nucleus)
        assert narrow(obj, Base) is obj

    def test_narrow_to_subtype_fails_for_base(self, world):
        node = world.create_node("n")
        obj = Base(node.nucleus)
        assert narrow(obj, Extended) is None

    def test_narrow_or_raise(self, world):
        node = world.create_node("n")
        obj = Base(node.nucleus)
        assert narrow_or_raise(obj, Base) is obj
        with pytest.raises(NarrowError):
            narrow_or_raise(obj, Extended)

    def test_narrow_unrelated_type(self):
        assert narrow("a string", Base) is None


class Wrapper(InterposerBase):
    @operation
    def hello(self) -> str:
        return self.forward("hello")

    @operation
    def blocked(self) -> str:
        self.record_local("blocked")
        return "handled locally"


class TestInterposerBase:
    def test_forwarding_records_calls(self, world):
        node = world.create_node("n")
        target = Base(node.nucleus)
        wrapper = Wrapper(node.nucleus, target)
        assert wrapper.hello() == "base"
        assert wrapper.forwarded_count("hello") == 1
        assert wrapper.intercepted("hello") == 0

    def test_local_handling_records(self, world):
        node = world.create_node("n")
        wrapper = Wrapper(node.nucleus, Base(node.nucleus))
        assert wrapper.blocked() == "handled locally"
        assert wrapper.intercepted("blocked") == 1


class TestNetwork:
    @pytest.fixture
    def pair(self):
        world = World()
        return world, world.create_node("a"), world.create_node("b")

    def test_transfer_counts(self, pair):
        world, a, b = pair
        world.network.transfer(a, b, 100)
        world.network.transfer(a, b, 50)
        world.network.transfer(b, a, 10)
        assert world.network.messages == 3
        assert world.network.bytes_moved == 160
        assert world.network.message_count(a, b) == 2
        assert world.network.message_count(b, a) == 1

    def test_transfer_charges_clock(self, pair):
        world, a, b = pair
        world.network.transfer(a, b, 1024)
        expected = world.cost_model.network_transfer_us(1024)
        assert world.clock.charged("network") == expected

    def test_partition_blocks_both_directions(self, pair):
        world, a, b = pair
        world.network.partition(a, b)
        with pytest.raises(NetworkPartitionError):
            world.network.transfer(a, b, 0)
        with pytest.raises(NetworkPartitionError):
            world.network.transfer(b, a, 0)

    def test_heal_restores(self, pair):
        world, a, b = pair
        world.network.partition(a, b)
        world.network.heal(a, b)
        world.network.transfer(a, b, 0)
        assert world.network.messages == 1

    def test_partition_blocks_invocations(self, pair):
        world, a, b = pair
        server = Base(a.create_domain("server"))
        client = b.create_domain("client")
        world.network.partition(a, b)
        with client.activate():
            with pytest.raises(NetworkPartitionError):
                server.hello()
        world.network.heal_all()
        with client.activate():
            assert server.hello() == "base"

    def test_partition_is_pairwise(self):
        world = World()
        a, b, c = (world.create_node(n) for n in "abc")
        world.network.partition(a, b)
        world.network.transfer(a, c, 0)
        world.network.transfer(c, b, 0)
        assert world.network.messages == 2


class TestNodesAndDomains:
    def test_duplicate_node_rejected(self):
        world = World()
        world.create_node("x")
        with pytest.raises(ValueError):
            world.create_node("x")

    def test_duplicate_domain_rejected(self, world):
        node = world.create_node("n")
        node.create_domain("d")
        with pytest.raises(ValueError):
            node.create_domain("d")

    def test_nucleus_is_privileged(self, world):
        node = world.create_node("n")
        assert node.nucleus.credentials.privileged

    def test_user_domain_unprivileged(self, world):
        node = world.create_node("n")
        user = world.create_user_domain(node)
        assert not user.credentials.privileged

    def test_oids_unique(self, world):
        node = world.create_node("n")
        objs = [Base(node.nucleus) for _ in range(10)]
        assert len({o.oid for o in objs}) == 10
