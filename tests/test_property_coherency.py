"""Property-based tests for the coherency protocol.

The key invariant of the architecture: no matter how accesses interleave
across views — the file interface, multiple mappings, direct layer
access — every read observes the bytes of a single linear history (the
simulation is sequential, so the oracle is just a flat buffer updated in
program order).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fs.sfs import create_sfs
from repro.storage.block_device import RamDevice
from repro.types import PAGE_SIZE, AccessRights
from repro.world import World

SPAN = 3 * PAGE_SIZE

VIEWS = ("file", "map1", "map2")

ops = st.lists(
    st.tuples(
        st.sampled_from(VIEWS),
        st.sampled_from(["read", "write"]),
        st.integers(0, SPAN - 1),
        st.integers(1, PAGE_SIZE),
    ),
    min_size=1,
    max_size=25,
)


def build_views(cache: bool):
    world = World()
    node = world.create_node("prop")
    device = RamDevice(node.nucleus, "ram", 8192)
    stack = create_sfs(node, device, cache=cache)
    user = world.create_user_domain(node)
    with user.activate():
        f = stack.top.create_file("shared.bin")
        f.write(0, bytes(SPAN))
        mapping1 = node.vmm.create_address_space("a1").map(
            stack.top.resolve("shared.bin"), AccessRights.READ_WRITE
        )
        mapping2 = node.vmm.create_address_space("a2").map(
            stack.top.resolve("shared.bin"), AccessRights.READ_WRITE
        )
    views = {"file": f, "map1": mapping1, "map2": mapping2}
    return world, user, views


def do_read(view, obj, offset, size):
    if view == "file":
        return obj.read(offset, size)
    return obj.read(offset, size)


def do_write(view, obj, offset, data):
    if view == "file":
        obj.write(offset, data)
    else:
        obj.write(offset, data)


class TestEveryViewSeesOneHistory:
    @given(ops=ops)
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_cached_sfs(self, ops):
        self._run(cache=True, ops=ops)

    @given(ops=ops)
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_uncached_sfs(self, ops):
        self._run(cache=False, ops=ops)

    def _run(self, cache, ops):
        world, user, views = build_views(cache)
        oracle = bytearray(SPAN)
        with user.activate():
            for i, (view, kind, offset, size) in enumerate(ops):
                size = min(size, SPAN - offset)
                if size <= 0:
                    continue
                obj = views[view]
                if kind == "write":
                    data = bytes(((i * 37 + j) % 251) + 1 for j in range(size))
                    do_write(view, obj, offset, data)
                    oracle[offset : offset + size] = data
                else:
                    got = do_read(view, obj, offset, size)
                    assert got == bytes(oracle[offset : offset + size]), (
                        f"step {i}: {view} {kind} at {offset}+{size} "
                        f"(cache={cache})"
                    )
            # Final check: all three views agree with the oracle.
            for view, obj in views.items():
                assert do_read(view, obj, 0, SPAN) == bytes(oracle), view

    @given(ops=ops)
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_sync_then_remount_sees_history(self, ops):
        """After sync, the on-disk state equals the oracle."""
        world, user, views = build_views(cache=True)
        oracle = bytearray(SPAN)
        with user.activate():
            for i, (view, kind, offset, size) in enumerate(ops):
                size = min(size, SPAN - offset)
                if size <= 0 or kind == "read":
                    continue
                data = bytes(((i * 11 + j) % 251) + 1 for j in range(size))
                do_write(view, views[view], offset, data)
                oracle[offset : offset + size] = data
            # Push mapping dirt, then layer dirt, then metadata.
            views["map1"].cache.sync()
            views["map2"].cache.sync()
            views["file"].sync()
        node = next(iter(world.nodes.values()))
        stack_top = node.fs_context.resolve("sfs")
        with user.activate():
            stack_top.sync_fs()
        # Read the raw volume (below every cache).
        disk_layer = stack_top.under_layers()[0]
        volume = disk_layer.volume
        ino = volume.lookup(volume.sb.root_ino, "shared.bin")
        assert volume.read_data(ino, 0, SPAN) == bytes(oracle)
        assert volume.fsck() == []


class TestSingleWriterInvariant:
    @given(
        writers=st.lists(st.sampled_from(["map1", "map2"]), min_size=2, max_size=8)
    )
    @settings(max_examples=40, deadline=None)
    def test_at_most_one_writable_holder_per_block(self, writers):
        world, user, views = build_views(cache=True)
        node = next(iter(world.nodes.values()))
        stack_top = node.fs_context.resolve("sfs")
        with user.activate():
            for i, writer in enumerate(writers):
                views[writer].write(0, bytes([i + 1]) * 16)
        coherency = stack_top
        state = next(iter(coherency._states.values()))
        writable = [
            channel
            for channel, rights in state.holders.holders_of(0)
            if rights.writable
        ]
        assert len(writable) <= 1
