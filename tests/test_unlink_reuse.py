"""Regression tests: unlink must purge layer state so a reused i-node
does not resurrect the old file's cached attributes or data."""

import pytest

from repro.fs.compfs import CompFs
from repro.fs.cryptfs import CryptFs
from repro.fs.sfs import create_sfs
from repro.ipc.domain import Credentials
from repro.types import PAGE_SIZE


@pytest.fixture
def stack(world, node, device, user):
    return create_sfs(node, device)


class TestCoherencyLayerPurge:
    def test_new_file_on_reused_inode_is_empty(self, stack, user):
        with user.activate():
            old = stack.top.create_file("old.dat")
            old.write(0, b"OLD CONTENT " * 100)
            stack.top.unbind("old.dat")
            new = stack.top.create_file("new.dat")
            assert new.get_length() == 0
            assert new.read(0, 100) == b""
            assert new.get_attributes().size == 0

    def test_new_file_data_independent(self, stack, user):
        with user.activate():
            old = stack.top.create_file("old.dat")
            old.write(0, b"A" * PAGE_SIZE)
            old.read(0, PAGE_SIZE)  # populate the layer cache
            stack.top.unbind("old.dat")
            new = stack.top.create_file("new.dat")
            new.write(0, b"B" * 10)
            assert new.read(0, PAGE_SIZE) == b"B" * 10

    def test_stale_handle_fails_after_unlink(self, stack, user):
        from repro.errors import SpringError

        with user.activate():
            old = stack.top.create_file("old.dat")
            old.write(0, b"data")
            stack.top.unbind("old.dat")
            with pytest.raises(SpringError):
                old.check_access(
                    __import__("repro.types", fromlist=["AccessRights"])
                    .AccessRights.READ_ONLY
                )

    def test_unbind_via_subdirectory_purges(self, stack, user):
        with user.activate():
            d = stack.top.create_dir("sub")
            f = d.create_file("x.dat")
            f.write(0, b"in subdir")
            d.unbind("x.dat")
            g = d.create_file("y.dat")
            assert g.get_length() == 0


class TestTransformLayerPurge:
    def test_compfs_purges_plaintext_on_unlink(self, world, node, stack, user):
        compfs = CompFs(node.create_domain("cz", Credentials("c", True)))
        compfs.stack_on(stack.top)
        with user.activate():
            f = compfs.create_file("z.dat")
            f.write(0, b"compressed old " * 50)
            f.sync()
            compfs.unbind("z.dat")
            g = compfs.create_file("z2.dat")
            assert g.get_length() == 0
            g.write(0, b"fresh")
            assert g.read(0, 5) == b"fresh"

    def test_cryptfs_purges_plaintext_on_unlink(self, world, node, stack, user):
        cryptfs = CryptFs(node.create_domain("cy", Credentials("c", True)))
        cryptfs.stack_on(stack.top)
        with user.activate():
            f = cryptfs.create_file("e.dat")
            f.write(0, b"encrypted old")
            f.sync()
            cryptfs.unbind("e.dat")
            g = cryptfs.create_file("e2.dat")
            assert g.get_length() == 0
            g.write(0, b"fresh secret")
            assert g.read(0, 12) == b"fresh secret"

    def test_quota_refund_then_reuse(self, world, node, stack, user):
        """The end-to-end scenario that exposed the bug."""
        from repro.fs.quotafs import QuotaFs

        quota = QuotaFs(
            node.create_domain("q", Credentials("q", True)),
            budget_bytes=10 * PAGE_SIZE,
        )
        quota.stack_on(stack.top)
        with user.activate():
            f = quota.create_file("a.dat")
            f.write(0, b"x" * (10 * PAGE_SIZE))
            quota.unbind("a.dat")
            g = quota.create_file("b.dat")
            g.write(0, b"y" * (10 * PAGE_SIZE))
        assert quota.used_bytes == 10 * PAGE_SIZE
