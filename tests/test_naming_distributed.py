"""Distributed naming tests: contexts served by remote domains, charged
per hop; remote mounts composed into local name spaces; interposition on
remote names — "any domain may implement a naming context and ... bind
the context in any other context" (paper sec. 3.2), across machines."""

import pytest

from repro.fs.sfs import create_sfs
from repro.naming.cache import NameCache
from repro.naming.context import MemoryContext
from repro.naming.namespace import namespace_for
from repro.storage.block_device import RamDevice
from repro.world import World


@pytest.fixture
def two_nodes(world):
    return world.create_node("a"), world.create_node("b")


class TestCrossNodeContexts:
    def test_remote_context_resolvable(self, world, two_nodes):
        node_a, node_b = two_nodes
        remote = MemoryContext(node_a.nucleus)
        remote.bind("greeting", "hello from a")
        node_b.fs_context.bind("a-stuff", remote)
        user_b = world.create_user_domain(node_b)
        with user_b.activate():
            assert (
                node_b.fs_context.resolve("a-stuff/greeting") == "hello from a"
            )

    def test_each_hop_charged_where_it_runs(self, world, two_nodes):
        """Resolution hops context to context; a hop to a remote
        context costs a network round trip, local hops do not."""
        node_a, node_b = two_nodes
        remote = MemoryContext(node_a.nucleus)
        remote.bind("leaf", 1)
        node_b.fs_context.bind("far", remote)
        user_b = world.create_user_domain(node_b)
        with user_b.activate():
            messages_before = world.network.messages
            node_b.fs_context.resolve("far/leaf")
            # one message: the hop into node a's context.
            assert world.network.messages == messages_before + 1

    def test_chain_across_three_nodes(self, world):
        nodes = [world.create_node(f"n{i}") for i in range(3)]
        ctx1 = MemoryContext(nodes[1].nucleus)
        ctx2 = MemoryContext(nodes[2].nucleus)
        ctx1.bind("hop2", ctx2)
        ctx2.bind("treasure", "found")
        nodes[0].fs_context.bind("hop1", ctx1)
        user = world.create_user_domain(nodes[0])
        with user.activate():
            messages_before = world.network.messages
            assert (
                nodes[0].fs_context.resolve("hop1/hop2/treasure") == "found"
            )
            assert world.network.messages - messages_before == 2

    def test_namespace_composes_remote_mounts(self, world, two_nodes):
        """A per-domain name space can point at remote file systems —
        naming stays orthogonal to location."""
        node_a, node_b = two_nodes
        stack = create_sfs(node_a, RamDevice(node_a.nucleus, "ram", 4096))
        user_b = world.create_user_domain(node_b)
        ns = namespace_for(user_b)
        ns.bind("homedir", stack.top)  # private, client-side view
        with user_b.activate():
            home = ns.resolve("homedir")
            f = home.create_file("note.txt")
            f.write(0, b"written across the network")
            assert ns.resolve("homedir").resolve("note.txt").read(0, 7) == (
                b"written"
            )

    def test_partition_blocks_remote_resolution(self, world, two_nodes):
        from repro.ipc.network import NetworkPartitionError

        node_a, node_b = two_nodes
        remote = MemoryContext(node_a.nucleus)
        remote.bind("x", 1)
        node_b.fs_context.bind("far", remote)
        user_b = world.create_user_domain(node_b)
        world.network.partition(node_a, node_b)
        with user_b.activate():
            with pytest.raises(NetworkPartitionError):
                node_b.fs_context.resolve("far/x")
            # Purely local names keep resolving.
            assert node_b.fs_context.resolve("far") is remote


class TestNameCacheOverTheNetwork:
    def test_cache_eliminates_remote_hops(self, world, two_nodes):
        node_a, node_b = two_nodes
        remote = MemoryContext(node_a.nucleus)
        remote.bind("leaf", "payload")
        node_b.fs_context.bind("far", remote)
        cache = NameCache(world)
        user_b = world.create_user_domain(node_b)
        with user_b.activate():
            cache.resolve(node_b.fs_context, "far/leaf")
            messages_before = world.network.messages
            for _ in range(20):
                assert cache.resolve(node_b.fs_context, "far/leaf") == "payload"
            assert world.network.messages == messages_before

    def test_remote_rebind_invalidates_cached_name(self, world, two_nodes):
        node_a, node_b = two_nodes
        remote = MemoryContext(node_a.nucleus)
        remote.bind("leaf", "v1")
        node_b.fs_context.bind("far", remote)
        cache = NameCache(world)
        user_b = world.create_user_domain(node_b)
        with user_b.activate():
            assert cache.resolve(node_b.fs_context, "far/leaf") == "v1"
        remote.rebind("leaf", "v2")
        with user_b.activate():
            assert cache.resolve(node_b.fs_context, "far/leaf") == "v2"


class TestRemoteInterposition:
    def test_watchdog_on_remote_directory(self, world, two_nodes):
        """Interpose locally on a remotely-served tree: the watchdog
        context lives on node b, the files on node a."""
        from repro.fs.interposer import AuditFile, interpose_on_name

        node_a, node_b = two_nodes
        stack = create_sfs(node_a, RamDevice(node_a.nucleus, "ram", 4096))
        user_b = world.create_user_domain(node_b)
        with user_b.activate():
            stack.top.create_file("watched.txt").write(0, b"remote bytes")
        node_b.fs_context.bind("mnt", stack.top)
        watchdog = interpose_on_name(node_b.fs_context, "mnt", node_b.nucleus)
        audits = []

        def wrap(f):
            audit = AuditFile(node_b.nucleus, f)
            audits.append(audit)
            return audit

        watchdog.watch("watched.txt", wrap)
        with user_b.activate():
            via = node_b.fs_context.resolve("mnt").resolve("watched.txt")
            assert via.read(0, 6) == b"remote"
        assert audits and audits[0].audit_log == [("read", 0, 6)]
