"""Unit tests for CFS: per-file interposition, attribute caching with
invalidation from the server, bind forwarding, and mapped read/write."""

import pytest

from repro.fs.cfs import start_cfs
from repro.fs.dfs import export_dfs, mount_remote
from repro.fs.sfs import create_sfs
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE, AccessRights


@pytest.fixture
def dist(world):
    server = world.create_node("server")
    client = world.create_node("client")
    device = BlockDevice(server.nucleus, "sd0", 8192)
    sfs = create_sfs(server, device)
    dfs = export_dfs(server, sfs.top)
    mount_remote(client, server, "dfs")
    cfs = start_cfs(client)
    server_user = world.create_user_domain(server, "server-user")
    client_user = world.create_user_domain(client, "client-user")
    with server_user.activate():
        f = dfs.create_file("doc.dat")
        f.write(0, b"D" * (2 * PAGE_SIZE))
    return world, server, client, dfs, cfs, server_user, client_user


def interposed(client, cfs, cu, name="doc.dat"):
    with cu.activate():
        remote = client.fs_context.resolve("dfs@server").resolve(name)
        return cfs.interpose(remote)


class TestAttributeCaching:
    def test_first_stat_fetches_then_cached(self, dist):
        world, server, client, dfs, cfs, su, cu = dist
        local = interposed(client, cfs, cu)
        with cu.activate():
            local.get_attributes()
            msgs = world.network.messages
            for _ in range(50):
                local.get_attributes()
            assert world.network.messages == msgs

    def test_without_cfs_every_stat_is_remote(self, dist):
        world, server, client, dfs, cfs, su, cu = dist
        with cu.activate():
            plain = client.fs_context.resolve("dfs@server").resolve("doc.dat")
            msgs = world.network.messages
            for _ in range(10):
                plain.get_attributes()
            assert world.network.messages == msgs + 10

    def test_server_write_invalidates_attr_cache(self, dist):
        world, server, client, dfs, cfs, su, cu = dist
        local = interposed(client, cfs, cu)
        with cu.activate():
            size0 = local.get_attributes().size
        with su.activate():
            dfs.resolve("doc.dat").write(2 * PAGE_SIZE, b"grow")
        with cu.activate():
            assert local.get_attributes().size == size0 + 4
        assert world.counters.get("cfs.attr_invalidated") >= 1

    def test_attr_cache_is_per_file(self, dist):
        world, server, client, dfs, cfs, su, cu = dist
        with su.activate():
            dfs.create_file("other.dat").write(0, b"o")
        a = interposed(client, cfs, cu, "doc.dat")
        b = interposed(client, cfs, cu, "other.dat")
        with cu.activate():
            assert a.get_attributes().size != b.get_attributes().size


class TestInterposition:
    def test_same_file_interposed_once(self, dist):
        world, server, client, dfs, cfs, su, cu = dist
        a = interposed(client, cfs, cu)
        b = interposed(client, cfs, cu)
        assert a.state is b.state
        assert world.counters.get("cfs.interposed") == 1

    def test_wrap_context_interposes_on_resolve(self, dist):
        from repro.fs.cfs import CfsFile

        world, server, client, dfs, cfs, su, cu = dist
        with cu.activate():
            remote_ctx = client.fs_context.resolve("dfs@server")
            wrapped = cfs.wrap_context = cfs.wrap_resolved(remote_ctx)
            local = wrapped.resolve("doc.dat")
            assert isinstance(local, CfsFile)

    def test_cfs_file_same_type_as_file(self, dist):
        from repro.fs.file import File

        world, server, client, dfs, cfs, su, cu = dist
        local = interposed(client, cfs, cu)
        assert isinstance(local, File)


class TestDataPath:
    def test_read_through_local_vmm(self, dist):
        world, server, client, dfs, cfs, su, cu = dist
        local = interposed(client, cfs, cu)
        with cu.activate():
            assert local.read(0, 4) == b"DDDD"
            # Second read is a local VMM cache hit: no new messages.
            msgs = world.network.messages
            assert local.read(0, 4) == b"DDDD"
            assert world.network.messages == msgs

    def test_write_and_read_back(self, dist):
        world, server, client, dfs, cfs, su, cu = dist
        local = interposed(client, cfs, cu)
        with cu.activate():
            local.write(10, b"cfs wrote")
            assert local.read(10, 9) == b"cfs wrote"

    def test_write_visible_at_server_after_recall(self, dist):
        world, server, client, dfs, cfs, su, cu = dist
        local = interposed(client, cfs, cu)
        with cu.activate():
            local.write(0, b"PUSH ME")
        with su.activate():
            assert dfs.resolve("doc.dat").read(0, 7) == b"PUSH ME"

    def test_growth_through_cfs(self, dist):
        world, server, client, dfs, cfs, su, cu = dist
        local = interposed(client, cfs, cu)
        with cu.activate():
            end = local.get_length()
            local.write(end, b"appended")
            assert local.get_length() == end + 8
        with su.activate():
            assert dfs.resolve("doc.dat").get_attributes().size == end + 8

    def test_bind_forwarded_to_remote(self, dist):
        """Mapping a CfsFile wires the local VMM straight to the remote
        DFS pager; CFS is not in the page path."""
        world, server, client, dfs, cfs, su, cu = dist
        local = interposed(client, cfs, cu)
        with cu.activate():
            mapping = client.vmm.create_address_space("c").map(
                local, AccessRights.READ_ONLY
            )
            assert mapping.read(0, 4) == b"DDDD"
        assert world.counters.get("cfs.bind_forwarded") >= 1
        assert world.counters.get("dfs.bind_served") >= 1

    def test_sync_pushes_dirty_attrs(self, dist):
        world, server, client, dfs, cfs, su, cu = dist
        local = interposed(client, cfs, cu)
        with cu.activate():
            local.write(0, b"dirty attrs")
            local.sync()
        with su.activate():
            attrs = dfs.resolve("doc.dat").get_attributes()
        assert attrs.size >= 11
