"""DFS server crash recovery and name-cache graceful degradation.

A server crash loses the volatile per-client holder tables; recovery
(Lustre-style) is detected via the node's epoch bump and rebuilds them
from the surviving clients' ``held_blocks`` reports, replaying any dirty
attribute copies down through the stack.  The name cache's
``serve_stale`` knob covers the naming side: resolution degrades to the
last known answer while the authority is unreachable.
"""

import pytest

from repro.errors import FileNotFoundError_
from repro.fs.cfs import start_cfs
from repro.fs.dfs import export_dfs, mount_remote
from repro.fs.sfs import create_sfs
from repro.ipc.network import NetworkPartitionError
from repro.naming.cache import NameCache
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE, AccessRights

RW = AccessRights.READ_WRITE


@pytest.fixture
def dist(world):
    server = world.create_node("server")
    client = world.create_node("client")
    device = BlockDevice(server.nucleus, "sd0", 8192)
    sfs = create_sfs(server, device)
    dfs = export_dfs(server, sfs.top)
    mount_remote(client, server, "dfs")
    su = world.create_user_domain(server, "server-user")
    cu = world.create_user_domain(client, "client-user")
    with su.activate():
        dfs.create_file("shared.dat").write(0, b"S" * (2 * PAGE_SIZE))
    return world, server, client, sfs, dfs, su, cu


def remote_file(client, name="shared.dat"):
    return client.fs_context.resolve("dfs@server").resolve(name)


def dfs_state(dfs):
    return next(iter(dfs._states.values()))


class TestCrashLosesHolderState:
    def test_crash_wipes_holder_tables(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        with cu.activate():
            mapping = client.vmm.create_address_space("c").map(
                remote_file(client), RW
            )
            mapping.write(0, b"CLIENT DIRTY")
        state = dfs_state(dfs)
        assert state.holders._holders  # the client's hold is tracked
        server.crash()
        assert not state.holders._holders  # volatile state gone
        assert server.crashed

    def test_vmm_reports_its_holds(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        with cu.activate():
            mapping = client.vmm.create_address_space("c").map(
                remote_file(client), RW
            )
            mapping.write(0, b"CLIENT DIRTY")
        writer = dfs_state(dfs).holders.writer_of(0)
        with su.activate():
            held = writer.cache_object.held_blocks()
        assert held[0] == (True, True)  # writable and dirty
        assert world.counters.get("vmm.held_blocks") == 1

    def test_attribute_only_channel_reports_none(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        cfs = start_cfs(client)
        with cu.activate():
            cf = cfs.interpose(remote_file(client))
            cf.read(0, 4)
        state = next(iter(cfs._states.values()))
        with cu.activate():
            # CFS keeps no data cache of its own (pages live in the local
            # VMM's channel), so it has nothing to re-declare.
            assert state.down_channel.cache_object.held_blocks() is None


class TestEpochRecovery:
    def test_recovery_recalls_client_dirty_page(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        with cu.activate():
            mapping = client.vmm.create_address_space("c").map(
                remote_file(client), RW
            )
            mapping.write(0, b"CLIENT DIRTY")
        server.crash()
        server.recover()
        # The first post-recovery access re-registers the surviving
        # clients' holds; the normal MRSW recall then fetches the dirty
        # page — no client data is lost to the crash.
        with su.activate():
            assert dfs.resolve("shared.dat").read(0, 12) == b"CLIENT DIRTY"
        assert world.counters.get("dfs.recoveries") == 1
        assert dfs_state(dfs).registered_epoch == server.epoch == 1

    def test_recovery_runs_once_per_epoch(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        with cu.activate():
            remote_file(client).read(0, 4)
        server.crash()
        server.recover()
        with su.activate():
            dfs.resolve("shared.dat").read(0, 4)
            dfs.resolve("shared.dat").read(0, 4)
        assert world.counters.get("dfs.recoveries") == 1
        server.crash()
        server.recover()
        with su.activate():
            dfs.resolve("shared.dat").read(0, 4)
        assert world.counters.get("dfs.recoveries") == 2

    def test_remote_traffic_triggers_recovery_too(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        with cu.activate():
            rf = remote_file(client)
            rf.read(0, 4)
        server.crash()
        server.recover()
        with cu.activate():
            assert rf.read(0, 4) == b"SSSS"
        assert world.counters.get("dfs.recoveries") == 1

    def test_dirty_attributes_replayed_from_cfs(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        cfs = start_cfs(client)
        with cu.activate():
            cf = cfs.interpose(remote_file(client))
            cf.write(0, b"ATTR-DIRTY")  # touches mtime: attrs now dirty
            client_mtime = cf.get_attributes().mtime_us
        server.crash()
        server.recover()
        with su.activate():
            dfs.resolve("shared.dat").read(0, 1)  # triggers recovery
            attrs = dfs.resolve("shared.dat").get_attributes()
        # The client's uncommitted attribute update survived the crash:
        # recovery replayed it down through the stack to SFS.
        assert attrs.mtime_us == client_mtime

    def test_no_crash_no_recovery(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        with cu.activate():
            remote_file(client).read(0, 4)
        with su.activate():
            dfs.resolve("shared.dat").read(0, 4)
        assert world.counters.get("dfs.recoveries") == 0


class TestNameCacheStaleServing:
    def test_stale_serve_during_partition(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        cache = NameCache(world, serve_stale=True)
        with cu.activate():
            first = cache.resolve(client.fs_context, "dfs@server/shared.dat")
            # A binding change on the resolution path invalidates the
            # entry — it demotes to the stale table instead of vanishing.
            client.fs_context.bind("scratch", object())
            world.network.partition(server, client)
            again = cache.resolve(client.fs_context, "dfs@server/shared.dat")
        assert again is first  # the last known answer, not an error
        assert cache.stale_serves == 1
        assert world.counters.get("namecache.stale_serves") == 1

    def test_knob_off_fails_the_open(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        cache = NameCache(world)  # serve_stale defaults off
        with cu.activate():
            cache.resolve(client.fs_context, "dfs@server/shared.dat")
            client.fs_context.bind("scratch", object())
            world.network.partition(server, client)
            with pytest.raises(NetworkPartitionError):
                cache.resolve(client.fs_context, "dfs@server/shared.dat")

    def test_fresh_resolution_supersedes_stale(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        cache = NameCache(world, serve_stale=True)
        with cu.activate():
            cache.resolve(client.fs_context, "dfs@server/shared.dat")
            client.fs_context.bind("scratch", object())
            assert len(cache._stale) == 1
            # Authority reachable again: a real resolution wins and the
            # stale copy is discarded.
            cache.resolve(client.fs_context, "dfs@server/shared.dat")
            assert len(cache._stale) == 0

    def test_capacity_eviction_demotes(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        with su.activate():
            for i in range(3):
                dfs.create_file(f"f{i}.dat")
        cache = NameCache(world, capacity=2, serve_stale=True)
        with cu.activate():
            for i in range(3):
                cache.resolve(client.fs_context, f"dfs@server/f{i}.dat")
        assert len(cache._entries) == 2
        assert len(cache._stale) == 1  # the LRU victim, kept for degraded mode

    def test_negative_entries_never_demote(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        cache = NameCache(world, serve_stale=True)
        with cu.activate():
            with pytest.raises(FileNotFoundError_):
                cache.resolve(client.fs_context, "dfs@server/missing.dat")
            client.fs_context.bind("scratch", object())
        assert len(cache._stale) == 0  # a cached failure is not an answer

    def test_clear_drops_stale_table(self, dist):
        world, server, client, sfs, dfs, su, cu = dist
        cache = NameCache(world, serve_stale=True)
        with cu.activate():
            cache.resolve(client.fs_context, "dfs@server/shared.dat")
            client.fs_context.bind("scratch", object())
        cache.clear()
        assert len(cache) == 0
        assert len(cache._stale) == 0


class TestReportSection:
    def test_fault_tolerance_demo_renders(self):
        from repro.report import build_fault_tolerance_demo

        text = build_fault_tolerance_demo()
        assert "knobs off: 26/30" in text
        assert "knobs on:  30/30" in text
        assert "DFS holder-state recoveries" in text
