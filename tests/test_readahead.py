"""Tests for the sec. 8 read-ahead/clustering extension: ranged
page-ins, clustered device transfers, and the VMM/coherency policies."""

import pytest

from repro.fs.sfs import create_sfs
from repro.storage.block_device import BlockDevice
from repro.storage.inode import FileType
from repro.storage.volume import Volume
from repro.types import PAGE_SIZE, AccessRights
from repro.world import World


@pytest.fixture
def seq_env(world, node, device):
    """A 32-page file on a cached SFS, synced to disk, caches dropped."""
    stack = create_sfs(node, device)
    user = world.create_user_domain(node)
    payload = bytes((i // 7) % 256 for i in range(32 * PAGE_SIZE))
    with user.activate():
        f = stack.top.create_file("seq.dat")
        f.write(0, payload)
        f.sync()
    state = next(iter(stack.coherency_layer._states.values()))
    state.store.clear()
    return stack, user, payload, state


class TestDeviceClustering:
    def test_read_blocks_one_transfer(self, world, node):
        device = BlockDevice(node.nucleus, "c0", 256)
        for i in range(8):
            device.write_block(10 + i, bytes([i]) * 16)
        reads_before = device.reads
        clock_before = world.clock.charged("disk")
        data = device.read_blocks(10, 8)
        assert device.reads == reads_before + 1
        assert data[0] == 0 and data[PAGE_SIZE] == 1
        one_transfer = world.clock.charged("disk") - clock_before
        # Far cheaper than 8 individual reads: one seek+rotation total.
        assert one_transfer < 8 * world.cost_model.disk_io_us(PAGE_SIZE) / 2

    def test_read_blocks_bounds(self, node):
        from repro.errors import DeviceError

        device = BlockDevice(node.nucleus, "c1", 16)
        with pytest.raises(DeviceError):
            device.read_blocks(10, 10)
        with pytest.raises(DeviceError):
            device.read_blocks(0, 0)


class TestVolumeClusteredRead:
    def test_matches_plain_read(self, volume):
        root = volume.sb.root_ino
        f = volume.create(root, "c.dat", FileType.REGULAR)
        payload = bytes(i % 251 for i in range(10 * PAGE_SIZE))
        volume.write_data(f.ino, 0, payload)
        assert volume.read_data_clustered(f.ino, 0, len(payload)) == payload
        assert (
            volume.read_data_clustered(f.ino, 2 * PAGE_SIZE, 3 * PAGE_SIZE)
            == payload[2 * PAGE_SIZE : 5 * PAGE_SIZE]
        )

    def test_holes_read_zero(self, volume):
        root = volume.sb.root_ino
        f = volume.create(root, "h.dat", FileType.REGULAR)
        volume.write_data(f.ino, 5 * PAGE_SIZE, b"tail")
        data = volume.read_data_clustered(f.ino, 0, 5 * PAGE_SIZE + 4)
        assert data[: 5 * PAGE_SIZE] == bytes(5 * PAGE_SIZE)
        assert data[5 * PAGE_SIZE :] == b"tail"

    def test_fewer_transfers_for_contiguous_file(self, world, node):
        device = BlockDevice(node.nucleus, "c2", 512)
        volume = Volume.mkfs(device, inode_count=32)
        f = volume.create(volume.sb.root_ino, "big", FileType.REGULAR)
        volume.write_data(f.ino, 0, b"z" * (16 * PAGE_SIZE))
        reads_before = device.reads
        volume.read_data_clustered(f.ino, 0, 16 * PAGE_SIZE)
        clustered_reads = device.reads - reads_before
        reads_before = device.reads
        volume.read_data(f.ino, 0, 16 * PAGE_SIZE)
        plain_reads = device.reads - reads_before
        assert clustered_reads < plain_reads


class TestCoherencyReadahead:
    def test_sequential_scan_cheaper_with_readahead(self, sfs_factory):
        costs = {}
        for window in (0, 8):
            node, stack = sfs_factory()
            world = node.world
            stack.coherency_layer.readahead_pages = window
            user = world.create_user_domain(node)
            with user.activate():
                f = stack.top.create_file("scan.dat")
                f.write(0, b"s" * (32 * PAGE_SIZE))
                f.sync()
            state = next(iter(stack.coherency_layer._states.values()))
            state.store.clear()
            state.streams.reset()
            with user.activate():
                handle = stack.top.resolve("scan.dat")
                before = world.clock.now_us
                for page in range(32):
                    handle.read(page * PAGE_SIZE, PAGE_SIZE)
                costs[window] = world.clock.now_us - before
        # One seek per window instead of one per page: several-x cheaper.
        assert costs[8] < costs[0] / 2

    def test_readahead_data_correct(self, seq_env):
        stack, user, payload, state = seq_env
        stack.coherency_layer.readahead_pages = 8
        state.streams.reset()
        with user.activate():
            handle = stack.top.resolve("seq.dat")
            got = b"".join(
                handle.read(page * PAGE_SIZE, PAGE_SIZE) for page in range(32)
            )
        assert got == payload

    def test_random_access_does_not_trigger_readahead(self, seq_env, world):
        stack, user, payload, state = seq_env
        stack.coherency_layer.readahead_pages = 8
        state.streams.reset()
        with user.activate():
            handle = stack.top.resolve("seq.dat")
            for page in (17, 3, 29, 11, 23):
                handle.read(page * PAGE_SIZE, PAGE_SIZE)
        assert world.counters.get("coherency.readahead") == 0

    def test_disabled_by_default(self, seq_env, world):
        stack, user, payload, state = seq_env
        with user.activate():
            handle = stack.top.resolve("seq.dat")
            for page in range(8):
                handle.read(page * PAGE_SIZE, PAGE_SIZE)
        assert world.counters.get("coherency.readahead") == 0


class TestVmmReadahead:
    def test_sequential_mapping_scan_prefetches(self, seq_env, world, node):
        stack, user, payload, state = seq_env
        node.vmm.readahead_pages = 4
        with user.activate():
            f = stack.top.resolve("seq.dat")
            mapping = node.vmm.create_address_space("t").map(
                f, AccessRights.READ_ONLY
            )
            got = b"".join(
                mapping.read(page * PAGE_SIZE, PAGE_SIZE) for page in range(16)
            )
        assert got == payload[: 16 * PAGE_SIZE]
        assert world.counters.get("vmm.readahead") >= 1
        # Fewer faults than pages: prefetched pages hit the cache.
        assert world.counters.get("vmm.fault") < 16

    def test_vmm_readahead_respects_coherency(self, seq_env, world, node):
        """Speculatively installed pages are still tracked as held, so a
        later writer flushes them correctly."""
        stack, user, payload, state = seq_env
        node.vmm.readahead_pages = 4
        with user.activate():
            f = stack.top.resolve("seq.dat")
            mapping = node.vmm.create_address_space("t").map(
                f, AccessRights.READ_ONLY
            )
            mapping.read(0, PAGE_SIZE)
            mapping.read(PAGE_SIZE, 3 * PAGE_SIZE)  # triggers read-ahead
            # A writer through the file interface must invalidate the
            # prefetched copies too.
            f.write(2 * PAGE_SIZE, b"NEW DATA")
            assert mapping.read(2 * PAGE_SIZE, 8) == b"NEW DATA"
