"""Benchmark harness: virtual-time measurement, workloads, and the
table/figure reproduction builders."""

from repro.bench.harness import (
    Measurement,
    TableFormatter,
    measure,
    measure_once,
    normalized,
)
from repro.bench.table2 import ROWS, Table2Result, run_table2
from repro.bench.table3 import PAPER_SUNOS_US, Table3Result, run_table3

__all__ = [
    "Measurement", "TableFormatter", "measure", "measure_once", "normalized",
    "ROWS", "Table2Result", "run_table2",
    "PAPER_SUNOS_US", "Table3Result", "run_table3",
]
