"""Virtual-time measurement harness.

The paper's methodology: "Each data point is the average of 5 runs of
10000 invocations of the given operation."  We reproduce the structure
(runs × iterations) over the *virtual* clock; because the simulation is
deterministic the variance is zero, but keeping the runs/iterations
shape makes the harness output line up with the paper's tables.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

from repro.sim.clock import StopWatch
from repro.world import World


@dataclasses.dataclass
class Measurement:
    """Mean virtual-time cost of one operation."""

    name: str
    mean_us: float
    runs: int
    iterations: int
    breakdown: Dict[str, float]

    @property
    def mean_ms(self) -> float:
        return self.mean_us / 1000.0


def measure(
    world: World,
    name: str,
    op: Callable[[], object],
    iterations: int = 100,
    runs: int = 5,
    warmup: int = 1,
) -> Measurement:
    """Average virtual cost of ``op`` over ``runs`` x ``iterations``.

    ``warmup`` iterations run first (uncounted) so caches reach steady
    state, matching how the paper's micro-benchmarks behave after the
    first touch.
    """
    for _ in range(warmup):
        op()
    total = 0.0
    breakdown: Dict[str, float] = {}
    for _ in range(runs):
        watch = StopWatch(world.clock)
        with watch:
            for _ in range(iterations):
                op()
        total += watch.elapsed_us
        for category, spent in watch.breakdown.items():
            breakdown[category] = breakdown.get(category, 0.0) + spent
    count = runs * iterations
    return Measurement(
        name=name,
        mean_us=total / count,
        runs=runs,
        iterations=iterations,
        breakdown={k: v / count for k, v in breakdown.items()},
    )


def measure_once(world: World, name: str, op: Callable[[], object]) -> Measurement:
    """Single-shot cost (for cold-cache / first-touch measurements)."""
    watch = StopWatch(world.clock)
    with watch:
        op()
    return Measurement(name, watch.elapsed_us, 1, 1, dict(watch.breakdown))


class TableFormatter:
    """Fixed-width table rendering for bench output, in the style of the
    paper's tables (absolute microseconds plus normalized percent)."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, label: str, values: Sequence[object]) -> None:
        rendered = [label] + [self._fmt(v) for v in values]
        self.rows.append(rendered)

    @staticmethod
    def _fmt(value: object) -> str:
        if isinstance(value, float):
            if value >= 1000:
                return f"{value / 1000:.2f} ms"
            return f"{value:.1f} us"
        return str(value)

    def render(self) -> str:
        header = [""] + self.columns
        widths = [
            max(len(str(row[i])) for row in [header] + self.rows)
            for i in range(len(header))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            "  ".join(str(cell).rjust(width) for cell, width in zip(header, widths))
        )
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(
                "  ".join(str(cell).rjust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)


def normalized(value: float, baseline: float) -> str:
    """Render the paper's second-line percentages ("normalized relative
    to the non-stacked implementation")."""
    if baseline == 0:
        return "n/a"
    return f"{value / baseline * 100:.0f}%"
