"""Table 3 reproduction — SunOS 4.1.3 baseline, and the Spring/SunOS
comparison ("Spring is from 2 to 7 times slower than SunOS")."""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.baseline.sunos import SunOsFs
from repro.bench.harness import Measurement, TableFormatter, measure
from repro.bench.table2 import _setup
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE
from repro.world import World

PAPER_SUNOS_US = {"open": 127.0, "4KB read": 82.0, "4KB write": 86.0, "fstat": 28.0}


@dataclasses.dataclass
class Table3Result:
    sunos: Dict[str, Measurement]
    spring: Dict[str, Measurement]

    def ratio(self, op: str) -> float:
        return self.spring[op].mean_us / self.sunos[op].mean_us

    def render(self) -> str:
        table = TableFormatter(
            "Table 3: SunOS 4.1.3 vs Spring SFS (not stacked, cached)",
            ["SunOS", "paper SunOS", "Spring", "Spring/SunOS"],
        )
        for op in PAPER_SUNOS_US:
            table.add_row(
                op,
                [
                    self.sunos[op].mean_us,
                    PAPER_SUNOS_US[op],
                    self.spring[op].mean_us,
                    f"{self.ratio(op):.1f}x",
                ],
            )
        return table.render()


def run_table3(iterations: int = 100, runs: int = 5) -> Table3Result:
    # --- SunOS side -------------------------------------------------------
    world = World()
    node = world.create_node("sunos-host")
    device = BlockDevice(node.nucleus, "sd0", 8192)
    fs = SunOsFs(world, device)
    fd = fs.open("bench.dat", create=True)
    fs.pwrite(fd, b"b" * PAGE_SIZE, 0)
    fs.pread(fd, PAGE_SIZE, 0)  # warm the buffer cache
    sunos = {
        "open": measure(world, "open", lambda: fs.open("bench.dat"), iterations, runs),
        "4KB read": measure(
            world, "4KB read", lambda: fs.pread(fd, PAGE_SIZE, 0), iterations, runs
        ),
        "4KB write": measure(
            world,
            "4KB write",
            lambda: fs.pwrite(fd, b"w" * PAGE_SIZE, 0),
            iterations,
            runs,
        ),
        "fstat": measure(world, "fstat", lambda: fs.fstat(fd), iterations, runs),
    }

    # --- Spring side.  The paper's "2 to 7 times slower" bracket holds
    # against the non-stacked implementation (the stacked two-domain
    # open is ~8x SunOS — which is exactly why sec. 6.4 flags the open
    # stacking overhead as "very significant when compared to the much
    # faster SunOS open").
    spring_world, stack, user = _setup("not_stacked", cache=True)
    with user.activate():
        handle = stack.top.resolve("bench.dat")
        handle.read(0, PAGE_SIZE)
        spring = {
            "open": measure(
                spring_world,
                "open",
                lambda: stack.top.resolve("bench.dat"),
                iterations,
                runs,
            ),
            "4KB read": measure(
                spring_world,
                "4KB read",
                lambda: handle.read(0, PAGE_SIZE),
                iterations,
                runs,
            ),
            "4KB write": measure(
                spring_world,
                "4KB write",
                lambda: handle.write(0, b"w" * PAGE_SIZE),
                iterations,
                runs,
            ),
            "fstat": measure(
                spring_world,
                "fstat",
                lambda: handle.get_attributes(),
                iterations,
                runs,
            ),
        }
    return Table3Result(sunos, spring)
