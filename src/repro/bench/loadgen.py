"""Concurrent load generation: offered-load sweeps over the scheduler.

The paper's tables are single-client relative costs; the ROADMAP's
north star is behaviour under *heavy traffic*.  This module is the
bridge: it builds the three reference configurations — monolithic SFS,
a 3-deep stacked SFS (NULLFS over coherency over disk, each layer in
its own domain), and DFS-over-SFS across two machines — and drives each
with N simulated clients running as coroutines on the discrete-event
scheduler (:mod:`repro.sim.scheduler`), with finite-capacity service
queues installed on the shared disk and (for DFS) the server node.

Every client loops: think (seeded-exponential pacing) → resolve one of
the shared files → uncached 4 KB read.  Uncached (``cache=False``)
keeps the per-request disk demand constant, so the sweep produces the
classic saturation curve: throughput climbs linearly with offered load
until the disk (the shared bottleneck in all three configurations)
reaches 100% utilization, then plateaus while queueing delay — and with
it p99 latency — grows without bound.  This is the same shape the
Linux RAID study (PAPERS.md) reports as throughput-vs-offered-load, and
the queue-at-the-storage-target structure is Lustre's.

Everything is virtual-time deterministic: same seed, same curves, to
the last microsecond.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.fs.dfs import export_dfs, mount_remote
from repro.fs.nullfs import NullFs
from repro.fs.sfs import create_sfs
from repro.fs.stack import layer_busy_breakdown
from repro.ipc.domain import Credentials
from repro.sim.scheduler import request, think
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE
from repro.world import World

#: The three reference configurations of the load sweep.
CONFIGS = ("monolithic", "stacked", "dfs")

#: Shared files per configuration (clients pick uniformly).
FILES = 8
#: Requests per client per cell.
REQUESTS = 2
#: Mean think time between a client's requests (exponential, seeded).
THINK_MEAN_US = 500_000.0
#: Server-slot count for the DFS server node.
DFS_SERVER_SLOTS = 4


class LoadConfig:
    """One built configuration: a world plus an ``op(name)`` factory the
    clients call, and the stack top for busy-breakdown reporting."""

    def __init__(self, world: World, names: List[str],
                 make_op: Callable[[str], Callable[[], object]],
                 top) -> None:
        self.world = world
        self.names = names
        self.make_op = make_op
        self.top = top


def _populate(top, count: int) -> List[str]:
    names = []
    for i in range(count):
        top.create_file(f"f{i}.dat").write(0, bytes([65 + i % 26]) * PAGE_SIZE)
        names.append(f"f{i}.dat")
    return names


def build_config(name: str, files: int = FILES) -> LoadConfig:
    """Build one of :data:`CONFIGS` with its service queues installed."""
    world = World()
    world.enable_layer_busy_accounting()
    if name == "dfs":
        server = world.create_node("server")
        client_node = world.create_node("client")
        device = BlockDevice(server.nucleus, "sd0", 16384)
        stack = create_sfs(server, device, cache=False)
        dfs = export_dfs(server, stack.top)
        mount_remote(client_node, server, "dfs")
        server.install_server_queue(DFS_SERVER_SLOTS)
        su = world.create_user_domain(server, "su")
        user = world.create_user_domain(client_node, "cu")
        with su.activate():
            names = _populate(dfs, files)

        def make_op(fname: str) -> Callable[[], object]:
            path = f"dfs@server/{fname}"

            def op() -> object:
                with user.activate():
                    handle = client_node.fs_context.resolve(path)
                    return handle.read(0, PAGE_SIZE)

            return op

        top = dfs
    elif name in ("monolithic", "stacked"):
        node = world.create_node("node")
        device = BlockDevice(node.nucleus, "sd0", 16384)
        placement = "not_stacked" if name == "monolithic" else "two_domains"
        stack = create_sfs(node, device, placement=placement, cache=False)
        top = stack.top
        if name == "stacked":
            # Third layer in its own domain: NULLFS over coherency over
            # disk — the paper's interposition case, now under load.
            domain = node.create_domain("nullfs", Credentials("nullfs", True))
            null = NullFs(domain)
            null.stack_on(top)
            top = null
        user = world.create_user_domain(node)
        with user.activate():
            names = _populate(top, files)

        def make_op(fname: str) -> Callable[[], object]:
            def op() -> object:
                with user.activate():
                    handle = top.resolve(fname)
                    return handle.read(0, PAGE_SIZE)

            return op
    else:
        raise ValueError(f"unknown load config {name!r}; expected {CONFIGS}")
    device.install_queue(1)
    return LoadConfig(world, names, make_op, top)


def _client(config: LoadConfig, rng: random.Random,
            latencies: List[float], requests: int,
            think_mean_us: float):
    """One simulated client: a coroutine for the scheduler."""
    world = config.world
    names = config.names
    for _ in range(requests):
        yield think(rng.expovariate(1.0 / think_mean_us))
        issued_us = world.clock.now_us
        yield request(config.make_op(names[rng.randrange(len(names))]))
        latencies.append(world.clock.now_us - issued_us)


def _percentile(ordered: List[float], fraction: float) -> float:
    index = min(len(ordered) - 1, int(len(ordered) * fraction))
    return ordered[index]


def run_cell(config_name: str, clients: int, seed: int = 11,
             requests: int = REQUESTS,
             think_mean_us: float = THINK_MEAN_US) -> Dict[str, object]:
    """One sweep cell: ``clients`` concurrent clients against a fresh
    build of ``config_name``; returns throughput/latency/queueing
    metrics in virtual time."""
    config = build_config(config_name)
    world = config.world
    scheduler = world.scheduler()
    latencies: List[float] = []
    start_us = world.clock.now_us
    for cid in range(clients):
        rng = random.Random(seed * 1_000_003 + cid)
        scheduler.spawn(
            _client(config, rng, latencies, requests, think_mean_us),
            name=f"client{cid}",
        )
    scheduler.run()
    makespan_us = world.clock.now_us - start_us
    ordered = sorted(latencies)
    clock = world.clock
    busy = {
        fs_type: round(busy_us / 1000, 3)
        for fs_type, _, busy_us, _ in layer_busy_breakdown(config.top)
        if busy_us > 0
    }
    return {
        "clients": clients,
        "completed": len(ordered),
        "throughput_rps": round(len(ordered) / (makespan_us / 1e6), 2),
        "p50_ms": round(_percentile(ordered, 0.50) / 1000, 3),
        "p99_ms": round(_percentile(ordered, 0.99) / 1000, 3),
        "makespan_ms": round(makespan_us / 1000, 3),
        "disk_queue_wait_ms": round(clock.charged("disk_queue_wait") / 1000, 3),
        "server_queue_wait_ms": round(
            clock.charged("server_queue_wait") / 1000, 3
        ),
        "layer_busy_ms": busy,
    }


def sweep(config_name: str, loads: List[int], seed: int = 11,
          requests: int = REQUESTS,
          think_mean_us: float = THINK_MEAN_US) -> Dict[str, object]:
    """Sweep offered load for one configuration and locate the
    saturation knee: the smallest load whose throughput reaches 95% of
    the sweep's peak (beyond it, added clients only add queueing
    delay)."""
    cells = [
        run_cell(config_name, clients, seed, requests, think_mean_us)
        for clients in loads
    ]
    peak = max(cell["throughput_rps"] for cell in cells)
    knee_clients: Optional[int] = None
    for cell in cells:
        if cell["throughput_rps"] >= 0.95 * peak:
            knee_clients = cell["clients"]
            break
    return {
        "cells": cells,
        "peak_throughput_rps": peak,
        "knee_clients": knee_clients,
        "p99_growth_x": round(
            cells[-1]["p99_ms"] / cells[0]["p99_ms"], 1
        ) if cells and cells[0]["p99_ms"] else 0.0,
    }


def render_sweep(config_name: str, result: Dict[str, object]) -> str:
    """Fixed-width table of one configuration's saturation curve, with
    the knee row marked."""
    lines = [
        f"{config_name}: peak {result['peak_throughput_rps']} req/s, "
        f"knee at {result['knee_clients']} clients, "
        f"p99 grew {result['p99_growth_x']}x across the sweep",
        f"{'clients':>8}  {'req/s':>8}  {'p50 ms':>10}  {'p99 ms':>10}  "
        f"{'disk wait ms':>13}",
    ]
    for cell in result["cells"]:
        marker = " <- knee" if cell["clients"] == result["knee_clients"] else ""
        lines.append(
            f"{cell['clients']:>8}  {cell['throughput_rps']:>8}  "
            f"{cell['p50_ms']:>10}  {cell['p99_ms']:>10}  "
            f"{cell['disk_queue_wait_ms']:>13}{marker}"
        )
    return "\n".join(lines)
