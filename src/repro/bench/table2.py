"""Table 2 reproduction — Spring SFS stacking overhead.

Reproduces the paper's central measurement: open / 4KB read / 4KB write /
stat against three SFS configurations (not stacked, stacked in one
domain, stacked across two domains), with and without caching by the
coherency layer, normalized to the non-stacked implementation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.bench.harness import Measurement, TableFormatter, measure, normalized
from repro.fs.sfs import PLACEMENTS, create_sfs
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE
from repro.world import World

OPS = ("open", "4KB read", "4KB write", "stat")

#: (op, cached-by-coherency-layer?) rows in the paper's order.  The
#: paper has no uncached open row (open never touches data).
ROWS: List[Tuple[str, bool]] = [
    ("open", True),
    ("4KB read", True),
    ("4KB read", False),
    ("4KB write", True),
    ("4KB write", False),
    ("stat", True),
    ("stat", False),
]

#: Paper-reported normalized values for comparison (sec. 6.4 text: +39%
#: one domain / +101% two domains on open; "no measurable overhead" i.e.
#: 100% elsewhere when cached; "insignificant" when disk-bound).
PAPER_NORMALIZED = {
    ("open", True): (100, 139, 201),
    ("4KB read", True): (100, 100, 100),
    ("4KB write", True): (100, 100, 100),
    ("stat", True): (100, 100, 100),
    ("4KB write", False): (100, 100, 100),
    ("4KB read", False): (100, 100, 100),
}

#: Paper-reported absolute anchors (ms) where the table is legible.
PAPER_ABSOLUTE_MS = {
    ("4KB write", True): 0.16,
    ("4KB write", False): 13.7,
}


@dataclasses.dataclass
class Table2Result:
    cells: Dict[Tuple[str, bool, str], Measurement]

    def mean_us(self, op: str, cached: bool, placement: str) -> float:
        return self.cells[(op, cached, placement)].mean_us

    def normalized_pct(self, op: str, cached: bool, placement: str) -> float:
        baseline = self.mean_us(op, cached, "not_stacked")
        return self.mean_us(op, cached, placement) / baseline * 100.0

    def render(self) -> str:
        table = TableFormatter(
            "Table 2: Spring SFS performance (virtual time)",
            ["cached?", "not stacked", "one domain", "two domains"],
        )
        for op, cached in ROWS:
            values = [self.mean_us(op, cached, p) for p in PLACEMENTS]
            table.add_row(op, ["yes" if cached else "no"] + list(values))
            table.add_row(
                "",
                [""] + [normalized(v, values[0]) for v in values],
            )
        return table.render()


def _setup(placement: str, cache: bool):
    world = World()
    node = world.create_node("bench")
    device = BlockDevice(node.nucleus, "sd0", 8192)
    stack = create_sfs(node, device, placement=placement, cache=cache)
    user = world.create_user_domain(node)
    with user.activate():
        f = stack.top.create_file("bench.dat")
        f.write(0, b"b" * PAGE_SIZE)
        f.sync()
        stack.top.sync_fs()
    return world, stack, user


def _measure_cell(
    placement: str, cache: bool, op: str, iterations: int, runs: int
) -> Measurement:
    world, stack, user = _setup(placement, cache)
    buffer = b"w" * PAGE_SIZE
    with user.activate():
        handle = stack.top.resolve("bench.dat")
        if op == "open":
            target = lambda: stack.top.resolve("bench.dat")
        elif op == "4KB read":
            target = lambda: handle.read(0, PAGE_SIZE)
        elif op == "4KB write":
            target = lambda: handle.write(0, buffer)
        elif op == "stat":
            target = lambda: handle.get_attributes()
        else:
            raise ValueError(op)
        return measure(world, f"{op}/{placement}", target, iterations, runs)


def run_table2(iterations: int = 100, runs: int = 5) -> Table2Result:
    """Measure every cell.  ``iterations`` trades fidelity of the
    paper's 10000-iteration loops against simulator wall time; virtual
    results are iteration-count-invariant for steady-state ops."""
    cells: Dict[Tuple[str, bool, str], Measurement] = {}
    for op, cached in ROWS:
        for placement in PLACEMENTS:
            cells[(op, cached, placement)] = _measure_cell(
                placement, cached, op, iterations, runs
            )
    return Table2Result(cells)
