"""Deterministic workload generators for benchmarks and stress tests."""

from __future__ import annotations

import random
import string
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.types import PAGE_SIZE


def compressible_bytes(size: int, seed: int = 0, ratio_hint: float = 0.25) -> bytes:
    """Data that zlib compresses to roughly ``ratio_hint`` of its size:
    repeated dictionary words with occasional random salt.  Deterministic
    per seed."""
    rng = random.Random(seed)
    words = [
        b"spring", b"pager", b"cache", b"object", b"domain", b"coherency",
        b"stackable", b"naming", b"memory", b"layer",
    ]
    out = bytearray()
    while len(out) < size:
        if rng.random() < ratio_hint:
            out += bytes(rng.getrandbits(8) for _ in range(8))
        else:
            out += rng.choice(words) + b" "
    return bytes(out[:size])


def incompressible_bytes(size: int, seed: int = 0) -> bytes:
    """Pseudo-random data that does not compress."""
    rng = random.Random(seed)
    return bytes(rng.getrandbits(8) for _ in range(size))


def pattern_bytes(size: int, tag: int = 0) -> bytes:
    """Self-describing pattern: byte i of file `tag` is a function of
    (tag, i), so any misplaced block is detectable."""
    block = bytes((tag * 7 + i * 13) % 256 for i in range(256))
    reps = size // 256 + 1
    return (block * reps)[:size]


def file_names(count: int, prefix: str = "f", seed: int = 0) -> List[str]:
    rng = random.Random(seed)
    suffixes = ["dat", "txt", "log", "idx", "tmp"]
    return [
        f"{prefix}{i:04d}.{rng.choice(suffixes)}"
        for i in range(count)
    ]


def sequential_ranges(
    file_size: int, io_size: int = PAGE_SIZE
) -> Iterator[Tuple[int, int]]:
    """(offset, size) pairs sweeping a file front to back."""
    offset = 0
    while offset < file_size:
        yield offset, min(io_size, file_size - offset)
        offset += io_size


def random_ranges(
    file_size: int, count: int, io_size: int = PAGE_SIZE, seed: int = 0
) -> Iterator[Tuple[int, int]]:
    """``count`` random page-aligned (offset, size) pairs."""
    rng = random.Random(seed)
    pages = max(1, file_size // io_size)
    for _ in range(count):
        page = rng.randrange(pages)
        yield page * io_size, io_size


def hot_cold_accesses(
    files: Sequence[str], count: int, hot_fraction: float = 0.1,
    hot_weight: float = 0.9, seed: int = 0,
) -> Iterator[str]:
    """Skewed file-access stream: ``hot_weight`` of accesses hit the
    ``hot_fraction`` hottest files (a classic FS-workload skew)."""
    rng = random.Random(seed)
    split = max(1, int(len(files) * hot_fraction))
    hot, cold = list(files[:split]), list(files[split:]) or list(files[:split])
    for _ in range(count):
        pool = hot if rng.random() < hot_weight else cold
        yield rng.choice(pool)


def build_tree_spec(
    depth: int, fanout: int, files_per_dir: int, seed: int = 0
) -> List[Tuple[str, str]]:
    """A directory-tree description: list of ('dir'|'file', path)."""
    rng = random.Random(seed)
    spec: List[Tuple[str, str]] = []

    def walk(prefix: str, level: int) -> None:
        for i in range(files_per_dir):
            spec.append(("file", f"{prefix}file{i}.dat"))
        if level >= depth:
            return
        for d in range(fanout):
            sub = f"{prefix}dir{level}_{d}/"
            spec.append(("dir", sub.rstrip("/")))
            walk(sub, level + 1)

    walk("", 0)
    return spec
