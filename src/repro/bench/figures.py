"""Figure reproductions — scenario builders.

Each ``fig*`` function constructs the configuration drawn in the paper's
figure, exercises it, and returns a dictionary of observables (channel
counts, coherence outcomes, per-layer traffic) that the corresponding
benchmark prints and the integration tests assert on.
"""

from __future__ import annotations

from typing import Dict, List

from repro.fs.cfs import start_cfs
from repro.fs.coherency import CoherencyLayer
from repro.fs.compfs import CompFs, pack_compressed
from repro.fs.dfs import DfsLayer, export_dfs, mount_remote
from repro.fs.disk_layer import DiskLayer
from repro.fs.fs_interfaces import Fs, StackableFs, StackableFsCreator
from repro.fs.mirrorfs import MirrorFs
from repro.fs.sfs import create_sfs
from repro.fs.stack import describe_stack, domains_of, stack_depth
from repro.ipc.domain import Credentials
from repro.ipc.narrow import narrow
from repro.naming.context import NamingContext
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE, AccessRights
from repro.vm.cache_object import CacheObject, FsCache
from repro.vm.memory_object import MemoryObject
from repro.vm.pager_object import FsPager, PagerObject

from repro.fs.file import File


def fig01_node_structure() -> Dict[str, object]:
    """Figure 1: major system components of a Spring node."""
    from repro.fs.creators import register_standard_creators
    from repro.world import World

    world = World()
    node = world.create_node("spring-node")
    register_standard_creators(node)
    device = BlockDevice(node.nucleus, "sd0", 4096)
    create_sfs(node, device)
    return {
        "node": node.name,
        "domains": sorted(node.domains),
        "vmm_in_nucleus": node.vmm.domain is node.nucleus,
        "root_contexts": [name for name, _ in node.root_context.list_bindings()],
        "fs_creators": [
            name for name, _ in node.fs_creators.list_bindings()
        ],
    }


def fig02_pager_cache_channels() -> Dict[str, object]:
    """Figure 2: pager-cache object topology.

    Pager 1 serves two distinct memory objects cached by VMM 1 (two
    channels); Pager 2 serves one memory object cached at both VMM 1 and
    VMM 2 (one channel per VMM).
    """
    from repro.world import World

    world = World()
    node1 = world.create_node("node1")
    node2 = world.create_node("node2")

    # Pager 1: an SFS on node1; two files mapped by node1's VMM.
    device1 = BlockDevice(node1.nucleus, "sd0", 4096)
    stack1 = create_sfs(node1, device1, name="sfs1")
    user1 = world.create_user_domain(node1, "user1")
    with user1.activate():
        file_a = stack1.top.create_file("a.dat")
        file_a.write(0, b"a" * PAGE_SIZE)
        file_b = stack1.top.create_file("b.dat")
        file_b.write(0, b"b" * PAGE_SIZE)
        aspace1 = node1.vmm.create_address_space("user1")
        aspace1.map(file_a, AccessRights.READ_ONLY).read(0, 16)
        aspace1.map(file_b, AccessRights.READ_ONLY).read(0, 16)

    # Pager 2: a DFS (serving binds itself) on node1; one file mapped by
    # both VMMs.
    device2 = BlockDevice(node1.nucleus, "sd1", 4096)
    stack2 = create_sfs(node1, device2, name="sfs2")
    dfs_domain = node1.create_domain("dfs", Credentials("dfs", privileged=True))
    dfs = DfsLayer(dfs_domain, forward_local_binds=False)
    dfs.stack_on(stack2.top)
    with user1.activate():
        shared = dfs.create_file("shared.dat")
        shared.write(0, b"s" * PAGE_SIZE)
        aspace1.map(shared, AccessRights.READ_ONLY).read(0, 16)
    user2 = world.create_user_domain(node2, "user2")
    with user2.activate():
        shared_remote = dfs.resolve("shared.dat")
        aspace2 = node2.vmm.create_address_space("user2")
        aspace2.map(shared_remote, AccessRights.READ_ONLY).read(0, 16)

    pager1_channels = len(stack1.coherency_layer.channels)
    pager2_channels = len(dfs.channels)
    return {
        "pager1_channels_to_vmm1": pager1_channels,
        "pager2_channels": pager2_channels,
        "vmm1_caches": len(node1.vmm.live_caches()),
        "vmm2_caches": len(node2.vmm.live_caches()),
        "expected": "pager1: 2 channels; pager2: 2 channels (one per VMM)",
    }


def fig03_configuration() -> Dict[str, object]:
    """Figure 3: implementation vs administrative decisions — fs3
    (compression) on fs1; fs4 (mirroring) on fs1 and fs2."""
    from repro.world import World

    world = World()
    node = world.create_node("node")
    device1 = BlockDevice(node.nucleus, "sd0", 4096)
    device2 = BlockDevice(node.nucleus, "sd1", 4096)
    fs1 = create_sfs(node, device1, name="fs1").top
    fs2 = create_sfs(node, device2, name="fs2").top

    fs3_domain = node.create_domain("fs3", Credentials("fs3", privileged=True))
    fs3 = CompFs(fs3_domain)
    fs3.stack_on(fs1)
    node.fs_context.bind("fs3", fs3)

    fs4_domain = node.create_domain("fs4", Credentials("fs4", privileged=True))
    fs4 = MirrorFs(fs4_domain)
    fs4.stack_on(fs1)
    fs4.stack_on(fs2)
    node.fs_context.bind("fs4", fs4)

    user = world.create_user_domain(node)
    with user.activate():
        mirrored = fs4.create_file("replicated.dat")
        mirrored.write(0, b"important data")
        replica1 = fs1.resolve("replicated.dat").read(0, 14)
        replica2 = fs2.resolve("replicated.dat").read(0, 14)
    return {
        "fs3_unders": [f.fs_type() for f in fs3.under_layers()],
        "fs4_unders": [f.fs_type() for f in fs4.under_layers()],
        "fs4_depth": stack_depth(fs4),
        "replicas_match": replica1 == replica2 == b"important data",
        "exported": [name for name, _ in node.fs_context.list_bindings()],
        "diagram": describe_stack(fs4),
    }


def fig04_dual_role() -> Dict[str, object]:
    """Figure 4: one file server as pager (to the VMM) and cache manager
    (to another pager) at the same time."""
    from repro.world import World

    world = World()
    node = world.create_node("node")
    device = BlockDevice(node.nucleus, "sd0", 4096)
    stack = create_sfs(node, device)
    coherency = stack.coherency_layer
    user = world.create_user_domain(node)
    with user.activate():
        f = stack.top.create_file("x.dat")
        f.write(0, b"x" * PAGE_SIZE)
        aspace = node.vmm.create_address_space("user")
        aspace.map(f, AccessRights.READ_ONLY).read(0, 8)
    state = next(iter(coherency._states.values()))
    up = coherency.channels.all_channels()
    down = state.down_channel
    return {
        "acts_as_pager_to_vmm": len(up) == 1
        and isinstance(up[0].pager_object, PagerObject),
        "acts_as_cache_manager_below": down is not None
        and isinstance(down.cache_object, CacheObject),
        "up_cache_is_plain_cache": narrow(up[0].cache_object, FsCache) is None,
        "down_pager_is_fs_pager": narrow(down.pager_object, FsPager) is not None,
    }


def _compfs_scenario(coherent: bool) -> Dict[str, object]:
    """Shared machinery for Figures 5 and 6: COMPFS over SFS with both a
    COMPFS client and a direct SFS client of the same underlying file."""
    from repro.world import World

    world = World()
    node = world.create_node("node")
    device = BlockDevice(node.nucleus, "sd0", 8192)
    stack = create_sfs(node, device)
    compfs_domain = node.create_domain("compfs", Credentials("compfs", True))
    compfs = CompFs(compfs_domain, coherent=coherent)
    compfs.stack_on(stack.top)
    node.fs_context.bind("compfs", compfs)

    user = world.create_user_domain(node)
    observations: Dict[str, object] = {"coherent_mode": coherent}
    with user.activate():
        f_comp = compfs.create_file("doc.dat")
        original = b"original content " * 200
        f_comp.write(0, original)
        f_comp.sync()
        stored = stack.top.resolve("doc.dat")
        observations["stored_bytes"] = stored.get_length()
        observations["plain_bytes"] = len(original)
        observations["stored_is_compressed"] = stored.read(0, 4) == b"CZ01"

        # Prime COMPFS's plaintext cache.
        f_comp2 = compfs.resolve("doc.dat")
        f_comp2.read(0, 16)

        # Direct write to file_SFS (a new compressed image).
        replacement = b"replaced by a direct SFS client " * 20
        image = pack_compressed(replacement)
        direct = stack.top.resolve("doc.dat")
        direct.set_length(len(image))
        direct.write(0, image)

        # Does COMPFS observe it?
        seen = compfs.resolve("doc.dat").read(0, len(replacement))
        observations["compfs_sees_direct_write"] = seen == replacement
        # Coherency actions the lower layer performed against COMPFS's
        # C3 cache: block flush/invalidate plus attribute invalidation.
        observations["flush_events_at_compfs"] = (
            world.counters.get("compfs.flush_back")
            + world.counters.get("compfs.delete_range")
            + world.counters.get("compfs.invalidate_attributes")
        )
    return observations


def fig05_compfs_case1() -> Dict[str, object]:
    """Figure 5: COMPFS without the C3-P3 connection — mappings of
    file_COMP and file_SFS are NOT coherent."""
    return _compfs_scenario(coherent=False)


def fig06_compfs_case2() -> Dict[str, object]:
    """Figure 6: COMPFS as cache manager to SFS — all views coherent."""
    return _compfs_scenario(coherent=True)


def fig07_dfs() -> Dict[str, object]:
    """Figure 7: DFS on SFS; local binds forwarded, remote traffic
    coherent with local access."""
    from repro.world import World

    world = World()
    server = world.create_node("server")
    client = world.create_node("client")
    device = BlockDevice(server.nucleus, "sd0", 8192)
    stack = create_sfs(server, device)
    dfs = export_dfs(server, stack.top)
    mount_remote(client, server, "dfs")

    server_user = world.create_user_domain(server, "server-user")
    client_user = world.create_user_domain(client, "client-user")
    with server_user.activate():
        f = dfs.create_file("shared.dat")
        f.write(0, b"server view " * 400)

        # Local client maps file_DFS: the bind must be forwarded so the
        # local VMM's channel goes to SFS (coherency layer), not to DFS.
        aspace = server.vmm.create_address_space("server-user")
        local_file = dfs.resolve("shared.dat")
        mapping = aspace.map(local_file, AccessRights.READ_WRITE)
        mapping.read(0, 12)
    forwarded = world.counters.get("dfs.bind_forwarded")
    local_channel_pager = mapping.cache.channel.pager_object

    with client_user.activate():
        remote_file = client.fs_context.resolve("dfs@server").resolve("shared.dat")
        remote_aspace = client.vmm.create_address_space("client-user")
        remote_mapping = remote_aspace.map(remote_file, AccessRights.READ_WRITE)
        # read_copy: the value is compared after the write below, and a
        # plain mapped read is a live view of the page it's about to dirty.
        before = remote_mapping.read_copy(0, 12)
        remote_mapping.write(0, b"CLIENT WRITE")

    # Local mapping must now observe the remote write (recalled through
    # DFS's P2-C2 channel and the remote channel fan-out).
    with server_user.activate():
        after_local = mapping.read(0, 12)

    return {
        "binds_forwarded": forwarded,
        "local_channel_bypasses_dfs": isinstance(
            local_channel_pager, PagerObject
        )
        and "coh" in local_channel_pager.layer.fs_type(),
        "remote_read_matches": before == b"server view ",
        "local_sees_remote_write": after_local == b"CLIENT WRITE",
        "network_messages": world.network.messages,
        "dfs_served_binds": world.counters.get("dfs.bind_served"),
    }


def fig08_interface_hierarchy() -> Dict[str, object]:
    """Figure 8: fs + naming_context -> stackable_fs; creator returns
    stackable_fs; narrowing behaves as sec. 4.3 describes."""
    from repro.world import World

    world = World()
    node = world.create_node("node")
    device = BlockDevice(node.nucleus, "sd0", 4096)
    stack = create_sfs(node, device)
    user = world.create_user_domain(node)
    with user.activate():
        f = stack.top.create_file("t.dat")
        f.write(0, b"t" * PAGE_SIZE)
        aspace = node.vmm.create_address_space("u")
        mapping = aspace.map(f, AccessRights.READ_ONLY)
        mapping.read(0, 8)  # fault once so both channel directions exist

    coherency = stack.coherency_layer
    state = next(iter(coherency._states.values()))
    up_channel = coherency.channels.all_channels()[0]
    return {
        "stackable_fs_is_fs": isinstance(coherency, Fs),
        "stackable_fs_is_naming_context": isinstance(coherency, NamingContext),
        "file_is_memory_object": isinstance(f, MemoryObject),
        # The VMM is a *plain* cache manager: SFS's attempt to narrow its
        # cache object to fs_cache must fail (paper sec. 4.3).
        "vmm_cache_is_plain_cache": narrow(up_channel.cache_object, FsCache)
        is None,
        "disk_pager_narrows_to_fs_pager": narrow(
            state.down_channel.pager_object, FsPager
        )
        is not None,
        "coherency_cache_obj_is_fs_cache": narrow(
            state.down_channel.cache_object, FsCache
        )
        is not None,
    }


def fig09_full_stack() -> Dict[str, object]:
    """Figure 9 + sec. 4.5: DFS stacked on COMPFS stacked on SFS; a
    remote read flows DFS -> COMPFS -> SFS -> disk, decompressing on the
    way, with every view coherent."""
    from repro.fs.creators import (
        LayerSpec,
        build_stack,
        register_standard_creators,
    )
    from repro.world import World

    world = World()
    server = world.create_node("server")
    client = world.create_node("client")
    register_standard_creators(server)
    device = BlockDevice(server.nucleus, "sd0", 8192)
    sfs = create_sfs(server, device)

    layers = build_stack(
        server,
        sfs.top,
        [LayerSpec("compfs", {"coherent": True}), LayerSpec("dfs")],
        export_as="stacked",
        export_all=True,
    )
    compfs, dfs = layers
    mount_remote(client, server, "stacked")

    server_user = world.create_user_domain(server, "server-user")
    client_user = world.create_user_domain(client, "client-user")
    payload = b"distributed compressed data " * 300
    with server_user.activate():
        f = dfs.create_file("big.dat")
        f.write(0, payload)
        f.sync()

    counters_before = world.counters.snapshot()
    with client_user.activate():
        remote = client.fs_context.resolve("stacked@server")
        rf = remote.resolve("big.dat")
        data = rf.read(0, len(payload))
    traffic = world.counters.delta_since(counters_before)

    with server_user.activate():
        stored = sfs.top.resolve("big.dat")
        stored_len = stored.get_length()

    return {
        "remote_read_correct": data == payload,
        "plain_bytes": len(payload),
        "stored_bytes": stored_len,
        "layer_order": describe_stack(dfs),
        "depth": stack_depth(dfs),
        "remote_read_traffic": {
            k: v
            for k, v in traffic.items()
            if k.startswith(
                ("dfs.", "compfs.", "coherency.", "disk.", "invoke.", "op.")
            )
        },
        "network_messages": world.network.messages,
    }


def fig10_sfs_structure() -> Dict[str, object]:
    """Figure 10: Spring SFS = coherency layer over disk layer, each in
    its own domain; all files exported via the coherency layer."""
    from repro.world import World

    world = World()
    node = world.create_node("node")
    device = BlockDevice(node.nucleus, "sd0", 4096)
    stack = create_sfs(node, device, placement="two_domains")
    exported = node.fs_context.resolve("sfs")
    return {
        "layers": [layer.fs_type() for layer in [stack.coherency_layer, stack.disk_layer]],
        "domains": domains_of(stack.top),
        "separate_domains": stack.disk_layer.domain is not stack.coherency_layer.domain,
        "exported_is_coherency_layer": exported is stack.coherency_layer,
        "diagram": describe_stack(stack.top),
    }
