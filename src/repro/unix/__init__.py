"""POSIX-style facade over Spring stacks (paper sec. 3.1's UNIX support)."""

from repro.unix.posixlike import (
    O_APPEND,
    O_CREAT,
    O_RDONLY,
    O_RDWR,
    O_TRUNC,
    O_WRONLY,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    Posix,
)

__all__ = [
    "O_APPEND", "O_CREAT", "O_RDONLY", "O_RDWR", "O_TRUNC", "O_WRONLY",
    "SEEK_CUR", "SEEK_END", "SEEK_SET", "Posix",
]
