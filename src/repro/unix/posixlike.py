"""POSIX-style facade over a Spring file system stack.

Spring runs UNIX binaries through an emulation layer (paper sec. 3.1,
citing [11]); this module is the equivalent surface for examples,
benchmarks, and tests: ``open/read/write/lseek/close/stat`` over any
naming context that exports files — which, by the stacking architecture,
means over *any* stack.

All calls execute on behalf of the facade's client domain, so the
benchmarks' invocation accounting is identical whether a workload uses
the facade or raw objects.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.errors import (
    FileNotFoundError_,
    FsError,
    NameNotFoundError,
    SpringError,
    UnixError,
)
from repro.ipc.domain import Domain
from repro.ipc.narrow import narrow
from repro.naming.context import NamingContext
from repro.types import AccessRights

from repro.fs.attributes import FileAttributes
from repro.fs.file import File

# Open flags (values mirror the classic octal constants).
O_RDONLY = 0o0
O_WRONLY = 0o1
O_RDWR = 0o2
O_CREAT = 0o100
O_TRUNC = 0o1000
O_APPEND = 0o2000

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2


@dataclasses.dataclass
class OpenFile:
    file: File
    flags: int
    position: int = 0

    @property
    def readable(self) -> bool:
        return (self.flags & 0o3) in (O_RDONLY, O_RDWR)

    @property
    def writable(self) -> bool:
        return (self.flags & 0o3) in (O_WRONLY, O_RDWR)


class Posix:
    """One process's UNIX-like view of a file system tree."""

    def __init__(self, root: NamingContext, domain: Domain) -> None:
        self.root = root
        self.domain = domain
        self._fds: Dict[int, OpenFile] = {}
        self._next_fd = 3  # leave 0-2 for the traditional trio

    # ------------------------------------------------------------ resolution
    def _split_parent(self, path: str):
        path = path.strip("/")
        if not path:
            raise UnixError("EINVAL", "empty path")
        if "/" in path:
            parent_path, leaf = path.rsplit("/", 1)
            parent = self.root.resolve(parent_path)
        else:
            parent, leaf = self.root, path
        context = narrow(parent, NamingContext)
        if context is None:
            raise UnixError("ENOTDIR", path)
        return context, leaf

    def _resolve_file(self, path: str) -> File:
        try:
            obj = self.root.resolve(path.strip("/"))
        except (NameNotFoundError, FileNotFoundError_):
            raise UnixError("ENOENT", path)
        f = narrow(obj, File)
        if f is None:
            raise UnixError("EISDIR", path)
        return f

    # ------------------------------------------------------------- syscalls
    def open(self, path: str, flags: int = O_RDONLY) -> int:
        with self.domain.activate():
            try:
                f = self._resolve_file(path)
            except UnixError as exc:
                if exc.code != "ENOENT" or not flags & O_CREAT:
                    raise
                context, leaf = self._split_parent(path)
                try:
                    f = context.create_file(leaf)
                except AttributeError:
                    raise UnixError("EROFS", f"{path}: context cannot create files")
            access = (
                AccessRights.READ_WRITE
                if (flags & 0o3) in (O_WRONLY, O_RDWR)
                else AccessRights.READ_ONLY
            )
            f.check_access(access)
            if flags & O_TRUNC and (flags & 0o3) != O_RDONLY:
                f.set_length(0)
            entry = OpenFile(f, flags)
            if flags & O_APPEND:
                entry.position = f.get_length()
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = entry
        return fd

    def _entry(self, fd: int) -> OpenFile:
        try:
            return self._fds[fd]
        except KeyError:
            raise UnixError("EBADF", str(fd))

    def read(self, fd: int, size: int) -> bytes:
        entry = self._entry(fd)
        if not entry.readable:
            raise UnixError("EBADF", "fd not open for reading")
        with self.domain.activate():
            data = entry.file.read(entry.position, size)
        entry.position += len(data)
        return data

    def write(self, fd: int, data: bytes) -> int:
        entry = self._entry(fd)
        if not entry.writable:
            raise UnixError("EBADF", "fd not open for writing")
        with self.domain.activate():
            if entry.flags & O_APPEND:
                entry.position = entry.file.get_length()
            written = entry.file.write(entry.position, data)
        entry.position += written
        return written

    def pread(self, fd: int, size: int, offset: int) -> bytes:
        entry = self._entry(fd)
        if not entry.readable:
            raise UnixError("EBADF", "fd not open for reading")
        with self.domain.activate():
            return entry.file.read(offset, size)

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        entry = self._entry(fd)
        if not entry.writable:
            raise UnixError("EBADF", "fd not open for writing")
        with self.domain.activate():
            return entry.file.write(offset, data)

    def lseek(self, fd: int, offset: int, whence: int = SEEK_SET) -> int:
        entry = self._entry(fd)
        if whence == SEEK_SET:
            new = offset
        elif whence == SEEK_CUR:
            new = entry.position + offset
        elif whence == SEEK_END:
            with self.domain.activate():
                new = entry.file.get_length() + offset
        else:
            raise UnixError("EINVAL", f"whence {whence}")
        if new < 0:
            raise UnixError("EINVAL", "negative seek")
        entry.position = new
        return new

    def fstat(self, fd: int) -> FileAttributes:
        entry = self._entry(fd)
        with self.domain.activate():
            return entry.file.get_attributes()

    def stat(self, path: str) -> FileAttributes:
        with self.domain.activate():
            return self._resolve_file(path).get_attributes()

    def ftruncate(self, fd: int, length: int) -> None:
        entry = self._entry(fd)
        if not entry.writable:
            raise UnixError("EBADF", "fd not open for writing")
        with self.domain.activate():
            entry.file.set_length(length)

    def fsync(self, fd: int) -> None:
        entry = self._entry(fd)
        with self.domain.activate():
            entry.file.sync()

    def close(self, fd: int) -> None:
        self._entry(fd)
        del self._fds[fd]

    # ------------------------------------------------------- directory calls
    def mkdir(self, path: str):
        with self.domain.activate():
            context, leaf = self._split_parent(path)
            try:
                return context.create_dir(leaf)
            except AttributeError:
                raise UnixError("EROFS", f"{path}: context cannot create dirs")

    def unlink(self, path: str) -> None:
        with self.domain.activate():
            context, leaf = self._split_parent(path)
            try:
                context.unbind(leaf)
            except (NameNotFoundError, FileNotFoundError_):
                raise UnixError("ENOENT", path)

    def listdir(self, path: str = "") -> List[str]:
        with self.domain.activate():
            if path.strip("/"):
                obj = self.root.resolve(path.strip("/"))
            else:
                obj = self.root
            context = narrow(obj, NamingContext)
            if context is None:
                raise UnixError("ENOTDIR", path)
            return [name for name, _ in context.list_bindings()]

    def rename(self, old: str, new: str) -> None:
        with self.domain.activate():
            old_context, old_leaf = self._split_parent(old)
            new_context, new_leaf = self._split_parent(new)
            if old_context is not new_context:
                raise UnixError("EXDEV", "cross-directory rename unsupported here")
            try:
                old_context.rename(old_leaf, new_leaf)
            except AttributeError:
                raise UnixError("EROFS", "context cannot rename")
            except (NameNotFoundError, FileNotFoundError_):
                raise UnixError("ENOENT", old)

    def open_fds(self) -> int:
        return len(self._fds)
