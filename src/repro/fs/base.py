"""Common machinery for stackable file system layers.

Every layer needs the same plumbing the paper describes once and uses
everywhere:

* the pager-side bind handshake with channel reuse (sec. 3.3.2),
  via :class:`repro.vm.pager_base.ChannelRegistry`;
* a pager object per (file, cache manager) channel that exports the
  ``fs_pager`` interface and delegates to the layer
  (:class:`LayerPagerObject`);
* for layers that also act as cache managers to a lower layer, an
  ``fs_cache`` object per downstream channel (:class:`LayerFsCache`) and
  the ``accept_channel`` side of the handshake;
* ``stack_on`` bookkeeping with type/narrowing checks (sec. 4.4).

Concrete layers (disk, coherency, COMPFS, DFS, ...) subclass
:class:`BaseLayer` and implement the ``_pager_*`` / ``_cache_*`` hooks.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.errors import StackingError
from repro.ipc.invocation import operation
from repro.ipc.narrow import narrow
from repro.types import AccessRights
from repro.vm.cache_object import FsCache
from repro.vm.channel import BindResult, CacheRights, Channel
from repro.vm.memory_object import CacheManager
from repro.vm.pager_object import FsPager, PagerObject
from repro.vm.pager_base import ChannelRegistry

from repro.fs.attributes import FileAttributes
from repro.fs.fs_interfaces import StackableFs


class LayerPagerObject(FsPager):
    """The pager's end of a channel, delegating to the owning layer.

    One exists per (source file, cache manager) channel; ``source_key``
    identifies the file inside the layer.
    """

    def __init__(self, domain, layer: "BaseLayer", source_key: Hashable) -> None:
        super().__init__(domain)
        self.layer = layer
        self.source_key = source_key

    @operation
    def page_in(self, offset: int, size: int, access: AccessRights) -> bytes:
        self.world.counters.inc(f"{self.layer.fs_type()}.page_in")
        return self.layer._pager_page_in(self.source_key, self, offset, size, access)

    @operation
    def page_in_range(
        self, offset: int, min_size: int, max_size: int, access: AccessRights
    ) -> bytes:
        self.world.counters.inc(f"{self.layer.fs_type()}.page_in_range")
        return self.layer._pager_page_in_range(
            self.source_key, self, offset, min_size, max_size, access
        )

    @operation
    def page_out(self, offset: int, size: int, data: bytes) -> None:
        self.world.counters.inc(f"{self.layer.fs_type()}.page_out")
        self.layer._pager_page_out(self.source_key, self, offset, size, data, retain=None)

    @operation
    def write_out(self, offset: int, size: int, data: bytes) -> None:
        self.world.counters.inc(f"{self.layer.fs_type()}.write_out")
        self.layer._pager_page_out(
            self.source_key, self, offset, size, data, retain=AccessRights.READ_ONLY
        )

    @operation
    def sync(self, offset: int, size: int, data: bytes) -> None:
        self.world.counters.inc(f"{self.layer.fs_type()}.sync_op")
        self.layer._pager_page_out(
            self.source_key, self, offset, size, data, retain=AccessRights.READ_WRITE
        )

    @operation
    def page_out_range(self, offset: int, size: int, data: bytes) -> None:
        self.world.counters.inc(f"{self.layer.fs_type()}.page_out_range")
        self.layer._pager_page_out_range(
            self.source_key, self, offset, size, data, retain=None
        )

    @operation
    def write_out_range(self, offset: int, size: int, data: bytes) -> None:
        self.world.counters.inc(f"{self.layer.fs_type()}.write_out_range")
        self.layer._pager_page_out_range(
            self.source_key, self, offset, size, data, retain=AccessRights.READ_ONLY
        )

    @operation
    def sync_range(self, offset: int, size: int, data: bytes) -> None:
        self.world.counters.inc(f"{self.layer.fs_type()}.sync_range")
        self.layer._pager_page_out_range(
            self.source_key, self, offset, size, data, retain=AccessRights.READ_WRITE
        )

    @operation
    def done_with_pager_object(self) -> None:
        self.layer._pager_done(self.source_key, self)
        self.revoke()

    @operation
    def attr_page_in(self) -> FileAttributes:
        self.world.counters.inc(f"{self.layer.fs_type()}.attr_page_in")
        return self.layer._pager_attr_page_in(self.source_key, self)

    @operation
    def attr_write_out(self, attrs: FileAttributes) -> None:
        self.world.counters.inc(f"{self.layer.fs_type()}.attr_write_out")
        self.layer._pager_attr_write_out(self.source_key, self, attrs)


class LayerFsCache(FsCache):
    """A layer's cache-manager end of its *downstream* channel.

    The lower pager invokes these to perform coherency actions against
    this layer's cached state for one file (``state`` is the layer's
    per-file record).
    """

    def __init__(self, domain, layer: "BaseLayer", state: Any) -> None:
        super().__init__(domain)
        self.layer = layer
        self.state = state

    @operation
    def flush_back(self, offset: int, size: int) -> Dict[int, bytes]:
        self.world.counters.inc(f"{self.layer.fs_type()}.flush_back")
        return self.layer._cache_flush_back(self.state, offset, size)

    @operation
    def deny_writes(self, offset: int, size: int) -> Dict[int, bytes]:
        self.world.counters.inc(f"{self.layer.fs_type()}.deny_writes")
        return self.layer._cache_deny_writes(self.state, offset, size)

    @operation
    def write_back(self, offset: int, size: int) -> Dict[int, bytes]:
        self.world.counters.inc(f"{self.layer.fs_type()}.write_back")
        return self.layer._cache_write_back(self.state, offset, size)

    @operation
    def delete_range(self, offset: int, size: int) -> None:
        self.world.counters.inc(f"{self.layer.fs_type()}.delete_range")
        self.layer._cache_delete_range(self.state, offset, size)

    @operation
    def zero_fill(self, offset: int, size: int) -> None:
        self.layer._cache_zero_fill(self.state, offset, size)

    @operation
    def populate(
        self, offset: int, size: int, access: AccessRights, data: bytes
    ) -> None:
        self.layer._cache_populate(self.state, offset, size, access, data)

    @operation
    def destroy_cache(self) -> None:
        self.layer._cache_destroy(self.state)

    @operation
    def invalidate_attributes(self) -> None:
        self.world.counters.inc(f"{self.layer.fs_type()}.invalidate_attributes")
        self.layer._cache_invalidate_attributes(self.state)

    @operation
    def write_back_attributes(self) -> Optional[FileAttributes]:
        return self.layer._cache_write_back_attributes(self.state)


class BaseLayer(StackableFs, CacheManager, abc.ABC):
    """Shared implementation base for every file system layer."""

    #: How many file systems this layer type may be stacked on.
    max_under = 1

    def __init__(self, domain) -> None:
        super().__init__(domain)
        self._under: List[StackableFs] = []
        #: Pager side: channels where *we* are the pager.
        self.channels = ChannelRegistry()
        #: Cache-manager side: downstream channels keyed by rights oid.
        self._down_channels_by_rights: Dict[int, Channel] = {}
        self._pending_bind_state: Any = None

    # ------------------------------------------------------------- stacking
    @operation
    def stack_on(self, underlying: StackableFs) -> None:
        if narrow(underlying, StackableFs) is None:
            raise StackingError(
                f"{type(underlying).__name__} is not a stackable_fs"
            )
        if len(self._under) >= self.max_under:
            raise StackingError(
                f"{self.fs_type()} stacks on at most {self.max_under} "
                f"file system(s)"
            )
        self._under.append(underlying)
        self._on_stacked(underlying)

    def _on_stacked(self, underlying: StackableFs) -> None:
        """Hook: called after each successful stack_on."""

    @operation
    def under_layers(self) -> List[StackableFs]:
        return list(self._under)

    @property
    def under(self) -> StackableFs:
        """The single underlying layer (raises if not stacked yet)."""
        if not self._under:
            raise StackingError(f"{self.fs_type()} is not stacked on anything")
        return self._under[0]

    # ---------------------------------------------------- pager-side binding
    def bind_source(
        self,
        source_key: Hashable,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        label: str,
    ) -> BindResult:
        """Implements ``bind`` for one of this layer's files: find or
        create the channel for (file, cache manager) and hand back its
        cache-rights object."""
        self.world.charge.bind()
        channel, created = self.channels.get_or_create(
            source_key,
            cache_manager,
            lambda: self._make_pager_object(source_key),
            label,
        )
        if created:
            self.world.counters.inc(f"{self.fs_type()}.channel_created")
            self._on_channel_created(source_key, channel)
        return BindResult(channel.cache_rights, offset)

    def _make_pager_object(self, source_key: Hashable) -> LayerPagerObject:
        return LayerPagerObject(self.domain, self, source_key)

    def _on_channel_created(self, source_key: Hashable, channel: Channel) -> None:
        """Hook: a new upstream channel exists; layers narrow the cache
        object to fs_cache here if they care (paper sec. 4.3)."""

    # ------------------------------------------------- cache-manager side
    @operation
    def accept_channel(self, pager_object: PagerObject, label: str) -> Channel:
        """Complete a downstream bind we initiated: build our fs_cache and
        cache-rights ends for the file state recorded by
        :meth:`bind_below`."""
        state = self._pending_bind_state
        if state is None:
            raise StackingError(
                f"{self.fs_type()}: unsolicited accept_channel for {label!r}"
            )
        cache_object = LayerFsCache(self.domain, self, state)
        rights = CacheRights(self.domain, label)
        channel = Channel(pager_object, cache_object, rights, label)
        rights.channel = channel
        self._down_channels_by_rights[rights.oid] = channel
        return channel

    def bind_below(self, state: Any, under_file, access: AccessRights) -> Channel:
        """Act as a cache manager for ``under_file`` (paper sec. 4.2):
        bind to it, exchanging fs_cache/fs_pager objects, and return the
        downstream channel."""
        self._pending_bind_state = state
        try:
            result = under_file.bind(self, access, 0, under_file.get_length())
        finally:
            self._pending_bind_state = None
        channel = self._down_channels_by_rights.get(result.rights.oid)
        if channel is None:
            raise StackingError(
                f"{self.fs_type()}: bind returned rights we did not issue"
            )
        return channel

    def down_fs_pager(self, channel: Channel) -> Optional[FsPager]:
        """Narrow the downstream pager object to fs_pager; None means the
        lower side is a plain storage pager (paper sec. 4.3)."""
        return narrow(channel.pager_object, FsPager)

    # ------------------------------------------------------------ fs interface
    @operation
    def sync_fs(self) -> None:
        self._sync_impl()
        for under in self._under:
            under.sync_fs()

    def _sync_impl(self) -> None:
        """Hook: flush this layer's own caches."""

    # ------------------------------------------- pager hooks (override)
    def _pager_page_in(
        self, source_key, pager_object, offset: int, size: int, access: AccessRights
    ) -> bytes:
        raise NotImplementedError(f"{self.fs_type()} does not serve pages")

    def _pager_page_in_range(
        self,
        source_key,
        pager_object,
        offset: int,
        min_size: int,
        max_size: int,
        access: AccessRights,
    ) -> bytes:
        """Default: no clustering — serve exactly the minimum."""
        return self._pager_page_in(source_key, pager_object, offset, min_size, access)

    def _pager_page_out(
        self, source_key, pager_object, offset: int, size: int, data: bytes, retain
    ) -> None:
        raise NotImplementedError(f"{self.fs_type()} does not accept pages")

    def _pager_page_out_range(
        self, source_key, pager_object, offset: int, size: int, data: bytes, retain
    ) -> None:
        """Vectored write-back: a contiguous multi-page run arrives in one
        invocation.  The ``_pager_page_out`` hooks all accept arbitrary
        sizes already, so the default forwards the whole run in one call;
        layers with a cheaper vectored path below (the disk layer's
        clustered device writes, DFS's ranged forwarding) override this.
        """
        self._pager_page_out(source_key, pager_object, offset, size, data, retain)

    def _pager_done(self, source_key, pager_object) -> None:
        for channel in self.channels.channels_for(source_key):
            if channel.pager_object is pager_object:
                channel.closed = True
                self.channels.forget(channel)
                self._on_channel_closed(source_key, channel)

    def _on_channel_closed(self, source_key, channel: Channel) -> None:
        """Hook: an upstream channel went away."""

    def _pager_attr_page_in(self, source_key, pager_object) -> FileAttributes:
        raise NotImplementedError(f"{self.fs_type()} does not serve attributes")

    def _pager_attr_write_out(self, source_key, pager_object, attrs) -> None:
        raise NotImplementedError(f"{self.fs_type()} does not accept attributes")

    # ------------------------------------------- cache hooks (override)
    def _cache_flush_back(self, state, offset: int, size: int) -> Dict[int, bytes]:
        raise NotImplementedError

    def _cache_deny_writes(self, state, offset: int, size: int) -> Dict[int, bytes]:
        raise NotImplementedError

    def _cache_write_back(self, state, offset: int, size: int) -> Dict[int, bytes]:
        raise NotImplementedError

    def _cache_delete_range(self, state, offset: int, size: int) -> None:
        raise NotImplementedError

    def _cache_zero_fill(self, state, offset: int, size: int) -> None:
        raise NotImplementedError

    def _cache_populate(
        self, state, offset: int, size: int, access: AccessRights, data: bytes
    ) -> None:
        raise NotImplementedError

    def _cache_destroy(self, state) -> None:
        raise NotImplementedError

    def _cache_invalidate_attributes(self, state) -> None:
        raise NotImplementedError

    def _cache_write_back_attributes(self, state) -> Optional[FileAttributes]:
        return None
