"""The stack runtime shared by every file system layer.

The paper's central claim about stackable file systems is that a layer
implements only the operations it *changes*; everything else flows
through the pager/cache channel unchanged (sec. 4).  This module is that
claim made concrete.  It provides:

* the pager-side bind handshake with channel reuse (sec. 3.3.2), via
  :class:`repro.vm.pager_base.ChannelRegistry`;
* a pager object per (file, cache manager) channel that exports the
  ``fs_pager`` interface (:class:`LayerPagerObject`) and an ``fs_cache``
  object per downstream channel (:class:`LayerFsCache`), both of which
  dispatch every channel operation through the layer's single
  :class:`ChannelOps` table;
* :class:`ChannelOps` — the dispatch spine.  Its defaults implement a
  complete coherent pass-through layer (modelled on DFS's forwarding):
  holder bookkeeping above, ranged forwarding below.  Concrete layers
  subclass it and override only their transform points — COMPFS's
  encode/decode, CRYPTFS's seal/unseal, the coherency layer's recall
  policy;
* :class:`StackConfig` — the per-stack knob bundle (``batch_pageout``,
  ``compound``, ``readahead_pages``) propagated down the stack at
  ``stack_on()`` time, replacing scattered per-layer attributes;
* :class:`LayerRuntime` — uniform telemetry at the dispatch choke-point:
  every dispatched op increments a standardized ``<layer>.<op>`` counter
  (plus ``<layer>.<op>.bytes`` when data moves) and, when tracing is on,
  emits a ``layer`` trace span carrying the layer name, stack depth, and
  range;
* generic per-file state (:class:`LayerFileState`), file/directory
  wrappers (:class:`LayerFile`, :class:`ForwardingFile`,
  :class:`LayerDirectory`) and a generic naming face on
  :class:`BaseLayer`, so a transparent pass-through layer is just a
  ``fs_type`` away (see ``nullfs.py``).
"""

from __future__ import annotations

import abc
import contextlib
import dataclasses
import sys
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.errors import FsError, StackingError
from repro.ipc.compound import compound_region
from repro.ipc.invocation import operation
from repro.ipc.narrow import narrow
from repro.naming.context import NamingContext
from repro.types import PAGE_SIZE, AccessRights
from repro.vm.cache_object import FsCache
from repro.vm.channel import BindResult, CacheRights, Channel
from repro.vm.memory_object import CacheManager
from repro.vm.pager_object import FsPager, PagerObject
from repro.vm.pager_base import ChannelRegistry

from repro.fs.attributes import FileAttributes
from repro.fs.file import File
from repro.fs.fs_interfaces import StackableFs
from repro.fs.holders import make_holder_table

#: Channel operations dispatched through the spine, pager side then
#: cache side.  ``write_out``/``sync`` (and their ranged forms) are the
#: retain-variants of ``page_out``; they share the page_out dispatch
#: entry but are counted under their own wire names.
PAGER_OPS: Tuple[str, ...] = (
    "page_in",
    "page_in_range",
    "page_out",
    "write_out",
    "sync",
    "page_out_range",
    "write_out_range",
    "sync_range",
    "attr_page_in",
    "attr_write_out",
)
CACHE_OPS: Tuple[str, ...] = (
    "flush_back",
    "deny_writes",
    "write_back",
    "delete_range",
    "zero_fill",
    "populate",
    "destroy_cache",
    "invalidate_attributes",
    "write_back_attributes",
)

#: Everything a holder table may cover; "the rest of the file" for
#: invalidations.
WHOLE_FILE = 2**62


def _pages_bytes(pages: Optional[Dict[int, bytes]]) -> int:
    return sum(len(chunk) for chunk in pages.values()) if pages else 0


@dataclasses.dataclass(slots=True)
class StackConfig:
    """Stack-wide tuning knobs, set once per stack.

    Passing ``config=`` to :meth:`BaseLayer.stack_on` propagates a *copy*
    to every layer already below, so a whole stack is configured in one
    place.  Assigning a knob on an individual layer afterwards stays
    local to that layer (benchmarks toggle single layers this way).
    All knobs default off: calibration runs unbatched, uncompounded, and
    without read-ahead.
    """

    #: Coalesce contiguous dirty runs into ranged page-outs on flush.
    batch_pageout: bool = False
    #: Batch per-holder coherency fan-out messages into one round trip
    #: per remote node (see :mod:`repro.ipc.compound`).
    compound: bool = False
    #: Sequential read-ahead window, in pages, for layers that cluster.
    readahead_pages: int = 0

    def copy(self) -> "StackConfig":
        return dataclasses.replace(self)


class LayerRuntime:
    """Per-layer telemetry, applied at the channel dispatch choke-point.

    Every operation dispatched through :class:`LayerPagerObject` /
    :class:`LayerFsCache` calls :meth:`record` exactly once, so the
    ``<layer>.<op>`` counters are a complete census of channel traffic —
    this is what ``report.py``'s per-layer breakdown reads.  Counter keys
    are interned up front; the dispatch path runs on every simulated
    page so it must not rebuild f-strings per call.
    """

    __slots__ = (
        "layer",
        "world",
        "_inc",
        "depth",
        "count_keys",
        "byte_keys",
        "busy_us",
    )

    def __init__(self, layer: "BaseLayer") -> None:
        self.layer = layer
        #: The layer's world and its counter-increment method, resolved
        #: once: record() runs per dispatched op, and the world/counters
        #: objects are fixed for the layer's lifetime.
        self.world = layer.world
        self._inc = self.world.counters.inc
        #: Virtual time this layer spent servicing channel ops,
        #: *exclusive* of time spent inside the layers below it.  Only
        #: accumulated while the world's busy accounting is enabled
        #: (:meth:`repro.world.World.enable_layer_busy_accounting`);
        #: under the discrete-event scheduler, ``busy_us / makespan`` is
        #: the layer's utilization.
        self.busy_us = 0.0
        #: Number of layers below this one in its stack (0 = bottom);
        #: maintained by :meth:`BaseLayer.stack_on`.
        self.depth = 0
        fs = layer.fs_type()
        self.count_keys: Dict[str, str] = {
            op: sys.intern(f"{fs}.{op}") for op in PAGER_OPS + CACHE_OPS
        }
        self.byte_keys: Dict[str, str] = {
            op: sys.intern(f"{fs}.{op}.bytes") for op in PAGER_OPS + CACHE_OPS
        }

    def record(self, op: str, offset: Optional[int] = None, size: int = 0) -> None:
        key = self.count_keys[op]
        self._inc(key)
        if size:
            self._inc(self.byte_keys[op], size)
        world = self.world
        if world.tracer is not None:
            world.trace(
                "layer",
                key,
                layer=self.layer.fs_type(),
                depth=self.depth,
                offset=offset,
                size=size,
            )

    def timed(self, fn, *args, **kwargs):
        """Dispatch ``fn(*args, **kwargs)`` and attribute the virtual
        time it charges to this layer, exclusive of nested dispatches
        into lower layers.  When busy accounting is off (the default)
        this is a tail call with no clock reads — the calibration hot
        path pays one attribute load and one ``is None`` test.

        The exclusive-time bookkeeping works on a world-level stack of
        open dispatch frames ``[start_us, child_us]``: a frame's self
        time is its total elapsed minus the totals its nested frames
        reported into ``child_us``.  Works identically in sequential
        and concurrent mode because it only ever *reads* the clock —
        inside a scheduler frame those reads are frame-local times,
        whose differences are exactly the op's charged time.
        """
        world = self.world
        stack = world.busy_stack
        if stack is None:
            return fn(*args, **kwargs)
        frame = [world.clock.now_us, 0.0]
        stack.append(frame)
        try:
            return fn(*args, **kwargs)
        finally:
            total = world.clock.now_us - frame[0]
            stack.pop()
            self.busy_us += total - frame[1]
            if stack:
                stack[-1][1] += total


class ChannelOps:
    """The dispatch spine: one method per channel operation.

    The defaults implement a *coherent pass-through*: holder bookkeeping
    for the channels above (recalls, write-denials, invalidations fan
    out to upstream caches) and ranged forwarding to the channel below.
    DFS — the paper's remote-forwarding layer — is exactly this table
    with no overrides.

    Layers that transform data (COMPFS, CRYPTFS) or that cache it (the
    coherency layer) override the ops they change and keep the rest.
    Two conveniences keep those overrides small:

    * a layer that overrides :meth:`page_in` / :meth:`page_out` receives
      ranged traffic through the same override (the run is handed to it
      whole) unless it also overrides the ranged op — so a transform
      layer writes one decode and one encode, not four;
    * the cache-side defaults no-op gracefully when the layer keeps no
      holder table (``state.holders is None``).
    """

    #: Register a client as writer when it syncs with READ_WRITE retain.
    #: CRYPTFS turns this off: it writes ciphertext through immediately,
    #: so a syncing holder never needs to be recalled.
    register_writers = True

    def __init__(self, layer: "BaseLayer") -> None:
        self.layer = layer

    # --------------------------------------------------------------- helpers
    def state(self, source_key: Hashable) -> Any:
        return self.layer.state_by_source(source_key)

    def requester(self, source_key: Hashable, pager_object) -> Optional[Channel]:
        """The upstream channel this pager object serves, or None."""
        for channel in self.layer.channels.channels_for(source_key):
            if channel.pager_object is pager_object:
                return channel
        return None

    def region(self):
        """Compound region for a holder fan-out when batching is on."""
        return self.layer.fanout_region()

    def down(self, state) -> PagerObject:
        """The downstream pager object, binding below on first use."""
        self.layer.ensure_down(state)
        return state.down_channel.pager_object

    def data_length(self, state) -> int:
        """File size used to clamp ranged page-ins."""
        return state.under_file.get_length()

    def clamp_window(self, state, offset: int, min_size: int, max_size: int) -> int:
        """The paper's ranged page-in contract: at least ``min_size``
        (the fault), at most ``max_size`` (the window), never past EOF
        except to satisfy the minimum."""
        return max(0, min(max_size, max(min_size, self.data_length(state) - offset)))

    def merge_recovered(self, state, recovered: Dict[int, bytes]) -> None:
        """Dispose of dirty pages recalled from upstream holders.  The
        pass-through pushes them straight below; caching layers install
        them instead."""
        self.layer.push_recovered(state, recovered)

    def writeback_bookkeeping(
        self, state, requester: Optional[Channel], offset: int, size: int, retain
    ) -> None:
        """Holder-table update for an upstream write-back.  ``retain``
        encodes the wire op: None (page_out — caller keeps nothing),
        READ_ONLY (write_out), READ_WRITE (sync — caller stays writer)."""
        if requester is None:
            return
        if retain is None:
            state.holders.forget_range(requester, offset, size)
        elif retain is AccessRights.READ_ONLY:
            state.holders.record(requester, offset, size, AccessRights.READ_ONLY)
        elif self.register_writers:
            recovered = state.holders.acquire(
                requester, offset, size, AccessRights.READ_WRITE
            )
            self.merge_recovered(state, recovered)

    # ----------------------------------------------------------- pager side
    def page_in(self, source_key, pager_object, offset, size, access) -> bytes:
        state = self.state(source_key)
        requester = self.requester(source_key, pager_object)
        with self.region():
            recovered = state.holders.acquire(requester, offset, size, access)
            self.merge_recovered(state, recovered)
        # Fetch below with the client's access mode so the layer below
        # runs its own coherency against its other holders.
        return self.down(state).page_in(offset, size, access)

    def page_in_range(
        self, source_key, pager_object, offset, min_size, max_size, access
    ) -> bytes:
        if type(self).page_in is not ChannelOps.page_in:
            # The layer transforms page-ins; serve the minimum through
            # its override rather than forwarding a range it never sees.
            return self.page_in(source_key, pager_object, offset, min_size, access)
        state = self.state(source_key)
        requester = self.requester(source_key, pager_object)
        size = self.clamp_window(state, offset, min_size, max_size)
        if size == 0:
            return b""
        with self.region():
            recovered = state.holders.acquire(requester, offset, size, access)
            self.merge_recovered(state, recovered)
        return self.down(state).page_in_range(offset, min_size, size, access)

    def page_out(self, source_key, pager_object, offset, size, data, retain) -> None:
        state = self.state(source_key)
        with self.region():
            self.writeback_bookkeeping(
                state, self.requester(source_key, pager_object), offset, size, retain
            )
        self.down(state).page_out(offset, size, data)

    def page_out_range(
        self, source_key, pager_object, offset, size, data, retain
    ) -> None:
        if type(self).page_out is not ChannelOps.page_out:
            # The layer transforms page-outs; hand it the whole run.
            self.page_out(source_key, pager_object, offset, size, data, retain)
            return
        state = self.state(source_key)
        with self.region():
            self.writeback_bookkeeping(
                state, self.requester(source_key, pager_object), offset, size, retain
            )
        # One ranged call below, so batching survives to the disk layer.
        self.down(state).page_out_range(offset, size, data)

    def attr_page_in(self, source_key, pager_object) -> FileAttributes:
        return self.state(source_key).under_file.get_attributes()

    def attr_write_out(self, source_key, pager_object, attrs) -> None:
        state = self.state(source_key)
        self.layer.ensure_down(state)
        pager = self.layer.down_fs_pager(state.down_channel)
        if pager is not None:
            pager.attr_write_out(attrs)

    # ----------------------------------------------------------- cache side
    # Invoked by the layer below; the pass-through holds nothing itself,
    # so every action fans out to the holders above.
    def flush_back(self, state, offset, size) -> Dict[int, bytes]:
        if state.holders is None:
            return {}
        with self.region():
            return state.holders.acquire(None, offset, size, AccessRights.READ_WRITE)

    def deny_writes(self, state, offset, size) -> Dict[int, bytes]:
        if state.holders is None:
            return {}
        with self.region():
            return state.holders.acquire(None, offset, size, AccessRights.READ_ONLY)

    def write_back(self, state, offset, size) -> Dict[int, bytes]:
        if state.holders is None:
            return {}
        with self.region():
            return state.holders.collect_latest(offset, size)

    def delete_range(self, state, offset, size) -> None:
        if state.holders is None:
            return
        with self.region():
            state.holders.invalidate(offset, size)

    def zero_fill(self, state, offset, size) -> None:
        if state.holders is None:
            return
        with self.region():
            state.holders.invalidate(offset, size)

    def populate(self, state, offset, size, access, data) -> None:
        pass  # nothing cached here

    def destroy_cache(self, state) -> None:
        if state.holders is not None:
            state.holders.invalidate(0, WHOLE_FILE)
        state.down_channel = None

    def invalidate_attributes(self, state) -> None:
        # Upstream attribute caches must drop their copies.
        self.layer.invalidate_upstream_attrs(state)

    def write_back_attributes(self, state) -> Optional[FileAttributes]:
        return None


class LayerPagerObject(FsPager):
    """The pager's end of a channel, dispatching into the owning layer's
    :class:`ChannelOps` table.

    One exists per (source file, cache manager) channel; ``source_key``
    identifies the file inside the layer.  The ``@operation`` methods
    here are the single choke-point where invocation costs are charged
    and per-layer telemetry is recorded.
    """

    def __init__(self, domain, layer: "BaseLayer", source_key: Hashable) -> None:
        super().__init__(domain)
        self.layer = layer
        self.source_key = source_key
        # The layer's dispatch table and telemetry runtime are fixed for
        # its lifetime; resolving them at channel setup keeps the per-op
        # hot path to two attribute loads instead of four.
        self.runtime = layer.runtime
        self.ops = layer.ops

    @operation
    def page_in(self, offset: int, size: int, access: AccessRights) -> bytes:
        runtime = self.runtime
        runtime.record("page_in", offset, size)
        return runtime.timed(
            self.ops.page_in, self.source_key, self, offset, size, access
        )

    @operation
    def page_in_range(
        self, offset: int, min_size: int, max_size: int, access: AccessRights
    ) -> bytes:
        runtime = self.runtime
        data = runtime.timed(
            self.ops.page_in_range,
            self.source_key, self, offset, min_size, max_size, access,
        )
        # Recorded after dispatch: the byte count is what actually moved.
        runtime.record("page_in_range", offset, len(data))
        return data

    @operation
    def page_out(self, offset: int, size: int, data: bytes) -> None:
        runtime = self.runtime
        runtime.record("page_out", offset, size)
        runtime.timed(
            self.ops.page_out, self.source_key, self, offset, size, data,
            retain=None,
        )

    @operation
    def write_out(self, offset: int, size: int, data: bytes) -> None:
        runtime = self.runtime
        runtime.record("write_out", offset, size)
        runtime.timed(
            self.ops.page_out, self.source_key, self, offset, size, data,
            retain=AccessRights.READ_ONLY,
        )

    @operation
    def sync(self, offset: int, size: int, data: bytes) -> None:
        runtime = self.runtime
        runtime.record("sync", offset, size)
        runtime.timed(
            self.ops.page_out, self.source_key, self, offset, size, data,
            retain=AccessRights.READ_WRITE,
        )

    @operation
    def page_out_range(self, offset: int, size: int, data: bytes) -> None:
        runtime = self.runtime
        runtime.record("page_out_range", offset, size)
        runtime.timed(
            self.ops.page_out_range, self.source_key, self, offset, size,
            data, retain=None,
        )

    @operation
    def write_out_range(self, offset: int, size: int, data: bytes) -> None:
        runtime = self.runtime
        runtime.record("write_out_range", offset, size)
        runtime.timed(
            self.ops.page_out_range, self.source_key, self, offset, size,
            data, retain=AccessRights.READ_ONLY,
        )

    @operation
    def sync_range(self, offset: int, size: int, data: bytes) -> None:
        runtime = self.runtime
        runtime.record("sync_range", offset, size)
        runtime.timed(
            self.ops.page_out_range, self.source_key, self, offset, size,
            data, retain=AccessRights.READ_WRITE,
        )

    @operation
    def done_with_pager_object(self) -> None:
        self.layer._channel_done(self.source_key, self)
        self.revoke()

    @operation
    def attr_page_in(self) -> FileAttributes:
        runtime = self.runtime
        runtime.record("attr_page_in")
        return runtime.timed(self.ops.attr_page_in, self.source_key, self)

    @operation
    def attr_write_out(self, attrs: FileAttributes) -> None:
        runtime = self.runtime
        runtime.record("attr_write_out")
        runtime.timed(self.ops.attr_write_out, self.source_key, self, attrs)


class LayerFsCache(FsCache):
    """A layer's cache-manager end of its *downstream* channel.

    The lower pager invokes these to perform coherency actions against
    this layer's cached state for one file (``state`` is the layer's
    per-file record).  Like the pager side, every call dispatches into
    the layer's :class:`ChannelOps` table after recording telemetry.
    """

    def __init__(self, domain, layer: "BaseLayer", state: Any) -> None:
        super().__init__(domain)
        self.layer = layer
        self.state = state
        self.runtime = layer.runtime
        self.ops = layer.ops

    @operation
    def flush_back(self, offset: int, size: int) -> Dict[int, bytes]:
        runtime = self.runtime
        pages = runtime.timed(self.ops.flush_back, self.state, offset, size)
        runtime.record("flush_back", offset, _pages_bytes(pages))
        return pages

    @operation
    def deny_writes(self, offset: int, size: int) -> Dict[int, bytes]:
        runtime = self.runtime
        pages = runtime.timed(self.ops.deny_writes, self.state, offset, size)
        runtime.record("deny_writes", offset, _pages_bytes(pages))
        return pages

    @operation
    def write_back(self, offset: int, size: int) -> Dict[int, bytes]:
        runtime = self.runtime
        pages = runtime.timed(self.ops.write_back, self.state, offset, size)
        runtime.record("write_back", offset, _pages_bytes(pages))
        return pages

    @operation
    def delete_range(self, offset: int, size: int) -> None:
        runtime = self.runtime
        runtime.record("delete_range", offset, size)
        runtime.timed(self.ops.delete_range, self.state, offset, size)

    @operation
    def zero_fill(self, offset: int, size: int) -> None:
        runtime = self.runtime
        runtime.record("zero_fill", offset, size)
        runtime.timed(self.ops.zero_fill, self.state, offset, size)

    @operation
    def populate(
        self, offset: int, size: int, access: AccessRights, data: bytes
    ) -> None:
        runtime = self.runtime
        runtime.record("populate", offset, size)
        runtime.timed(
            self.ops.populate, self.state, offset, size, access, data
        )

    @operation
    def destroy_cache(self) -> None:
        runtime = self.runtime
        runtime.record("destroy_cache")
        runtime.timed(self.ops.destroy_cache, self.state)

    @operation
    def invalidate_attributes(self) -> None:
        runtime = self.runtime
        runtime.record("invalidate_attributes")
        runtime.timed(self.ops.invalidate_attributes, self.state)

    @operation
    def write_back_attributes(self) -> Optional[FileAttributes]:
        runtime = self.runtime
        runtime.record("write_back_attributes")
        return runtime.timed(self.ops.write_back_attributes, self.state)

    @operation
    def held_blocks(self) -> Optional[Dict[int, Tuple[bool, bool]]]:
        """Re-declare this layer's cached pages to a recovering lower
        pager.  Reports from the state's page store when the layer keeps
        one (``store`` — coherency, monolithic; ``plain`` — CFS,
        CRYPTFS); a layer with no data cache of its own holds nothing."""
        store = getattr(self.state, "store", None)
        if store is None:
            store = getattr(self.state, "plain", None)
        if store is None:
            return None
        return {
            index: (page.rights.writable, page.dirty)
            for index, page in store.pages()
        }


class LayerFileState:
    """Generic per-file state a layer keeps for one underlying file.

    Layers subclass to add their caches (plaintext stores, attribute
    copies); the spine relies only on the attributes set here.  A layer
    that keeps no holder table (CFS) sets ``holders`` to None and the
    cache-side defaults no-op.
    """

    def __init__(self, layer: "BaseLayer", under_file: File) -> None:
        self.layer = layer
        self.under_file = under_file
        self.under_key = under_file.source_key
        self.source_key: Hashable = (layer.source_tag(), layer.oid, self.under_key)
        #: Upstream channels' coherency state (who caches what, how).
        self.holders = layer._make_holders()
        #: This layer as cache manager to the layer below.
        self.down_channel: Optional[Channel] = None
        self.down_pager: Optional[FsPager] = None

    def purge(self) -> None:
        """Drop everything before the underlying file is unlinked; the
        freed i-node may be reused and stale state must not leak."""
        if self.holders is not None:
            self.holders.invalidate(0, WHOLE_FILE)
        if self.down_channel is not None and not self.down_channel.closed:
            self.down_channel.close()
        self.down_channel = None
        self.down_pager = None


class LayerFile(File):
    """Generic open handle for a layer's file: each operation delegates
    to the layer's ``file_*`` hook, whose defaults forward to the
    underlying file.  ``bind`` serves a channel from this layer."""

    def __init__(self, layer: "BaseLayer", state: LayerFileState) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.state = state
        self.source_key = state.source_key
        layer.world.charge.fs_open_state()

    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        return self.layer.bind_file(
            self.state, cache_manager, requested_access, offset, length
        )

    @operation
    def get_length(self) -> int:
        return self.layer.file_length(self.state)

    @operation
    def set_length(self, length: int) -> None:
        self.layer.file_set_length(self.state, length)

    @operation
    def read(self, offset: int, size: int) -> bytes:
        return self.layer.file_read(self.state, offset, size)

    @operation
    def write(self, offset: int, data: bytes) -> int:
        return self.layer.file_write(self.state, offset, data)

    @operation
    def get_attributes(self) -> FileAttributes:
        return self.layer.file_get_attributes(self.state)

    @operation
    def check_access(self, access: AccessRights) -> None:
        self.layer.file_check_access(self.state, access)

    @operation
    def sync(self) -> None:
        self.layer.file_sync(self.state)


class ForwardingFile(LayerFile):
    """Fully transparent handle: every operation — including ``bind`` —
    forwards straight to the underlying file, so the layer stays out of
    the page traffic entirely (the nullfs/quotafs shape)."""

    @property
    def under_file(self) -> File:
        return self.state.under_file

    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        self.layer.world.counters.inc(f"{self.layer.fs_type()}.bind_forwarded")
        return self.state.under_file.bind(
            cache_manager, requested_access, offset, length
        )

    @operation
    def get_length(self) -> int:
        return self.state.under_file.get_length()

    @operation
    def set_length(self, length: int) -> None:
        self.state.under_file.set_length(length)

    @operation
    def read(self, offset: int, size: int) -> bytes:
        return self.state.under_file.read(offset, size)

    @operation
    def write(self, offset: int, data: bytes) -> int:
        return self.state.under_file.write(offset, data)

    @operation
    def get_attributes(self) -> FileAttributes:
        return self.state.under_file.get_attributes()

    @operation
    def check_access(self, access: AccessRights) -> None:
        self.state.under_file.check_access(access)

    @operation
    def sync(self) -> None:
        self.state.under_file.sync()


class LayerDirectory(NamingContext):
    """Generic directory wrapper: resolution returns wrapped objects,
    mutation forwards below (purging layer state on unlink)."""

    def __init__(self, layer: "BaseLayer", under_context: NamingContext) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.under_context = under_context

    @operation
    def resolve(self, name: str) -> object:
        return self.layer.wrap_resolved(self.under_context.resolve(name))

    @operation
    def bind(self, name: str, obj: object) -> None:
        self.under_context.bind(name, obj)

    @operation
    def unbind(self, name: str) -> object:
        self.layer.purge_named(self.under_context, name)
        return self.under_context.unbind(name)

    @operation
    def rebind(self, name: str, obj: object) -> object:
        return self.under_context.rebind(name, obj)

    @operation
    def list_bindings(self):
        return [
            (name, self.layer.wrap_resolved(obj, charge_open=False))
            for name, obj in self.under_context.list_bindings()
        ]

    @operation
    def create_file(self, name: str) -> File:
        return self.layer.wrap_resolved(self.under_context.create_file(name))

    @operation
    def create_dir(self, name: str) -> "LayerDirectory":
        return type(self)(self.layer, self.under_context.create_dir(name))

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        self.under_context.rename(old_name, new_name)


class BaseLayer(StackableFs, CacheManager, abc.ABC):
    """Shared implementation base for every file system layer.

    A minimal pass-through layer overrides nothing but ``fs_type``; the
    defaults give it a naming face that wraps resolved files in
    :class:`ForwardingFile` handles, a :class:`ChannelOps` spine, and
    per-layer telemetry.  Transform layers customize three class
    attributes — ``ops_class``, ``file_class``, ``directory_class`` —
    and the ``file_*`` hooks.
    """

    #: How many file systems this layer type may be stacked on.
    max_under = 1
    #: Dispatch table class; layers override with their ChannelOps subclass.
    ops_class = ChannelOps
    #: Per-file state class (subclass of LayerFileState).
    state_class = LayerFileState
    #: Handle classes used by the generic naming face.
    file_class = ForwardingFile
    directory_class = LayerDirectory
    #: Access requested when binding below on first downstream use.
    down_access = AccessRights.READ_WRITE

    def __init__(self, domain) -> None:
        super().__init__(domain)
        self._under: List[StackableFs] = []
        #: Pager side: channels where *we* are the pager.
        self.channels = ChannelRegistry()
        #: Cache-manager side: downstream channels keyed by rights oid.
        self._down_channels_by_rights: Dict[int, Channel] = {}
        self._pending_bind_state: Any = None
        #: Per-file state, by underlying file key and by our source key.
        self._states: Dict[Hashable, Any] = {}
        self._states_by_source: Dict[Hashable, Any] = {}
        self.config = StackConfig()
        self.ops: ChannelOps = self.ops_class(self)
        self.runtime = LayerRuntime(self)

    def source_tag(self) -> str:
        """Tag used in this layer's source keys and channel labels."""
        return self.fs_type()

    def _make_holders(self):
        """Holder table for a new file state; None means the layer keeps
        no upstream coherency state of its own."""
        return make_holder_table(getattr(self, "protocol", "per_block"))

    # --------------------------------------------------------- configuration
    @property
    def batch_pageout(self) -> bool:
        return self.config.batch_pageout

    @batch_pageout.setter
    def batch_pageout(self, value: bool) -> None:
        self.config.batch_pageout = value

    @property
    def compound(self) -> bool:
        return self.config.compound

    @compound.setter
    def compound(self, value: bool) -> None:
        self.config.compound = value

    @property
    def readahead_pages(self) -> int:
        return self.config.readahead_pages

    @readahead_pages.setter
    def readahead_pages(self, value: int) -> None:
        self.config.readahead_pages = value

    def apply_config(self, config: StackConfig) -> None:
        """Adopt ``config`` (a private copy) and push it to every layer
        below, so one call configures a whole stack."""
        self.config = config.copy()
        for under in self._under:
            if isinstance(under, BaseLayer):
                under.apply_config(config)

    def fanout_region(self):
        """A compound region around a holder fan-out when the stack's
        ``compound`` knob is on, else a no-op context."""
        if self.config.compound:
            return compound_region(self.world)
        return contextlib.nullcontext()

    # ------------------------------------------------------------- stacking
    @operation
    def stack_on(
        self, underlying: StackableFs, config: Optional[StackConfig] = None
    ) -> None:
        if narrow(underlying, StackableFs) is None:
            raise StackingError(
                f"{type(underlying).__name__} is not a stackable_fs"
            )
        if len(self._under) >= self.max_under:
            raise StackingError(
                f"{self.fs_type()} stacks on at most {self.max_under} "
                f"file system(s)"
            )
        self._under.append(underlying)
        if config is not None:
            self.apply_config(config)
        if isinstance(underlying, BaseLayer):
            self.runtime.depth = max(
                self.runtime.depth, underlying.runtime.depth + 1
            )
        else:
            self.runtime.depth = max(self.runtime.depth, 1)
        self._on_stacked(underlying)

    def _on_stacked(self, underlying: StackableFs) -> None:
        """Hook: called after each successful stack_on."""

    @operation
    def under_layers(self) -> List[StackableFs]:
        return list(self._under)

    @property
    def under(self) -> StackableFs:
        """The single underlying layer (raises if not stacked yet)."""
        if not self._under:
            raise StackingError(f"{self.fs_type()} is not stacked on anything")
        return self._under[0]

    # ---------------------------------------------------- pager-side binding
    def bind_file(
        self,
        state: Any,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        """Default ``bind`` behaviour for this layer's files: serve a
        channel from this layer.  (The downstream channel is established
        lazily, on first fault; layers that must participate in the
        lower layer's coherency from the start — DFS — call
        :meth:`ensure_down` before this.)"""
        return self.bind_source(
            state.source_key,
            cache_manager,
            requested_access,
            offset,
            label=f"{self.source_tag()}:{state.under_key}",
        )

    def bind_source(
        self,
        source_key: Hashable,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        label: str,
    ) -> BindResult:
        """Implements ``bind`` for one of this layer's files: find or
        create the channel for (file, cache manager) and hand back its
        cache-rights object."""
        self.world.charge.bind()
        channel, created = self.channels.get_or_create(
            source_key,
            cache_manager,
            lambda: self._make_pager_object(source_key),
            label,
        )
        if created:
            self.world.counters.inc(f"{self.fs_type()}.channel_created")
            self._on_channel_created(source_key, channel)
        return BindResult(channel.cache_rights, offset)

    def _make_pager_object(self, source_key: Hashable) -> LayerPagerObject:
        return LayerPagerObject(self.domain, self, source_key)

    def _on_channel_created(self, source_key: Hashable, channel: Channel) -> None:
        """Hook: a new upstream channel exists; layers narrow the cache
        object to fs_cache here if they care (paper sec. 4.3)."""

    def _channel_done(self, source_key: Hashable, pager_object) -> None:
        """An upstream cache manager closed its channel end."""
        for channel in self.channels.channels_for(source_key):
            if channel.pager_object is pager_object:
                channel.closed = True
                self.channels.forget(channel)
                self._on_channel_closed(source_key, channel)

    def _on_channel_closed(self, source_key: Hashable, channel: Channel) -> None:
        """Hook: an upstream channel went away.  The default drops the
        departing holder from the file's coherency state."""
        state = self._states_by_source.get(source_key)
        holders = getattr(state, "holders", None) if state is not None else None
        if holders is not None:
            holders.drop_channel(channel)

    # ------------------------------------------------- cache-manager side
    @operation
    def accept_channel(self, pager_object: PagerObject, label: str) -> Channel:
        """Complete a downstream bind we initiated: build our fs_cache and
        cache-rights ends for the file state recorded by
        :meth:`bind_below`."""
        state = self._pending_bind_state
        if state is None:
            raise StackingError(
                f"{self.fs_type()}: unsolicited accept_channel for {label!r}"
            )
        cache_object = LayerFsCache(self.domain, self, state)
        rights = CacheRights(self.domain, label)
        channel = Channel(pager_object, cache_object, rights, label)
        rights.channel = channel
        self._down_channels_by_rights[rights.oid] = channel
        return channel

    def bind_below(self, state: Any, under_file, access: AccessRights) -> Channel:
        """Act as a cache manager for ``under_file`` (paper sec. 4.2):
        bind to it, exchanging fs_cache/fs_pager objects, and return the
        downstream channel."""
        self._pending_bind_state = state
        try:
            result = under_file.bind(self, access, 0, under_file.get_length())
        finally:
            self._pending_bind_state = None
        channel = self._down_channels_by_rights.get(result.rights.oid)
        if channel is None:
            raise StackingError(
                f"{self.fs_type()}: bind returned rights we did not issue"
            )
        return channel

    def ensure_down(self, state: Any) -> bool:
        """Establish the downstream channel (this layer as cache manager
        to the layer below) on first use.  Returns False from overrides
        that decline (CRYPTFS's degraded mode, COMPFS uncoherent)."""
        if state.down_channel is not None and not state.down_channel.closed:
            return True
        state.down_channel = self.bind_below(state, state.under_file, self.down_access)
        state.down_pager = self.down_fs_pager(state.down_channel)
        return True

    def down_fs_pager(self, channel: Channel) -> Optional[FsPager]:
        """Narrow the downstream pager object to fs_pager; None means the
        lower side is a plain storage pager (paper sec. 4.3)."""
        return narrow(channel.pager_object, FsPager)

    # ------------------------------------------------------- per-file state
    def _state_for(self, under_file: File) -> Any:
        state = self._states.get(under_file.source_key)
        if state is None:
            state = self.state_class(self, under_file)
            self._states[state.under_key] = state
            self._states_by_source[state.source_key] = state
        return state

    def state_by_source(self, source_key: Hashable) -> Any:
        state = self._states_by_source.get(source_key)
        if state is None:
            raise FsError(f"no file state for {source_key!r}")
        return state

    def purge_named(self, under_context, name: str) -> None:
        """Drop per-file state before an unlink; the freed i-node may be
        reused and stale cached state must not leak into the new file."""
        try:
            obj = under_context.resolve(name)
        except Exception:
            return
        under_file = narrow(obj, File)
        if under_file is not None:
            self._purge_state(under_file.source_key)

    def _purge_state(self, under_key: Hashable) -> None:
        state = self._states.pop(under_key, None)
        if state is None:
            return
        self._states_by_source.pop(state.source_key, None)
        state.purge()

    # ------------------------------------------------------- data movement
    def push_recovered(self, state: Any, recovered: Dict[int, bytes]) -> None:
        """Push dirty pages recalled from upstream holders to the layer
        below, coalescing contiguous runs into single ranged calls."""
        if not recovered:
            return
        self.ensure_down(state)
        run: list = []  # contiguous (index, data) run, pushed as one call
        for index, data in sorted(recovered.items()):
            if run and index != run[-1][0] + 1:
                self._push_run(state, run)
            run.append((index, data))
        self._push_run(state, run)

    def _push_run(self, state: Any, run: list) -> None:
        if not run:
            return
        if len(run) == 1:
            index, chunk = run[0]
            state.down_channel.pager_object.page_out(
                index * PAGE_SIZE, PAGE_SIZE, chunk
            )
        else:
            data = b"".join(chunk for _, chunk in run)
            state.down_channel.pager_object.page_out_range(
                run[0][0] * PAGE_SIZE, len(data), data
            )
        run.clear()

    def invalidate_upstream_attrs(
        self, state: Any, exclude: Optional[Channel] = None
    ) -> None:
        """Tell every upstream attribute cache to drop its copy."""
        with self.fanout_region():
            for channel in self.channels.channels_for(state.source_key):
                if channel is exclude:
                    continue
                fs_cache = narrow(channel.cache_object, FsCache)
                if fs_cache is not None:
                    fs_cache.invalidate_attributes()

    # ------------------------------------------------------------ naming face
    def wrap_resolved(self, obj: object, charge_open: bool = True) -> object:
        """Wrap an object resolved below in this layer's handle types.
        ``charge_open`` pays the open-protocol costs (access check +
        attribute fetch); listing entries skips them."""
        under_file = narrow(obj, File)
        if under_file is not None:
            attrs = None
            if charge_open:
                under_file.check_access(AccessRights.READ_ONLY)
                attrs = under_file.get_attributes()
            state = self._state_for(under_file)
            self._on_open(state, attrs)
            if charge_open:
                return self.file_class(self, state)
            handle = object.__new__(self.file_class)
            File.__init__(handle, self.domain)
            handle.layer = self
            handle.state = state
            handle.source_key = state.source_key
            return handle
        under_context = narrow(obj, NamingContext)
        if under_context is not None:
            return self.directory_class(self, under_context)
        return obj

    def _on_open(self, state: Any, attrs: Optional[FileAttributes]) -> None:
        """Hook: a handle is being created; ``attrs`` carries the
        open-time attribute fetch when one was paid for."""

    @operation
    def resolve(self, name: str) -> object:
        return self.wrap_resolved(self.under.resolve(name))

    @operation
    def bind(self, name: str, obj: object) -> None:
        self.under.bind(name, obj)

    @operation
    def unbind(self, name: str) -> object:
        self.purge_named(self.under, name)
        return self.under.unbind(name)

    @operation
    def rebind(self, name: str, obj: object) -> object:
        return self.under.rebind(name, obj)

    @operation
    def list_bindings(self):
        return [
            (name, self.wrap_resolved(obj, charge_open=False))
            for name, obj in self.under.list_bindings()
        ]

    @operation
    def create_file(self, name: str) -> File:
        return self.wrap_resolved(self.under.create_file(name))

    @operation
    def create_dir(self, name: str) -> NamingContext:
        return self.directory_class(self, self.under.create_dir(name))

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        self.under.rename(old_name, new_name)

    # ------------------------------------------------------------ file hooks
    # Defaults forward to the underlying file; transform layers override.
    def file_length(self, state: Any) -> int:
        return state.under_file.get_length()

    def file_set_length(self, state: Any, length: int) -> None:
        state.under_file.set_length(length)

    def file_read(self, state: Any, offset: int, size: int) -> bytes:
        return state.under_file.read(offset, size)

    def file_write(self, state: Any, offset: int, data: bytes) -> int:
        return state.under_file.write(offset, data)

    def file_get_attributes(self, state: Any) -> FileAttributes:
        self.world.charge.fs_attr_copy()
        return state.under_file.get_attributes()

    def file_check_access(self, state: Any, access: AccessRights) -> None:
        self.world.charge.fs_access_check()

    def file_sync(self, state: Any) -> None:
        state.under_file.sync()

    # ------------------------------------------------------------ fs interface
    @operation
    def sync_fs(self) -> None:
        self._sync_impl()
        for under in self._under:
            under.sync_fs()

    def _sync_impl(self) -> None:
        """Hook: flush this layer's own caches."""
