"""Stack introspection helpers.

Used by the figure reproductions to print/verify the shape of a
configuration (Figure 3/9/10 style diagrams) and by tests to assert on
layer placement.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.fs.fs_interfaces import StackableFs


def stack_layers(top: StackableFs) -> List[StackableFs]:
    """All layers reachable from ``top``, depth-first, top first."""
    layers: List[StackableFs] = []
    stack = [top]
    while stack:
        layer = stack.pop(0)
        if layer in layers:
            continue
        layers.append(layer)
        stack.extend(layer.under_layers())
    return layers


def stack_depth(top: StackableFs) -> int:
    """Length of the longest chain from ``top`` to a base layer."""
    unders = top.under_layers()
    if not unders:
        return 1
    return 1 + max(stack_depth(under) for under in unders)


def describe_stack(top: StackableFs, indent: int = 0) -> str:
    """Human-readable rendering of a stack, with domain placement —
    what Figure 3/9/10 draw as boxes."""
    domain = top.domain
    line = (
        " " * indent
        + f"{top.fs_type()} (domain {domain.name!r} on node "
        f"{domain.node.name!r})"
    )
    parts = [line]
    for under in top.under_layers():
        parts.append(describe_stack(under, indent + 2))
    return "\n".join(parts)


def domains_of(top: StackableFs) -> List[str]:
    """Distinct domains the stack's layers run in, top-down."""
    seen: List[str] = []
    for layer in stack_layers(top):
        name = f"{layer.domain.node.name}/{layer.domain.name}"
        if name not in seen:
            seen.append(name)
    return seen


def nodes_of(top: StackableFs) -> List[str]:
    """Distinct nodes the stack's layers run on, top-down."""
    seen: List[str] = []
    for layer in stack_layers(top):
        name = layer.domain.node.name
        if name not in seen:
            seen.append(name)
    return seen


def layer_op_breakdown(
    top: StackableFs,
) -> List[Tuple[str, int, Dict[str, Tuple[int, int]]]]:
    """Per-layer channel-op telemetry, top layer first.

    Every op dispatched through the spine is recorded exactly once under
    its layer's ``<layer>.<op>`` counter (plus ``<layer>.<op>.bytes`` for
    data-carrying ops), so this is a complete census of the channel
    traffic each layer saw.  Returns ``(fs_type, depth, ops)`` rows where
    ``ops`` maps op name to ``(count, bytes)``; ops never dispatched are
    omitted.
    """
    from repro.fs.base import BaseLayer

    rows: List[Tuple[str, int, Dict[str, Tuple[int, int]]]] = []
    for layer in stack_layers(top):
        if not isinstance(layer, BaseLayer):
            continue
        counters = layer.world.counters
        runtime = layer.runtime
        ops: Dict[str, Tuple[int, int]] = {}
        for op, key in runtime.count_keys.items():
            count = counters.get(key)
            if count:
                ops[op] = (count, counters.get(runtime.byte_keys[op]))
        rows.append((layer.fs_type(), runtime.depth, ops))
    return rows


def render_layer_breakdown(top: StackableFs) -> str:
    """The per-layer op/byte breakdown as a printable table — one block
    per layer, one line per channel op it dispatched."""
    lines: List[str] = []
    for fs_type, depth, ops in layer_op_breakdown(top):
        lines.append(f"{fs_type} (depth {depth})")
        if not ops:
            lines.append("    (no channel traffic)")
        for op in sorted(ops):
            count, nbytes = ops[op]
            line = f"    {fs_type + '.' + op:<34} {count:>8}"
            if nbytes:
                line += f"  {nbytes:>12} bytes"
            lines.append(line)
    return "\n".join(lines)


def layer_busy_breakdown(
    top: StackableFs, makespan_us: float = 0.0
) -> List[Tuple[str, int, float, float]]:
    """Per-layer busy time ``(fs_type, depth, busy_us, utilization)``,
    top layer first.

    ``busy_us`` is the virtual time the layer spent servicing channel
    ops exclusive of the layers below it (see
    :meth:`repro.fs.base.LayerRuntime.timed`), accumulated only while
    :meth:`repro.world.World.enable_layer_busy_accounting` is on.
    ``utilization`` is ``busy_us / makespan_us`` (0.0 when no makespan
    given) — under the discrete-event scheduler this is the classic
    "how loaded is this service centre" number, and the layer whose
    utilization approaches 1.0 first is the stack's saturation
    bottleneck.
    """
    from repro.fs.base import BaseLayer

    rows: List[Tuple[str, int, float, float]] = []
    for layer in stack_layers(top):
        if not isinstance(layer, BaseLayer):
            continue
        busy = layer.runtime.busy_us
        util = busy / makespan_us if makespan_us > 0 else 0.0
        rows.append((layer.fs_type(), layer.runtime.depth, busy, util))
    return rows


def remote_boundaries(top: StackableFs) -> int:
    """Number of layer-to-layer edges in the stack that cross machines —
    each one is a network round trip per uncompounded operation, which is
    what the compound-invocation machinery batches away."""
    count = 0
    for layer in stack_layers(top):
        for under in layer.under_layers():
            if under.domain.node is not layer.domain.node:
                count += 1
    return count
