"""MIRRORFS — a mirroring (replication) layer stacked on TWO file systems.

This is Figure 3's fs4: "the implementation of fs4 uses two underlying
file systems to implement its function (e.g. ... fs4 is a mirroring file
system)".  It demonstrates the multi-underlying form of ``stack_on``
("the stack_on operation can be called more than once", sec. 4.4) and
replication, another of the introduction's motivating extensions.

Policy: writes and creates go to every replica; reads are served from
the primary (first-stacked) replica, falling over to the secondary on a
storage error.  ``scrub`` compares replicas and reports divergence —
failure-injection tests drive both paths.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.errors import FsError, StorageError
from repro.ipc.invocation import operation
from repro.ipc.narrow import narrow
from repro.naming.context import NamingContext
from repro.types import AccessRights
from repro.vm.channel import BindResult
from repro.vm.memory_object import CacheManager

from repro.fs.attributes import FileAttributes
from repro.fs.base import BaseLayer
from repro.fs.file import File


class MirrorFileState:
    def __init__(self, layer: "MirrorFs", replicas: List[File]) -> None:
        self.layer = layer
        self.replicas = replicas
        self.source_key: Hashable = (
            "mirrorfs",
            layer.oid,
            tuple(r.source_key for r in replicas),
        )


class MirrorFile(File):
    """An open handle to a mirrored file."""

    def __init__(self, layer: "MirrorFs", state: MirrorFileState) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.state = state
        self.source_key = state.source_key
        layer.world.charge.fs_open_state()

    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        if requested_access.writable:
            raise FsError(
                "mirrorfs supports read-only mappings; write through the "
                "file interface so both replicas stay in step"
            )
        # Read-only mappings can share the primary replica's cache.
        return self.state.replicas[0].bind(
            cache_manager, requested_access, offset, length
        )

    @operation
    def get_length(self) -> int:
        return self.layer._primary_call(self.state, "get_length")

    @operation
    def set_length(self, length: int) -> None:
        for replica in self.state.replicas:
            replica.set_length(length)

    @operation
    def read(self, offset: int, size: int) -> bytes:
        return self.layer.file_read(self.state, offset, size)

    @operation
    def write(self, offset: int, data: bytes) -> int:
        return self.layer.file_write(self.state, offset, data)

    @operation
    def get_attributes(self) -> FileAttributes:
        self.layer.world.charge.fs_attr_copy()
        return self.layer._primary_call(self.state, "get_attributes")

    @operation
    def check_access(self, access: AccessRights) -> None:
        self.layer.world.charge.fs_access_check()

    @operation
    def sync(self) -> None:
        for replica in self.state.replicas:
            replica.sync()


class MirrorDirectory(NamingContext):
    def __init__(self, layer: "MirrorFs", under_contexts: List[NamingContext]):
        super().__init__(layer.domain)
        self.layer = layer
        self.under_contexts = under_contexts

    @operation
    def resolve(self, name: str) -> object:
        return self.layer.wrap_resolved(
            [context.resolve(name) for context in self.under_contexts]
        )

    @operation
    def bind(self, name: str, obj: object) -> None:
        raise FsError("mirrorfs directories hold files; use create_file")

    @operation
    def unbind(self, name: str) -> object:
        results = [context.unbind(name) for context in self.under_contexts]
        return results[0]

    @operation
    def rebind(self, name: str, obj: object) -> object:
        raise FsError("mirrorfs does not support rebind")

    @operation
    def list_bindings(self):
        return self.under_contexts[0].list_bindings()

    @operation
    def create_file(self, name: str) -> File:
        return self.layer.wrap_resolved(
            [context.create_file(name) for context in self.under_contexts]
        )

    @operation
    def create_dir(self, name: str) -> "MirrorDirectory":
        return MirrorDirectory(
            self.layer,
            [context.create_dir(name) for context in self.under_contexts],
        )


class MirrorFs(BaseLayer):
    """Two-way (or N-way) mirroring layer."""

    max_under = 2

    def __init__(self, domain) -> None:
        super().__init__(domain)
        self._states: Dict[Hashable, MirrorFileState] = {}
        self.failovers = 0

    def fs_type(self) -> str:
        return "mirrorfs"

    def _require_replicas(self) -> List[object]:
        if len(self._under) < 2:
            raise FsError("mirrorfs needs stack_on() called for two replicas")
        return self._under

    # --- naming face -----------------------------------------------------
    @operation
    def resolve(self, name: str) -> object:
        return self.wrap_resolved(
            [under.resolve(name) for under in self._require_replicas()]
        )

    @operation
    def bind(self, name: str, obj: object) -> None:
        raise FsError("mirrorfs holds files; use create_file")

    @operation
    def unbind(self, name: str) -> object:
        results = [under.unbind(name) for under in self._require_replicas()]
        return results[0]

    @operation
    def rebind(self, name: str, obj: object) -> object:
        raise FsError("mirrorfs does not support rebind")

    @operation
    def list_bindings(self):
        return self._require_replicas()[0].list_bindings()

    @operation
    def create_file(self, name: str) -> File:
        return self.wrap_resolved(
            [under.create_file(name) for under in self._require_replicas()]
        )

    @operation
    def create_dir(self, name: str) -> MirrorDirectory:
        return MirrorDirectory(
            self, [under.create_dir(name) for under in self._require_replicas()]
        )

    def wrap_resolved(self, objs: List[object]) -> object:
        files = [narrow(obj, File) for obj in objs]
        if all(f is not None for f in files):
            for f in files:
                f.check_access(AccessRights.READ_ONLY)
            key = ("mirrorfs", self.oid, tuple(f.source_key for f in files))
            state = self._states.get(key)
            if state is None:
                state = MirrorFileState(self, files)
                self._states[key] = state
            return MirrorFile(self, state)
        contexts = [narrow(obj, NamingContext) for obj in objs]
        if all(c is not None for c in contexts):
            return MirrorDirectory(self, contexts)
        raise FsError("replicas disagree about the object's type")

    # --- data path ------------------------------------------------------------
    def _primary_call(self, state: MirrorFileState, op: str, *args):
        """Invoke on the primary, failing over to later replicas on
        storage errors."""
        last_error: Optional[Exception] = None
        for index, replica in enumerate(state.replicas):
            try:
                return getattr(replica, op)(*args)
            except StorageError as exc:
                last_error = exc
                if index + 1 < len(state.replicas):
                    self.failovers += 1
                    self.world.counters.inc("mirrorfs.failover")
        raise FsError(f"all replicas failed: {last_error}")

    def file_read(self, state: MirrorFileState, offset: int, size: int) -> bytes:
        self.world.charge.fs_read_cpu()
        return self._primary_call(state, "read", offset, size)

    def file_write(self, state: MirrorFileState, offset: int, data: bytes) -> int:
        self.world.charge.fs_write_cpu()
        written = 0
        for replica in state.replicas:
            written = replica.write(offset, data)
        return written

    # --- maintenance -----------------------------------------------------------
    @operation
    def scrub(self, name: str) -> List[str]:
        """Compare replicas of one file; returns a list of divergence
        descriptions (empty = replicas identical)."""
        problems: List[str] = []
        replicas = [under.resolve(name) for under in self._require_replicas()]
        lengths = [r.get_length() for r in replicas]
        if len(set(lengths)) > 1:
            problems.append(f"length mismatch: {lengths}")
        size = min(lengths)
        chunk = 64 * 1024
        for offset in range(0, size, chunk):
            contents = [r.read(offset, min(chunk, size - offset)) for r in replicas]
            if len(set(contents)) > 1:
                problems.append(f"data mismatch in [{offset}, {offset + chunk})")
        return problems

    @operation
    def repair(self, name: str) -> None:
        """Copy the primary replica's content over the others."""
        replicas = [under.resolve(name) for under in self._require_replicas()]
        primary = replicas[0]
        size = primary.get_length()
        data = primary.read(0, size)
        for replica in replicas[1:]:
            replica.set_length(size)
            if size:
                replica.write(0, data)

    def _sync_impl(self) -> None:
        pass
