"""The file interface.

"The file interface in Spring inherits from the memory object interface"
(paper sec. 3.3.1) and "provides file read/write operations (but not
page-in/page-out operations)" (Table 1).  Every layer exports files that
conform to this interface, which is why clients see any stack as just a
file system.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.vm.memory_object import MemoryObject

if TYPE_CHECKING:
    from repro.fs.attributes import FileAttributes


class File(MemoryObject, abc.ABC):
    """A file: mappable store plus read/write and attribute operations."""

    @abc.abstractmethod
    def read(self, offset: int, size: int) -> bytes:
        """Read up to ``size`` bytes at ``offset`` (short at EOF)."""

    @abc.abstractmethod
    def write(self, offset: int, data: bytes) -> int:
        """Write ``data`` at ``offset``; returns bytes written."""

    @abc.abstractmethod
    def get_attributes(self) -> "FileAttributes":
        """The stat operation."""

    @abc.abstractmethod
    def check_access(self, access) -> None:
        """Verify the caller may use the file with ``access``; raises
        :class:`repro.errors.PermissionDeniedError` otherwise.  Called by
        upper layers while building their open state."""

    @abc.abstractmethod
    def sync(self) -> None:
        """Push cached data and attributes toward stable storage."""
