"""File attributes.

The stackable attribute interface (paper sec. 4.3) keeps "the access and
modified times and file length" coherent between layers; those are
exactly the fields carried here, plus the structural fields (type,
nlink) a UFS i-node exposes through stat.
"""

from __future__ import annotations

import dataclasses

from repro.storage.inode import FileType, Inode


@dataclasses.dataclass
class FileAttributes:
    """A value-type snapshot of one file's attributes."""

    size: int = 0
    atime_us: int = 0
    mtime_us: int = 0
    ctime_us: int = 0
    ftype: FileType = FileType.REGULAR
    nlink: int = 1

    def copy(self) -> "FileAttributes":
        return dataclasses.replace(self)

    @classmethod
    def from_inode(cls, inode: Inode) -> "FileAttributes":
        return cls(
            size=inode.size,
            atime_us=inode.atime_us,
            mtime_us=inode.mtime_us,
            ctime_us=inode.ctime_us,
            ftype=inode.type,
            nlink=inode.nlink,
        )

    def apply_to_inode(self, inode: Inode) -> None:
        inode.size = self.size
        inode.atime_us = self.atime_us
        inode.mtime_us = self.mtime_us
        inode.ctime_us = self.ctime_us
        inode.nlink = self.nlink


@dataclasses.dataclass
class CachedAttributes:
    """A cache-manager-side attribute cache entry with dirty tracking.

    Used by every layer that caches attributes through the
    fs_pager/fs_cache protocol (coherency layer, CFS, COMPFS).
    """

    attrs: FileAttributes
    dirty: bool = False

    def touch_atime(self, now_us: int) -> None:
        self.attrs.atime_us = now_us
        self.dirty = True

    def touch_mtime(self, now_us: int) -> None:
        self.attrs.mtime_us = now_us
        self.attrs.ctime_us = now_us
        self.dirty = True

    def grow(self, size: int) -> None:
        if size > self.attrs.size:
            self.attrs.size = size
            self.dirty = True

    def set_size(self, size: int) -> None:
        if size != self.attrs.size:
            self.attrs.size = size
            self.dirty = True
