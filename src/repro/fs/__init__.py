"""Extensible file systems: the paper's core contribution.

Layers: DiskLayer (base on-disk), CoherencyLayer (MRSW protocol),
MonolithicSfs (Table 2 baseline), CompFs (compression, Figures 5-6),
DfsLayer (distribution, Figure 7), CfsLayer (client attribute caching),
CryptFs (encryption extension), MirrorFs (replication, Figure 3's fs4),
plus per-file interposition (sec. 5) and creators/stack configuration
tools (sec. 4.4).
"""

from repro.fs.attributes import CachedAttributes, FileAttributes
from repro.fs.base import BaseLayer, LayerFsCache, LayerPagerObject
from repro.fs.cfs import CfsFile, CfsLayer, start_cfs
from repro.fs.coherency import CoherencyLayer, CoherentDirectory, CoherentFile
from repro.fs.compfs import CompFile, CompFs, pack_compressed, unpack_compressed
from repro.fs.creators import (
    LayerCreator,
    LayerSpec,
    build_stack,
    lookup_creator,
    register_standard_creators,
)
from repro.fs.cryptfs import CryptFile, CryptFs, keystream, xor_block
from repro.fs.dfs import DfsFile, DfsLayer, export_dfs, mount_remote
from repro.fs.disk_layer import DiskDirectory, DiskFile, DiskLayer
from repro.fs.file import File
from repro.fs.fs_interfaces import Fs, StackableFs, StackableFsCreator
from repro.fs.holders import (
    BlockHolderTable,
    WholeFileHolderTable,
    make_holder_table,
)
from repro.fs.interposer import (
    AuditFile,
    InterposedFile,
    ReadOnlyFile,
    TransformFile,
    WatchdogContext,
    interpose_on_name,
)
from repro.fs.mirrorfs import MirrorFile, MirrorFs
from repro.fs.monolithic import MonoFile, MonolithicSfs
from repro.fs.nullfs import NullFile, NullFs
from repro.fs.quotafs import QuotaExceededError, QuotaFile, QuotaFs
from repro.fs.sfs import PLACEMENTS, SfsStack, create_sfs
from repro.fs.stack import describe_stack, domains_of, stack_depth, stack_layers

__all__ = [
    "CachedAttributes", "FileAttributes",
    "BaseLayer", "LayerFsCache", "LayerPagerObject",
    "CfsFile", "CfsLayer", "start_cfs",
    "CoherencyLayer", "CoherentDirectory", "CoherentFile",
    "CompFile", "CompFs", "pack_compressed", "unpack_compressed",
    "LayerCreator", "LayerSpec", "build_stack", "lookup_creator",
    "register_standard_creators",
    "CryptFile", "CryptFs", "keystream", "xor_block",
    "DfsFile", "DfsLayer", "export_dfs", "mount_remote",
    "DiskDirectory", "DiskFile", "DiskLayer",
    "File",
    "Fs", "StackableFs", "StackableFsCreator",
    "BlockHolderTable", "WholeFileHolderTable", "make_holder_table",
    "AuditFile", "InterposedFile", "ReadOnlyFile", "TransformFile",
    "WatchdogContext", "interpose_on_name",
    "MirrorFile", "MirrorFs",
    "MonoFile", "MonolithicSfs",
    "NullFile", "NullFs",
    "QuotaExceededError", "QuotaFile", "QuotaFs",
    "PLACEMENTS", "SfsStack", "create_sfs",
    "describe_stack", "domains_of", "stack_depth", "stack_layers",
]
