"""Monolithic (non-stacked) storage file system.

Table 2's baseline column: "One that does not use stacking — this is the
case with no stacking overhead."  The disk-layer and coherency-layer
functions are fused into a single layer in a single domain: one
open-file state per open, no cross-layer calls, one cache.

Everything else about it matches the stacked SFS — same on-disk
:class:`~repro.storage.volume.Volume`, same MRSW holder table toward
upstream VMM clients, same cached/uncached switch — so the benchmark
differences isolate exactly the cost of stacking.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.errors import FsError, IsADirectoryError_
from repro.ipc.invocation import operation
from repro.naming import name as names
from repro.naming.context import NamingContext
from repro.storage.block_device import BlockDevice
from repro.storage.inode import FileType
from repro.storage.volume import Volume
from repro.types import PAGE_SIZE, AccessRights, page_range
from repro.vm.channel import BindResult
from repro.vm.memory_object import CacheManager
from repro.vm.page import CachedPage, PageStore

from repro.fs.attributes import FileAttributes
from repro.fs.base import BaseLayer, ChannelOps
from repro.fs.file import File
from repro.fs.holders import BlockHolderTable


class _MonoState:
    """Per-i-node cache state."""

    def __init__(self, ino: int) -> None:
        self.ino = ino
        self.store = PageStore()
        self.holders = BlockHolderTable()


class MonoFile(File):
    """An open handle to a monolithic-SFS file."""

    def __init__(self, fs: "MonolithicSfs", ino: int) -> None:
        super().__init__(fs.domain)
        self.fs = fs
        self.ino = ino
        self.source_key: Hashable = ("mono", fs.oid, ino)
        fs.world.charge.fs_open_state()

    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        return self.fs.bind_source(
            self.source_key,
            cache_manager,
            requested_access,
            offset,
            label=f"mono:ino{self.ino}",
        )

    @operation
    def get_length(self) -> int:
        return self.fs.volume.iget(self.ino).size

    @operation
    def set_length(self, length: int) -> None:
        self.fs.file_set_length(self.ino, length)

    @operation
    def read(self, offset: int, size: int) -> bytes:
        return self.fs.file_read(self.ino, offset, size)

    @operation
    def write(self, offset: int, data: bytes) -> int:
        return self.fs.file_write(self.ino, offset, data)

    @operation
    def get_attributes(self) -> FileAttributes:
        self.fs.world.charge.fs_attr_copy()
        return FileAttributes.from_inode(self.fs.volume.iget(self.ino))

    @operation
    def check_access(self, access: AccessRights) -> None:
        self.fs.world.charge.fs_access_check()
        inode = self.fs.volume.iget(self.ino)
        if inode.is_dir and access.writable:
            raise IsADirectoryError_("cannot open a directory for writing")

    @operation
    def sync(self) -> None:
        self.fs.file_sync(self.ino)


class MonoDirectory(NamingContext):
    """A directory exported by the monolithic SFS."""

    def __init__(self, fs: "MonolithicSfs", dir_ino: int) -> None:
        super().__init__(fs.domain)
        self.fs = fs
        self.dir_ino = dir_ino

    @operation
    def resolve(self, name: str) -> object:
        return self.fs._resolve_from(self.dir_ino, name)

    @operation
    def bind(self, name: str, obj: object) -> None:
        raise FsError("monolithic SFS holds files; use create_file")

    @operation
    def unbind(self, name: str) -> object:
        names.validate_component(name)
        ino = self.fs.volume.lookup(self.dir_ino, name)
        self.fs.volume.unlink(self.dir_ino, name)
        self.fs._states.pop(ino, None)
        return name

    @operation
    def rebind(self, name: str, obj: object) -> object:
        raise FsError("monolithic SFS does not support rebind")

    @operation
    def list_bindings(self):
        return [
            (entry, self.fs._make_handle(ino, charge_open=False))
            for entry, ino in sorted(self.fs.volume.readdir(self.dir_ino).items())
        ]

    @operation
    def create_file(self, name: str) -> File:
        inode = self.fs.volume.create(self.dir_ino, name, FileType.REGULAR)
        return MonoFile(self.fs, inode.ino)

    @operation
    def create_dir(self, name: str) -> "MonoDirectory":
        inode = self.fs.volume.create(self.dir_ino, name, FileType.DIRECTORY)
        return MonoDirectory(self.fs, inode.ino)

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        self.fs.volume.rename(self.dir_ino, old_name, self.dir_ino, new_name)


class MonoOps(ChannelOps):
    """Channel ops serving the VMM straight from the fused cache+volume.

    Only the four leaf transforms are written out; the ranged ops fold
    onto them via the spine's defaults, exactly as a stacked SFS's
    bottom layer would behave without clustering."""

    def state(self, source_key):
        # source_key is ("mono", oid, ino); state is created on demand so
        # a mapping faulted before any read/write still finds its cache.
        return self.layer._state(source_key[2])

    def merge_recovered(self, state, recovered: Dict[int, bytes]) -> None:
        self.layer._merge(state, recovered)

    def page_in(self, source_key, pager_object, offset, size, access) -> bytes:
        fs = self.layer
        state = self.state(source_key)
        requester = self.requester(source_key, pager_object)
        recovered = state.holders.acquire(requester, offset, size, access)
        self.merge_recovered(state, recovered)
        if fs.cache_enabled:
            return state.store.read(offset, size, fs._fault_from_disk(state.ino))
        return fs.volume.read_data(state.ino, offset, size)

    def page_out(self, source_key, pager_object, offset, size, data, retain) -> None:
        state = self.state(source_key)
        requester = self.requester(source_key, pager_object)
        self.writeback_bookkeeping(state, requester, offset, size, retain)
        pages = {
            index: data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]
            for i, index in enumerate(page_range(offset, size))
        }
        self.merge_recovered(state, pages)

    def attr_page_in(self, source_key, pager_object) -> FileAttributes:
        state = self.state(source_key)
        return FileAttributes.from_inode(self.layer.volume.iget(state.ino))

    def attr_write_out(self, source_key, pager_object, attrs) -> None:
        state = self.state(source_key)
        attrs.apply_to_inode(self.layer.volume.iget(state.ino))
        self.layer.volume.mark_dirty(state.ino)


class MonolithicSfs(BaseLayer):
    """Single-layer SFS: volume + cache + coherency fused."""

    max_under = 0
    ops_class = MonoOps

    def __init__(self, domain, device: BlockDevice, format_device: bool = False,
                 cache: bool = True) -> None:
        super().__init__(domain)
        if format_device:
            self.volume = Volume.mkfs(device)
        else:
            self.volume = Volume.mount(device)
        self.device = device
        self.cache_enabled = cache
        self._states: Dict[int, _MonoState] = {}
        self._states_by_source: Dict[Hashable, _MonoState] = {}

    def fs_type(self) -> str:
        return "mono-sfs"

    def _state(self, ino: int) -> _MonoState:
        state = self._states.get(ino)
        if state is None:
            state = _MonoState(ino)
            self._states[ino] = state
            self._states_by_source[("mono", self.oid, ino)] = state
        return state

    # ------------------------------------------------------------ naming face
    def _make_handle(self, ino: int, charge_open: bool = True) -> object:
        inode = self.volume.iget(ino)
        if inode.is_dir:
            return MonoDirectory(self, ino)
        if charge_open:
            return MonoFile(self, ino)
        handle = object.__new__(MonoFile)
        File.__init__(handle, self.domain)
        handle.fs = self
        handle.ino = ino
        handle.source_key = ("mono", self.oid, ino)
        return handle

    def _resolve_from(self, dir_ino: int, name: str) -> object:
        """The open path: lookup + access check + attribute access +
        one open state, all inside one layer."""
        components = names.split_name(name)
        current = dir_ino
        for component in components[:-1]:
            self.world.charge.fs_resolve()
            current = self.volume.lookup(current, component)
        self.world.charge.fs_resolve()
        ino = self.volume.lookup(current, components[-1])
        inode = self.volume.iget(ino)
        if inode.is_dir:
            return MonoDirectory(self, ino)
        self.world.charge.fs_access_check()
        self.world.charge.fs_attr_copy()
        return MonoFile(self, ino)

    @operation
    def resolve(self, name: str) -> object:
        return self._resolve_from(self.volume.sb.root_ino, name)

    @operation
    def bind(self, name: str, obj: object) -> None:
        raise FsError("monolithic SFS holds files; use create_file")

    @operation
    def unbind(self, name: str) -> object:
        names.validate_component(name)
        ino = self.volume.lookup(self.volume.sb.root_ino, name)
        self.volume.unlink(self.volume.sb.root_ino, name)
        self._states.pop(ino, None)
        return name

    @operation
    def rebind(self, name: str, obj: object) -> object:
        raise FsError("monolithic SFS does not support rebind")

    @operation
    def list_bindings(self):
        return sorted(self.volume.readdir(self.volume.sb.root_ino).items())

    @operation
    def create_file(self, name: str) -> File:
        inode = self.volume.create(self.volume.sb.root_ino, name, FileType.REGULAR)
        return MonoFile(self, inode.ino)

    @operation
    def create_dir(self, name: str) -> MonoDirectory:
        inode = self.volume.create(
            self.volume.sb.root_ino, name, FileType.DIRECTORY
        )
        return MonoDirectory(self, inode.ino)

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        root = self.volume.sb.root_ino
        self.volume.rename(root, old_name, root, new_name)

    # ---------------------------------------------------------------- data path
    def _fault_from_disk(self, ino: int):
        def fault(index: int, needed: AccessRights) -> CachedPage:
            data = self.volume.read_data(ino, index * PAGE_SIZE, PAGE_SIZE)
            return self._state(ino).store.install(index, data, needed)

        return fault

    def file_read(self, ino: int, offset: int, size: int) -> bytes:
        self.world.charge.fs_read_cpu()
        inode = self.volume.iget(ino)
        if offset >= inode.size:
            return b""
        size = min(size, inode.size - offset)
        state = self._state(ino)
        recovered = state.holders.collect_latest(offset, size)
        self._merge(state, recovered)
        if self.cache_enabled:
            data = state.store.read(offset, size, self._fault_from_disk(ino))
        else:
            data = self.volume.read_data(ino, offset, size)
        self.world.charge.memcpy(size)
        return data

    def file_write(self, ino: int, offset: int, data: bytes) -> int:
        self.world.charge.fs_write_cpu()
        state = self._state(ino)
        recovered = state.holders.acquire(
            None, offset, len(data), AccessRights.READ_WRITE
        )
        self._merge(state, recovered)
        self.world.charge.memcpy(len(data))
        if self.cache_enabled:
            state.store.write(offset, data, self._fault_from_disk(ino))
            inode = self.volume.iget(ino)
            if offset + len(data) > inode.size:
                inode.size = offset + len(data)
            inode.mtime_us = inode.ctime_us = int(self.world.clock.now_us)
            self.volume.mark_dirty(ino)
        else:
            self.volume.write_data(ino, offset, data)
        return len(data)

    def file_set_length(self, ino: int, length: int) -> None:
        state = self._state(ino)
        old = self.volume.iget(ino).size
        if length < old:
            if length % PAGE_SIZE:
                boundary = (length // PAGE_SIZE) * PAGE_SIZE
                recovered = state.holders.acquire(
                    None, boundary, PAGE_SIZE, AccessRights.READ_WRITE
                )
                self._merge(state, recovered)
            state.holders.invalidate(length, old - length)
            state.store.truncate_to(length)
        self.volume.truncate(ino, length)

    def file_sync(self, ino: int) -> None:
        state = self._state(ino)
        size = self.volume.iget(ino).size
        for index, page in state.store.dirty_pages():
            offset = index * PAGE_SIZE
            usable = min(PAGE_SIZE, max(0, size - offset))
            if usable:
                self.volume.write_data(ino, offset, page.snapshot()[:usable])
            page.dirty = False
        self.volume.sync()

    def _merge(self, state: _MonoState, recovered: Dict[int, bytes]) -> None:
        if not recovered:
            return
        if self.cache_enabled:
            for index, data in recovered.items():
                state.store.install(index, data, AccessRights.READ_WRITE, dirty=True)
        else:
            size = self.volume.iget(state.ino).size
            for index, data in sorted(recovered.items()):
                offset = index * PAGE_SIZE
                usable = min(PAGE_SIZE, max(0, size - offset))
                if usable:
                    self.volume.write_data(state.ino, offset, data[:usable])

    def _sync_impl(self) -> None:
        for ino in list(self._states):
            if self.volume.iget(ino).allocated:
                self.file_sync(ino)

    # --- mount lifecycle --------------------------------------------------------
    def unmount(self) -> int:
        """Flush every cached page and all metadata, then mark the
        volume CLEAN.  Returns blocks written."""
        self.sync_fs()
        return self.volume.unmount()

    def remount(self) -> None:
        """Drop in-memory volume state (and the page cache — its i-node
        keys may not survive a repair) and re-mount from the device."""
        self._states.clear()
        self._states_by_source.clear()
        self.volume = Volume.mount(self.device)
