"""Spring SFS — the storage file system (paper Figure 10).

"The Spring storage file system is actually implemented using two layers
... The base disk layer implements an on-disk UFS compatible file
system.  It does not, however, implement a coherency algorithm.
Instead, an instance of the coherency layer is stacked on the disk
layer, and all files are exported via the coherency layer."

This module assembles the three configurations Table 2 benchmarks:

* ``not_stacked``  — :class:`~repro.fs.monolithic.MonolithicSfs`;
* ``one_domain``   — coherency layer stacked on disk layer, both in one
  server domain (object invocations become local procedure calls);
* ``two_domains``  — each layer in its own domain (the paper's
  production choice: the disk layer can be locked in physical memory
  while the larger coherency-layer state stays pageable).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.errors import StackingError
from repro.ipc.domain import Credentials, Domain
from repro.ipc.node import Node
from repro.storage.block_device import BlockDevice

from repro.fs.coherency import CoherencyLayer
from repro.fs.disk_layer import DiskLayer
from repro.fs.fs_interfaces import StackableFs
from repro.fs.monolithic import MonolithicSfs

PLACEMENTS = ("not_stacked", "one_domain", "two_domains")


@dataclasses.dataclass
class SfsStack:
    """One assembled SFS and its constituent layers (for introspection
    by benchmarks and figure reproductions)."""

    top: StackableFs
    disk_layer: Optional[DiskLayer]
    coherency_layer: Optional[CoherencyLayer]
    placement: str

    @property
    def volume(self):
        """The on-disk volume at the bottom of this stack."""
        bottom = self.disk_layer if self.disk_layer is not None else self.top
        return bottom.volume  # type: ignore[attr-defined]

    def unmount(self) -> int:
        """Quiesce the whole stack: push dirty pages and attributes down
        every layer (``sync_fs``), then cleanly unmount the volume —
        ordered metadata flush, CLEAN superblock, backing-store flush.
        The stack stays usable afterwards (the superblock is lazily
        re-dirtied on the next mutation).  Returns blocks written."""
        self.top.sync_fs()
        bottom = self.disk_layer if self.disk_layer is not None else self.top
        return bottom.unmount()  # type: ignore[attr-defined]

    def remount(self) -> None:
        """Re-mount the volume from its device, dropping the bottom
        layer's in-memory metadata state (in-process reboot aid)."""
        bottom = self.disk_layer if self.disk_layer is not None else self.top
        bottom.remount()  # type: ignore[attr-defined]


def _server_domain(node: Node, name: str) -> Domain:
    return node.create_domain(name, Credentials(name, privileged=True))


def create_sfs(
    node: Node,
    device: BlockDevice,
    placement: str = "two_domains",
    cache: bool = True,
    format_device: bool = True,
    name: str = "sfs",
) -> SfsStack:
    """Build an SFS over ``device`` in the requested placement and bind
    it at ``/fs/<name>`` on the node."""
    if placement not in PLACEMENTS:
        raise StackingError(
            f"unknown placement {placement!r}; expected one of {PLACEMENTS}"
        )
    if placement == "not_stacked":
        domain = _server_domain(node, f"{name}-server")
        mono = MonolithicSfs(domain, device, format_device=format_device, cache=cache)
        node.fs_context.bind(name, mono)
        return SfsStack(mono, None, None, placement)

    if placement == "one_domain":
        domain = _server_domain(node, f"{name}-server")
        disk_domain = coherency_domain = domain
    else:
        disk_domain = _server_domain(node, f"{name}-disk")
        coherency_domain = _server_domain(node, f"{name}-coherency")

    disk = DiskLayer(disk_domain, device, format_device=format_device)
    coherency = CoherencyLayer(coherency_domain, cache=cache)
    coherency.stack_on(disk)
    # Administrative decision (sec. 4.4): export only the coherency layer;
    # the raw disk layer is reachable only by the coherency layer itself.
    node.fs_context.bind(name, coherency)
    return SfsStack(coherency, disk, coherency, placement)
