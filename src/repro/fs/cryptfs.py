"""CRYPTFS — an encryption layer (extension).

Encryption is one of the motivating extensions in the paper's
introduction ("Examples of new functionality that may need to be added
include compression, replication, encryption, distribution...").  Where
COMPFS compresses whole files (variable-length output), CRYPTFS uses a
length-preserving per-block stream cipher, so it exercises the *other*
transform-layer shape: block-for-block mapping between the exported and
underlying file, with per-block (not whole-file) cache invalidation.

Cipher: XOR with a SHA-256-based keystream per 4 KiB block — honest
keyed encryption for a simulator (documented as NOT cryptographically
reviewed; the point is the layer mechanics, not the cipher).

In spine terms the transform points are the decrypt on page-in and the
encrypt-and-write-through on page-out/merge (:class:`CryptOps`); the
naming face, binding, and attribute forwarding are all generic.
"""

from __future__ import annotations

import hashlib
from typing import Dict

from repro.errors import FsError

from repro.types import PAGE_SIZE, AccessRights, page_range
from repro.vm.page import PageStore, index_runs

from repro.fs.base import (
    BaseLayer,
    ChannelOps,
    LayerDirectory,
    LayerFile,
    LayerFileState,
)
from repro.fs.file import File


def keystream(key: bytes, block_index: int, length: int = PAGE_SIZE) -> bytes:
    """Deterministic per-block keystream: SHA-256 in counter mode."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(
            key + block_index.to_bytes(8, "little") + counter.to_bytes(8, "little")
        ).digest()
        counter += 1
    return bytes(out[:length])


def xor_block(data: bytes, key: bytes, block_index: int) -> bytes:
    stream = keystream(key, block_index, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


class CryptFileState(LayerFileState):
    def __init__(self, layer: "CryptFs", under_file: File) -> None:
        super().__init__(layer, under_file)
        self.plain = PageStore()          # decrypted block cache
        #: True once the lower layer refused a writable bind (mirrorfs);
        #: we then use the plain file interface instead of a channel.
        self.channel_refused = False

    def purge(self) -> None:
        super().purge()
        self.plain.clear()


class CryptFile(LayerFile):
    """An open handle to a CRYPTFS file (plaintext view; the length is
    preserved, so length/attribute forwarding is the generic default)."""


class CryptDirectory(LayerDirectory):
    pass


class CryptOps(ChannelOps):
    """CRYPTFS's transform points: decrypt on the way up, encrypt and
    write through on the way down.  Write-through means a syncing client
    is never registered as a writer (``register_writers`` off): the
    ciphertext below is already current, so there is nothing to recall
    from it later."""

    register_writers = False

    def merge_recovered(self, state, recovered: Dict[int, bytes]) -> None:
        self.layer._merge(state, recovered)

    def page_in(self, source_key, pager_object, offset, size, access) -> bytes:
        layer = self.layer
        state = self.state(source_key)
        requester = self.requester(source_key, pager_object)
        recovered = state.holders.acquire(requester, offset, size, access)
        self.merge_recovered(state, recovered)
        return state.plain.read(offset, size, layer._fault_decrypt(state, access))

    def page_in_range(
        self, source_key, pager_object, offset, min_size, max_size, access
    ) -> bytes:
        """Ranged page-in: fetch the missing ciphertext window from
        below in clustered ranged calls, decrypt per block, and serve
        the whole window — an upstream read-ahead hint survives the
        encryption layer instead of collapsing to one page."""
        layer = self.layer
        state = self.state(source_key)
        size = self.clamp_window(state, offset, min_size, max_size)
        if size == 0:
            return b""
        requester = self.requester(source_key, pager_object)
        recovered = state.holders.acquire(requester, offset, size, access)
        self.merge_recovered(state, recovered)
        layer._prefetch_decrypt(state, offset, size, access)
        return state.plain.read(offset, size, layer._fault_decrypt(state, access))

    def page_out(self, source_key, pager_object, offset, size, data, retain) -> None:
        state = self.state(source_key)
        self.writeback_bookkeeping(
            state, self.requester(source_key, pager_object), offset, size, retain
        )
        pages = {
            index: data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]
            for i, index in enumerate(page_range(offset, size))
        }
        self.merge_recovered(state, pages)

    def attr_write_out(self, source_key, pager_object, attrs) -> None:
        state = self.state(source_key)
        if attrs.size != state.under_file.get_length():
            self.layer.file_set_length(state, attrs.size)

    # --- cache side (from below): per-block invalidation -------------------
    def flush_back(self, state, offset, size) -> Dict[int, bytes]:
        state.holders.invalidate(offset, size)
        state.plain.drop_range(offset, size)
        return {}  # write-through: nothing modified held here

    def deny_writes(self, state, offset, size) -> Dict[int, bytes]:
        state.plain.downgrade_range(offset, size)
        return {}

    def write_back(self, state, offset, size) -> Dict[int, bytes]:
        return {}

    def delete_range(self, state, offset, size) -> None:
        state.holders.invalidate(offset, size)
        self.layer._drop_clean(state, offset, size)

    def zero_fill(self, state, offset, size) -> None:
        state.holders.invalidate(offset, size)
        self.layer._drop_clean(state, offset, size)

    def populate(self, state, offset, size, access, data) -> None:
        state.holders.invalidate(offset, size)
        self.layer._drop_clean(state, offset, size)

    def destroy_cache(self, state) -> None:
        state.plain.clear()
        state.down_channel = None

    def invalidate_attributes(self, state) -> None:
        pass  # attributes are not cached by this layer


class CryptFs(BaseLayer):
    """Length-preserving encryption layer (coherent: maintains a C-P
    channel to the layer below, like COMPFS case 2, but per-block)."""

    max_under = 1
    ops_class = CryptOps
    state_class = CryptFileState
    file_class = CryptFile
    directory_class = CryptDirectory

    def __init__(self, domain, key: bytes = b"spring-cryptfs-demo-key") -> None:
        super().__init__(domain)
        self.key = key

    def fs_type(self) -> str:
        return "cryptfs"

    # --- data path -----------------------------------------------------------
    def ensure_down(self, state: CryptFileState) -> bool:
        """Try to establish the coherency channel below.  Some layers
        (e.g. mirrorfs) refuse writable binds; CRYPTFS then degrades to
        plain file-interface access — still correct, just without the
        lower layer's coherency actions reaching our plaintext cache."""
        if state.down_channel is not None and not state.down_channel.closed:
            return True
        if state.channel_refused:
            return False
        try:
            return super().ensure_down(state)
        except FsError:
            state.channel_refused = True
            self.world.counters.inc("cryptfs.bind_refused")
            return False

    def _page_in_under(
        self, state: CryptFileState, index: int, access: AccessRights
    ) -> bytes:
        if self.ensure_down(state):
            return state.down_channel.pager_object.page_in(
                index * PAGE_SIZE, PAGE_SIZE, access
            )
        return state.under_file.read(index * PAGE_SIZE, PAGE_SIZE)

    def _page_push_under(self, state: CryptFileState, index: int, data: bytes) -> None:
        if self.ensure_down(state):
            state.down_channel.pager_object.sync(index * PAGE_SIZE, PAGE_SIZE, data)
        else:
            size = state.under_file.get_length()
            usable = min(PAGE_SIZE, max(0, size - index * PAGE_SIZE))
            if usable:
                state.under_file.write(index * PAGE_SIZE, data[:usable])

    def _fault_decrypt(self, state: CryptFileState, access: AccessRights):
        def fault(index: int, needed: AccessRights):
            effective = access if access.writable else needed
            ciphertext = self._page_in_under(state, index, effective)
            self.world.charge.decrypt(len(ciphertext))
            plaintext = xor_block(ciphertext, self.key, index)
            return state.plain.install(index, plaintext, effective)

        return fault

    def _prefetch_decrypt(
        self, state: CryptFileState, offset: int, size: int, access: AccessRights
    ) -> None:
        """Pull the missing blocks of ``[offset, offset + size)`` from
        below as contiguous ranged page-ins and install them decrypted.
        In degraded file-interface mode (channel refused) the per-page
        fault path handles them instead."""
        if not self.ensure_down(state):
            return
        missing = [i for i in page_range(offset, size) if state.plain.get(i) is None]
        for run_start, run_len in index_runs(missing):
            if run_len < 2:
                continue
            ciphertext = state.down_channel.pager_object.page_in_range(
                run_start * PAGE_SIZE,
                run_len * PAGE_SIZE,
                run_len * PAGE_SIZE,
                access,
            )
            self.world.charge.decrypt(len(ciphertext))
            for i in range(run_len):
                block = ciphertext[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]
                state.plain.install(
                    run_start + i, xor_block(block, self.key, run_start + i), access
                )

    def file_read(self, state: CryptFileState, offset: int, size: int) -> bytes:
        self.world.charge.fs_read_cpu()
        file_size = state.under_file.get_length()
        if offset >= file_size:
            return b""
        size = min(size, file_size - offset)
        recovered = state.holders.collect_latest(offset, size)
        self._merge(state, recovered)
        data = state.plain.read(
            offset, size, self._fault_decrypt(state, AccessRights.READ_ONLY)
        )
        self.world.charge.memcpy(size)
        return data

    def _extend(self, state: CryptFileState, old: int, new: int) -> None:
        """Grow the underlying file and make the new range read as
        plaintext zeros.  The hole the extension creates underneath is
        raw zeros — NOT valid ciphertext — so zero plaintext pages are
        recorded dirty and real encrypted zeros go down on flush."""
        state.under_file.set_length(new)
        first = old // PAGE_SIZE
        last = (new - 1) // PAGE_SIZE
        for index in range(first, last + 1):
            page_start = index * PAGE_SIZE
            if page_start >= old:
                state.plain.install(
                    index, b"", AccessRights.READ_WRITE, dirty=True
                )
            else:
                page = state.plain.get(index)
                if page is None:
                    page = self._fault_decrypt(state, AccessRights.READ_WRITE)(
                        index, AccessRights.READ_WRITE
                    )
                within = old - page_start
                page.data[within:] = bytes(PAGE_SIZE - within)
                page.dirty = True

    def file_write(self, state: CryptFileState, offset: int, data: bytes) -> int:
        self.world.charge.fs_write_cpu()
        recovered = state.holders.acquire(
            None, offset, len(data), AccessRights.READ_WRITE
        )
        self._merge(state, recovered)
        end = offset + len(data)
        old = state.under_file.get_length()
        if end > old:
            self._extend(state, old, end)
        state.plain.write(
            offset, data, self._fault_decrypt(state, AccessRights.READ_WRITE)
        )
        self.world.charge.memcpy(len(data))
        self._flush_range(state, offset, len(data))
        return len(data)

    def _flush_range(self, state: CryptFileState, offset: int, size: int) -> None:
        """Write-through: encrypt and push the touched blocks below.
        Contiguous dirty blocks go down as one ranged sync per run, so a
        big sequential write pays one invocation per run instead of one
        per 4 KB block."""
        pending: list = []  # contiguous (index, ciphertext) run
        for index in page_range(offset, size):
            page = state.plain.get(index)
            if page is None or not page.dirty:
                self._push_cipher_run(state, pending)
                continue
            self.world.charge.encrypt(PAGE_SIZE)
            pending.append((index, xor_block(page.snapshot(), self.key, index)))
            page.dirty = False
        self._push_cipher_run(state, pending)

    def _push_cipher_run(self, state: CryptFileState, pending: list) -> None:
        if not pending:
            return
        if len(pending) > 1 and self.ensure_down(state):
            data = b"".join(ciphertext for _, ciphertext in pending)
            state.down_channel.pager_object.sync_range(
                pending[0][0] * PAGE_SIZE, len(data), data
            )
        else:
            for index, ciphertext in pending:
                self._page_push_under(state, index, ciphertext)
        pending.clear()

    def file_set_length(self, state: CryptFileState, length: int) -> None:
        old = state.under_file.get_length()
        if length < old:
            if length % PAGE_SIZE:
                boundary = (length // PAGE_SIZE) * PAGE_SIZE
                recovered = state.holders.acquire(
                    None, boundary, PAGE_SIZE, AccessRights.READ_WRITE
                )
                self._merge(state, recovered)
            state.holders.invalidate(length, old - length)
            state.plain.truncate_to(length)
            state.under_file.set_length(length)
        elif length > old:
            self._extend(state, old, length)

    def file_sync(self, state: CryptFileState) -> None:
        self._flush_range(state, 0, state.under_file.get_length())
        state.under_file.sync()

    def _sync_impl(self) -> None:
        for state in self._states.values():
            self._flush_range(state, 0, state.under_file.get_length())

    def _merge(self, state: CryptFileState, recovered: Dict[int, bytes]) -> None:
        if not recovered:
            return
        for index, data in recovered.items():
            state.plain.install(index, data, AccessRights.READ_WRITE, dirty=True)
        first = min(recovered)
        last = max(recovered)
        self._flush_range(
            state, first * PAGE_SIZE, (last - first + 1) * PAGE_SIZE
        )

    def _drop_clean(self, state, offset: int, size: int) -> None:
        """Drop cached plaintext in the range — but never dirty pages:
        locally modified data supersedes any external invalidation and
        will be re-encrypted over it on the next flush."""
        for index, page in state.plain.drop_range(offset, size):
            if page.dirty:
                state.plain._pages[index] = page
