"""CRYPTFS — an encryption layer (extension).

Encryption is one of the motivating extensions in the paper's
introduction ("Examples of new functionality that may need to be added
include compression, replication, encryption, distribution...").  Where
COMPFS compresses whole files (variable-length output), CRYPTFS uses a
length-preserving per-block stream cipher, so it exercises the *other*
transform-layer shape: block-for-block mapping between the exported and
underlying file, with per-block (not whole-file) cache invalidation.

Cipher: XOR with a SHA-256-based keystream per 4 KiB block — honest
keyed encryption for a simulator (documented as NOT cryptographically
reviewed; the point is the layer mechanics, not the cipher).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, Optional

from repro.errors import FsError

from repro.ipc.invocation import operation
from repro.ipc.narrow import narrow
from repro.naming.context import NamingContext
from repro.types import PAGE_SIZE, AccessRights, page_range
from repro.vm.channel import BindResult, Channel
from repro.vm.memory_object import CacheManager
from repro.vm.page import PageStore, index_runs

from repro.fs.attributes import FileAttributes
from repro.fs.base import BaseLayer
from repro.fs.file import File
from repro.fs.holders import BlockHolderTable


def keystream(key: bytes, block_index: int, length: int = PAGE_SIZE) -> bytes:
    """Deterministic per-block keystream: SHA-256 in counter mode."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(
            key + block_index.to_bytes(8, "little") + counter.to_bytes(8, "little")
        ).digest()
        counter += 1
    return bytes(out[:length])


def xor_block(data: bytes, key: bytes, block_index: int) -> bytes:
    stream = keystream(key, block_index, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


class CryptFileState:
    def __init__(self, layer: "CryptFs", under_file: File) -> None:
        self.layer = layer
        self.under_file = under_file
        self.under_key = under_file.source_key
        self.source_key: Hashable = ("cryptfs", layer.oid, self.under_key)
        self.plain = PageStore()          # decrypted block cache
        self.holders = BlockHolderTable()
        self.down_channel: Optional[Channel] = None
        #: True once the lower layer refused a writable bind (mirrorfs);
        #: we then use the plain file interface instead of a channel.
        self.channel_refused = False


class CryptFile(File):
    def __init__(self, layer: "CryptFs", state: CryptFileState) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.state = state
        self.source_key = state.source_key
        layer.world.charge.fs_open_state()

    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        return self.layer.bind_source(
            self.source_key,
            cache_manager,
            requested_access,
            offset,
            label=f"cryptfs:{self.state.under_key}",
        )

    @operation
    def get_length(self) -> int:
        return self.state.under_file.get_length()  # length-preserving

    @operation
    def set_length(self, length: int) -> None:
        self.layer.file_set_length(self.state, length)

    @operation
    def read(self, offset: int, size: int) -> bytes:
        return self.layer.file_read(self.state, offset, size)

    @operation
    def write(self, offset: int, data: bytes) -> int:
        return self.layer.file_write(self.state, offset, data)

    @operation
    def get_attributes(self) -> FileAttributes:
        self.layer.world.charge.fs_attr_copy()
        return self.state.under_file.get_attributes()

    @operation
    def check_access(self, access: AccessRights) -> None:
        self.layer.world.charge.fs_access_check()

    @operation
    def sync(self) -> None:
        self.layer.file_sync(self.state)


class CryptDirectory(NamingContext):
    def __init__(self, layer: "CryptFs", under_context: NamingContext) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.under_context = under_context

    @operation
    def resolve(self, name: str) -> object:
        return self.layer.wrap_resolved(self.under_context.resolve(name))

    @operation
    def bind(self, name: str, obj: object) -> None:
        self.under_context.bind(name, obj)

    @operation
    def unbind(self, name: str) -> object:
        self.layer.purge_named(self.under_context, name)
        return self.under_context.unbind(name)

    @operation
    def rebind(self, name: str, obj: object) -> object:
        return self.under_context.rebind(name, obj)

    @operation
    def list_bindings(self):
        return [
            (name, self.layer.wrap_resolved(obj, charge_open=False))
            for name, obj in self.under_context.list_bindings()
        ]

    @operation
    def create_file(self, name: str) -> File:
        return self.layer.wrap_resolved(self.under_context.create_file(name))

    @operation
    def create_dir(self, name: str) -> "CryptDirectory":
        return CryptDirectory(self.layer, self.under_context.create_dir(name))

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        self.under_context.rename(old_name, new_name)


class CryptFs(BaseLayer):
    """Length-preserving encryption layer (coherent: maintains a C-P
    channel to the layer below, like COMPFS case 2, but per-block)."""

    max_under = 1

    def __init__(self, domain, key: bytes = b"spring-cryptfs-demo-key") -> None:
        super().__init__(domain)
        self.key = key
        self._states: Dict[Hashable, CryptFileState] = {}
        self._states_by_source: Dict[Hashable, CryptFileState] = {}

    def fs_type(self) -> str:
        return "cryptfs"

    # --- naming face (same wrapping pattern as the other layers) ----------
    @operation
    def resolve(self, name: str) -> object:
        return self.wrap_resolved(self.under.resolve(name))

    @operation
    def bind(self, name: str, obj: object) -> None:
        self.under.bind(name, obj)

    @operation
    def unbind(self, name: str) -> object:
        self.purge_named(self.under, name)
        return self.under.unbind(name)

    @operation
    def rebind(self, name: str, obj: object) -> object:
        return self.under.rebind(name, obj)

    @operation
    def list_bindings(self):
        return [
            (name, self.wrap_resolved(obj, charge_open=False))
            for name, obj in self.under.list_bindings()
        ]

    @operation
    def create_file(self, name: str) -> File:
        return self.wrap_resolved(self.under.create_file(name))

    @operation
    def create_dir(self, name: str) -> CryptDirectory:
        return CryptDirectory(self, self.under.create_dir(name))

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        self.under.rename(old_name, new_name)

    # ------------------------------------------------------ unlink hygiene
    def purge_named(self, under_context, name: str) -> None:
        """Drop per-file state before an unlink; the freed i-node may be
        reused and stale cached state must not leak into the new file."""
        try:
            obj = under_context.resolve(name)
        except Exception:
            return
        under_file = narrow(obj, File)
        if under_file is not None:
            self._purge_state(under_file.source_key)

    def _purge_state(self, under_key) -> None:
        state = self._states.pop(under_key, None)
        if state is None:
            return
        self._states_by_source.pop(state.source_key, None)
        state.holders.invalidate(0, 2**62)
        state.plain.clear()
        if state.down_channel is not None and not state.down_channel.closed:
            state.down_channel.close()
            state.down_channel = None

    def wrap_resolved(self, obj: object, charge_open: bool = True) -> object:
        under_file = narrow(obj, File)
        if under_file is not None:
            if charge_open:
                under_file.check_access(AccessRights.READ_ONLY)
                under_file.get_attributes()
            state = self._state_for(under_file)
            if charge_open:
                return CryptFile(self, state)
            handle = object.__new__(CryptFile)
            File.__init__(handle, self.domain)
            handle.layer = self
            handle.state = state
            handle.source_key = state.source_key
            return handle
        under_context = narrow(obj, NamingContext)
        if under_context is not None:
            return CryptDirectory(self, under_context)
        return obj

    def _state_for(self, under_file: File) -> CryptFileState:
        state = self._states.get(under_file.source_key)
        if state is None:
            state = CryptFileState(self, under_file)
            self._states[state.under_key] = state
            self._states_by_source[state.source_key] = state
        return state

    # --- data path -----------------------------------------------------------
    def _ensure_down(self, state: CryptFileState) -> bool:
        """Try to establish the coherency channel below.  Some layers
        (e.g. mirrorfs) refuse writable binds; CRYPTFS then degrades to
        plain file-interface access — still correct, just without the
        lower layer's coherency actions reaching our plaintext cache."""
        if state.down_channel is not None and not state.down_channel.closed:
            return True
        if state.channel_refused:
            return False
        try:
            state.down_channel = self.bind_below(
                state, state.under_file, AccessRights.READ_WRITE
            )
            return True
        except FsError:
            state.channel_refused = True
            self.world.counters.inc("cryptfs.bind_refused")
            return False

    def _page_in_under(
        self, state: CryptFileState, index: int, access: AccessRights
    ) -> bytes:
        if self._ensure_down(state):
            return state.down_channel.pager_object.page_in(
                index * PAGE_SIZE, PAGE_SIZE, access
            )
        return state.under_file.read(index * PAGE_SIZE, PAGE_SIZE)

    def _page_push_under(self, state: CryptFileState, index: int, data: bytes) -> None:
        if self._ensure_down(state):
            state.down_channel.pager_object.sync(index * PAGE_SIZE, PAGE_SIZE, data)
        else:
            size = state.under_file.get_length()
            usable = min(PAGE_SIZE, max(0, size - index * PAGE_SIZE))
            if usable:
                state.under_file.write(index * PAGE_SIZE, data[:usable])

    def _fault_decrypt(self, state: CryptFileState, access: AccessRights):
        def fault(index: int, needed: AccessRights):
            effective = access if access.writable else needed
            ciphertext = self._page_in_under(state, index, effective)
            self.world.charge.decrypt(len(ciphertext))
            plaintext = xor_block(ciphertext, self.key, index)
            return state.plain.install(index, plaintext, effective)

        return fault

    def file_read(self, state: CryptFileState, offset: int, size: int) -> bytes:
        self.world.charge.fs_read_cpu()
        file_size = state.under_file.get_length()
        if offset >= file_size:
            return b""
        size = min(size, file_size - offset)
        recovered = state.holders.collect_latest(offset, size)
        self._merge(state, recovered)
        data = state.plain.read(
            offset, size, self._fault_decrypt(state, AccessRights.READ_ONLY)
        )
        self.world.charge.memcpy(size)
        return data

    def _extend(self, state: CryptFileState, old: int, new: int) -> None:
        """Grow the underlying file and make the new range read as
        plaintext zeros.  The hole the extension creates underneath is
        raw zeros — NOT valid ciphertext — so zero plaintext pages are
        recorded dirty and real encrypted zeros go down on flush."""
        state.under_file.set_length(new)
        first = old // PAGE_SIZE
        last = (new - 1) // PAGE_SIZE
        for index in range(first, last + 1):
            page_start = index * PAGE_SIZE
            if page_start >= old:
                state.plain.install(
                    index, b"", AccessRights.READ_WRITE, dirty=True
                )
            else:
                page = state.plain.get(index)
                if page is None:
                    page = self._fault_decrypt(state, AccessRights.READ_WRITE)(
                        index, AccessRights.READ_WRITE
                    )
                within = old - page_start
                page.data[within:] = bytes(PAGE_SIZE - within)
                page.dirty = True

    def file_write(self, state: CryptFileState, offset: int, data: bytes) -> int:
        self.world.charge.fs_write_cpu()
        recovered = state.holders.acquire(
            None, offset, len(data), AccessRights.READ_WRITE
        )
        self._merge(state, recovered)
        end = offset + len(data)
        old = state.under_file.get_length()
        if end > old:
            self._extend(state, old, end)
        state.plain.write(
            offset, data, self._fault_decrypt(state, AccessRights.READ_WRITE)
        )
        self.world.charge.memcpy(len(data))
        self._flush_range(state, offset, len(data))
        return len(data)

    def _flush_range(self, state: CryptFileState, offset: int, size: int) -> None:
        """Write-through: encrypt and push the touched blocks below.
        Contiguous dirty blocks go down as one ranged sync per run, so a
        big sequential write pays one invocation per run instead of one
        per 4 KB block."""
        pending: list = []  # contiguous (index, ciphertext) run
        for index in page_range(offset, size):
            page = state.plain.get(index)
            if page is None or not page.dirty:
                self._push_run(state, pending)
                continue
            self.world.charge.encrypt(PAGE_SIZE)
            pending.append((index, xor_block(page.snapshot(), self.key, index)))
            page.dirty = False
        self._push_run(state, pending)

    def _push_run(self, state: CryptFileState, pending: list) -> None:
        if not pending:
            return
        if len(pending) > 1 and self._ensure_down(state):
            data = b"".join(ciphertext for _, ciphertext in pending)
            state.down_channel.pager_object.sync_range(
                pending[0][0] * PAGE_SIZE, len(data), data
            )
        else:
            for index, ciphertext in pending:
                self._page_push_under(state, index, ciphertext)
        pending.clear()

    def file_set_length(self, state: CryptFileState, length: int) -> None:
        old = state.under_file.get_length()
        if length < old:
            if length % PAGE_SIZE:
                boundary = (length // PAGE_SIZE) * PAGE_SIZE
                recovered = state.holders.acquire(
                    None, boundary, PAGE_SIZE, AccessRights.READ_WRITE
                )
                self._merge(state, recovered)
            state.holders.invalidate(length, old - length)
            state.plain.truncate_to(length)
            state.under_file.set_length(length)
        elif length > old:
            self._extend(state, old, length)

    def file_sync(self, state: CryptFileState) -> None:
        self._flush_range(state, 0, state.under_file.get_length())
        state.under_file.sync()

    def _sync_impl(self) -> None:
        for state in self._states.values():
            self._flush_range(state, 0, state.under_file.get_length())

    def _merge(self, state: CryptFileState, recovered: Dict[int, bytes]) -> None:
        if not recovered:
            return
        for index, data in recovered.items():
            state.plain.install(index, data, AccessRights.READ_WRITE, dirty=True)
        first = min(recovered)
        last = max(recovered)
        self._flush_range(
            state, first * PAGE_SIZE, (last - first + 1) * PAGE_SIZE
        )

    # --- pager hooks (clients of file_CRYPT) ----------------------------------
    def _pager_page_in(
        self, source_key, pager_object, offset: int, size: int, access: AccessRights
    ) -> bytes:
        state = self._states_by_source[source_key]
        requester = None
        for channel in self.channels.channels_for(source_key):
            if channel.pager_object is pager_object:
                requester = channel
        recovered = state.holders.acquire(requester, offset, size, access)
        self._merge(state, recovered)
        return state.plain.read(offset, size, self._fault_decrypt(state, access))

    def _pager_page_in_range(
        self, source_key, pager_object, offset, min_size, max_size, access
    ) -> bytes:
        """Ranged page-in: fetch the missing ciphertext window from
        below in clustered ranged calls, decrypt per block, and serve
        the whole window — an upstream read-ahead hint survives the
        encryption layer instead of collapsing to one page."""
        state = self._states_by_source[source_key]
        file_size = state.under_file.get_length()
        size = min(max_size, max(min_size, file_size - offset))
        size = max(size, 0)
        if size == 0:
            return b""
        requester = None
        for channel in self.channels.channels_for(source_key):
            if channel.pager_object is pager_object:
                requester = channel
        recovered = state.holders.acquire(requester, offset, size, access)
        self._merge(state, recovered)
        self._prefetch_decrypt(state, offset, size, access)
        return state.plain.read(offset, size, self._fault_decrypt(state, access))

    def _prefetch_decrypt(
        self, state: CryptFileState, offset: int, size: int, access: AccessRights
    ) -> None:
        """Pull the missing blocks of ``[offset, offset + size)`` from
        below as contiguous ranged page-ins and install them decrypted.
        In degraded file-interface mode (channel refused) the per-page
        fault path handles them instead."""
        if not self._ensure_down(state):
            return
        missing = [i for i in page_range(offset, size) if state.plain.get(i) is None]
        for run_start, run_len in index_runs(missing):
            if run_len < 2:
                continue
            ciphertext = state.down_channel.pager_object.page_in_range(
                run_start * PAGE_SIZE,
                run_len * PAGE_SIZE,
                run_len * PAGE_SIZE,
                access,
            )
            self.world.charge.decrypt(len(ciphertext))
            for i in range(run_len):
                block = ciphertext[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]
                state.plain.install(
                    run_start + i, xor_block(block, self.key, run_start + i), access
                )

    def _pager_page_out(
        self, source_key, pager_object, offset: int, size: int, data: bytes, retain
    ) -> None:
        state = self._states_by_source[source_key]
        for channel in self.channels.channels_for(source_key):
            if channel.pager_object is pager_object:
                if retain is None:
                    state.holders.forget_range(channel, offset, size)
                elif retain is AccessRights.READ_ONLY:
                    state.holders.record(
                        channel, offset, size, AccessRights.READ_ONLY
                    )
        pages = {
            index: data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]
            for i, index in enumerate(page_range(offset, size))
        }
        self._merge(state, pages)

    def _pager_attr_page_in(self, source_key, pager_object) -> FileAttributes:
        state = self._states_by_source[source_key]
        return state.under_file.get_attributes()

    def _pager_attr_write_out(self, source_key, pager_object, attrs) -> None:
        state = self._states_by_source[source_key]
        if attrs.size != state.under_file.get_length():
            self.file_set_length(state, attrs.size)

    def _on_channel_closed(self, source_key, channel: Channel) -> None:
        state = self._states_by_source.get(source_key)
        if state is not None:
            state.holders.drop_channel(channel)

    # --- cache hooks (from below): per-block invalidation ----------------------
    def _cache_flush_back(self, state, offset: int, size: int) -> Dict[int, bytes]:
        state.holders.invalidate(offset, size)
        state.plain.drop_range(offset, size)
        return {}  # write-through: nothing modified held here

    def _cache_deny_writes(self, state, offset: int, size: int) -> Dict[int, bytes]:
        state.plain.downgrade_range(offset, size)
        return {}

    def _cache_write_back(self, state, offset: int, size: int) -> Dict[int, bytes]:
        return {}

    def _cache_delete_range(self, state, offset: int, size: int) -> None:
        state.holders.invalidate(offset, size)
        self._drop_clean(state, offset, size)

    def _drop_clean(self, state, offset: int, size: int) -> None:
        """Drop cached plaintext in the range — but never dirty pages:
        locally modified data supersedes any external invalidation and
        will be re-encrypted over it on the next flush."""
        for index, page in state.plain.drop_range(offset, size):
            if page.dirty:
                state.plain._pages[index] = page

    def _cache_zero_fill(self, state, offset: int, size: int) -> None:
        state.holders.invalidate(offset, size)
        self._drop_clean(state, offset, size)

    def _cache_populate(self, state, offset, size, access, data) -> None:
        state.holders.invalidate(offset, size)
        self._drop_clean(state, offset, size)

    def _cache_destroy(self, state) -> None:
        state.plain.clear()
        state.down_channel = None

    def _cache_invalidate_attributes(self, state) -> None:
        pass  # attributes are not cached by this layer

    def _cache_write_back_attributes(self, state) -> Optional[FileAttributes]:
        return None
