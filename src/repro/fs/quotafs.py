"""QUOTAFS — a policy layer enforcing byte quotas (extension).

Demonstrates the remaining class of layers the architecture supports:
*policy* layers that neither transform nor replicate data, but restrict
operations — the "extended file attributes" family from the paper's
introduction.  QUOTAFS tracks the bytes stored under it and rejects
writes/extensions that would exceed a configured budget.

Accounting notes:

* usage is tracked by file length deltas, the same quantity the
  attribute-coherency machinery carries, so a quota layer composes with
  any underlying stack;
* mappings are granted read-only unless the quota has headroom for the
  mapped range — a writable mapping could otherwise bypass the check
  (same reasoning as TransformFile denying mappings, sec. 5).

As a layer it is the generic pass-through plus three interceptions on
the file face (bind / write / set_length) and a refunding unlink.
"""

from __future__ import annotations

from repro.errors import FsError, NoSpaceError
from repro.ipc.invocation import operation
from repro.ipc.narrow import narrow
from repro.types import AccessRights
from repro.vm.channel import BindResult
from repro.vm.memory_object import CacheManager

from repro.fs.base import BaseLayer, ForwardingFile, LayerDirectory
from repro.fs.file import File


class QuotaExceededError(NoSpaceError):
    """The write would exceed the layer's byte budget (EDQUOT)."""


class QuotaFile(ForwardingFile):
    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        if requested_access.writable and self.layer.remaining() <= 0:
            raise QuotaExceededError(
                "writable mapping denied: quota exhausted"
            )
        return self.state.under_file.bind(
            cache_manager, requested_access, offset, length
        )

    @operation
    def set_length(self, length: int) -> None:
        old = self.state.under_file.get_length()
        self.layer.charge_growth(length - old)
        self.state.under_file.set_length(length)

    @operation
    def write(self, offset: int, data: bytes) -> int:
        old = self.state.under_file.get_length()
        growth = max(0, offset + len(data) - old)
        self.layer.charge_growth(growth)
        return self.state.under_file.write(offset, data)


class QuotaDirectory(LayerDirectory):
    @operation
    def unbind(self, name: str) -> object:
        return self.layer.unbind_in(self.under_context, name)


class QuotaFs(BaseLayer):
    """See module docstring."""

    file_class = QuotaFile
    directory_class = QuotaDirectory

    def __init__(self, domain, budget_bytes: int) -> None:
        super().__init__(domain)
        if budget_bytes < 0:
            raise FsError("quota budget must be non-negative")
        self.budget_bytes = budget_bytes
        self.used_bytes = 0

    def fs_type(self) -> str:
        return "quotafs"

    # --- accounting -----------------------------------------------------
    def remaining(self) -> int:
        return self.budget_bytes - self.used_bytes

    def charge_growth(self, delta: int) -> None:
        """Account a length change; rejects growth past the budget.
        Shrinkage refunds."""
        if delta > 0 and self.used_bytes + delta > self.budget_bytes:
            self.world.counters.inc("quotafs.denied")
            raise QuotaExceededError(
                f"quota exceeded: used {self.used_bytes} + {delta} > "
                f"budget {self.budget_bytes}"
            )
        self.used_bytes += delta
        if self.used_bytes < 0:
            self.used_bytes = 0

    def unbind_in(self, context, name: str):
        """Unlink with refund: credit the removed file's bytes."""
        try:
            target = context.resolve(name)
        except Exception:
            target = None
        under_file = narrow(target, File)
        size = under_file.get_length() if under_file is not None else 0
        result = context.unbind(name)
        self.charge_growth(-size)
        return result

    @operation
    def unbind(self, name: str) -> object:
        return self.unbind_in(self.under, name)
