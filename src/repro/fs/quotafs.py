"""QUOTAFS — a policy layer enforcing byte quotas (extension).

Demonstrates the remaining class of layers the architecture supports:
*policy* layers that neither transform nor replicate data, but restrict
operations — the "extended file attributes" family from the paper's
introduction.  QUOTAFS tracks the bytes stored under it and rejects
writes/extensions that would exceed a configured budget.

Accounting notes:

* usage is tracked by file length deltas, the same quantity the
  attribute-coherency machinery carries, so a quota layer composes with
  any underlying stack;
* mappings are granted read-only unless the quota has headroom for the
  mapped range — a writable mapping could otherwise bypass the check
  (same reasoning as TransformFile denying mappings, sec. 5).
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.errors import FsError, NoSpaceError
from repro.ipc.invocation import operation
from repro.ipc.narrow import narrow
from repro.naming.context import NamingContext
from repro.types import AccessRights
from repro.vm.channel import BindResult
from repro.vm.memory_object import CacheManager

from repro.fs.attributes import FileAttributes
from repro.fs.base import BaseLayer
from repro.fs.file import File


class QuotaExceededError(NoSpaceError):
    """The write would exceed the layer's byte budget (EDQUOT)."""


class QuotaFile(File):
    def __init__(self, layer: "QuotaFs", under_file: File) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.under_file = under_file
        self.source_key: Hashable = ("quotafs", layer.oid, under_file.source_key)
        layer.world.charge.fs_open_state()

    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        if requested_access.writable and self.layer.remaining() <= 0:
            raise QuotaExceededError(
                "writable mapping denied: quota exhausted"
            )
        return self.under_file.bind(cache_manager, requested_access, offset, length)

    @operation
    def get_length(self) -> int:
        return self.under_file.get_length()

    @operation
    def set_length(self, length: int) -> None:
        old = self.under_file.get_length()
        self.layer.charge_growth(length - old)
        self.under_file.set_length(length)

    @operation
    def read(self, offset: int, size: int) -> bytes:
        return self.under_file.read(offset, size)

    @operation
    def write(self, offset: int, data: bytes) -> int:
        old = self.under_file.get_length()
        growth = max(0, offset + len(data) - old)
        self.layer.charge_growth(growth)
        return self.under_file.write(offset, data)

    @operation
    def get_attributes(self) -> FileAttributes:
        return self.under_file.get_attributes()

    @operation
    def check_access(self, access: AccessRights) -> None:
        self.under_file.check_access(access)

    @operation
    def sync(self) -> None:
        self.under_file.sync()


class QuotaDirectory(NamingContext):
    def __init__(self, layer: "QuotaFs", under_context: NamingContext) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.under_context = under_context

    @operation
    def resolve(self, name: str) -> object:
        return self.layer.wrap_resolved(self.under_context.resolve(name))

    @operation
    def bind(self, name: str, obj: object) -> None:
        self.under_context.bind(name, obj)

    @operation
    def unbind(self, name: str) -> object:
        return self.layer.unbind_in(self.under_context, name)

    @operation
    def rebind(self, name: str, obj: object) -> object:
        return self.under_context.rebind(name, obj)

    @operation
    def list_bindings(self):
        return [
            (name, self.layer.wrap_resolved(obj, charge_open=False))
            for name, obj in self.under_context.list_bindings()
        ]

    @operation
    def create_file(self, name: str) -> File:
        return self.layer.wrap_resolved(self.under_context.create_file(name))

    @operation
    def create_dir(self, name: str) -> "QuotaDirectory":
        return QuotaDirectory(self.layer, self.under_context.create_dir(name))

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        self.under_context.rename(old_name, new_name)


class QuotaFs(BaseLayer):
    """See module docstring."""

    max_under = 1

    def __init__(self, domain, budget_bytes: int) -> None:
        super().__init__(domain)
        if budget_bytes < 0:
            raise FsError("quota budget must be non-negative")
        self.budget_bytes = budget_bytes
        self.used_bytes = 0

    def fs_type(self) -> str:
        return "quotafs"

    # --- accounting -----------------------------------------------------
    def remaining(self) -> int:
        return self.budget_bytes - self.used_bytes

    def charge_growth(self, delta: int) -> None:
        """Account a length change; rejects growth past the budget.
        Shrinkage refunds."""
        if delta > 0 and self.used_bytes + delta > self.budget_bytes:
            self.world.counters.inc("quotafs.denied")
            raise QuotaExceededError(
                f"quota exceeded: used {self.used_bytes} + {delta} > "
                f"budget {self.budget_bytes}"
            )
        self.used_bytes += delta
        if self.used_bytes < 0:
            self.used_bytes = 0

    def unbind_in(self, context, name: str):
        """Unlink with refund: credit the removed file's bytes."""
        try:
            target = context.resolve(name)
        except Exception:
            target = None
        under_file = narrow(target, File)
        size = under_file.get_length() if under_file is not None else 0
        result = context.unbind(name)
        self.charge_growth(-size)
        return result

    # --- naming face ------------------------------------------------------
    @operation
    def resolve(self, name: str) -> object:
        return self.wrap_resolved(self.under.resolve(name))

    @operation
    def bind(self, name: str, obj: object) -> None:
        self.under.bind(name, obj)

    @operation
    def unbind(self, name: str) -> object:
        return self.unbind_in(self.under, name)

    @operation
    def rebind(self, name: str, obj: object) -> object:
        return self.under.rebind(name, obj)

    @operation
    def list_bindings(self):
        return [
            (name, self.wrap_resolved(obj, charge_open=False))
            for name, obj in self.under.list_bindings()
        ]

    @operation
    def create_file(self, name: str) -> File:
        return self.wrap_resolved(self.under.create_file(name))

    @operation
    def create_dir(self, name: str) -> QuotaDirectory:
        return QuotaDirectory(self, self.under.create_dir(name))

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        self.under.rename(old_name, new_name)

    def wrap_resolved(self, obj: object, charge_open: bool = True) -> object:
        under_file = narrow(obj, File)
        if under_file is not None:
            if charge_open:
                under_file.check_access(AccessRights.READ_ONLY)
                under_file.get_attributes()
                return QuotaFile(self, under_file)
            handle = object.__new__(QuotaFile)
            File.__init__(handle, self.domain)
            handle.layer = self
            handle.under_file = under_file
            handle.source_key = ("quotafs", self.oid, under_file.source_key)
            return handle
        under_context = narrow(obj, NamingContext)
        if under_context is not None:
            return QuotaDirectory(self, under_context)
        return obj
