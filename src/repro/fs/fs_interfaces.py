"""The file system interface hierarchy (paper Figure 8).

::

    fs        naming_context
      \\          /
      stackable_fs          stackable_fs_creator

A ``stackable_fs`` is both a file system and a naming context, so an
instance can be bound into the name space directly and its files
resolved through it.  Creators are registered under ``/fs_creators`` and
used by administrators to instantiate layers (paper sec. 4.4).
"""

from __future__ import annotations

import abc
from typing import List

from repro.ipc.invocation import operation
from repro.ipc.object import SpringObject
from repro.naming.context import NamingContext


class Fs(SpringObject, abc.ABC):
    """The base file system interface."""

    @abc.abstractmethod
    def fs_type(self) -> str:
        """Short type tag, e.g. ``"sfs"``, ``"compfs"``."""

    @abc.abstractmethod
    def sync_fs(self) -> None:
        """Flush everything this file system caches toward storage."""


class StackableFs(Fs, NamingContext, abc.ABC):
    """A file system that can be composed on top of other file systems.

    ``stack_on`` may be called more than once — "the maximum number of
    file systems a particular layer may be stacked on is implementation
    dependent" (sec. 4.4); mirroring layers use two.
    """

    @abc.abstractmethod
    def stack_on(self, underlying: "StackableFs") -> None:
        """Attach this (not yet active) layer on top of ``underlying``."""

    @abc.abstractmethod
    def under_layers(self) -> List["StackableFs"]:
        """The file systems this layer is stacked on (possibly empty for
        base file systems)."""


class StackableFsCreator(SpringObject, abc.ABC):
    """Factory for instances of one file system type (paper sec. 4.4).

    "When a file system creator is started, it registers itself in a
    well-known place e.g. /fs_creators/dfs_creator."
    """

    @abc.abstractmethod
    def create(self) -> StackableFs:
        """Return a fresh, unstacked instance of the file system type."""

    @operation
    def creator_type(self) -> str:
        """Type tag of the file systems this creator makes."""
        return self.create_type_tag()

    def create_type_tag(self) -> str:
        """Overridable non-operation helper for creator_type."""
        return "unknown"
