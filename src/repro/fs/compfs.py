"""COMPFS — the compression file system layer (paper sec. 4.2.1).

"Suppose we would like to implement a compression file system (COMPFS).
We can use COMPFS to save disk space by compressing all data before
writing it out and by uncompressing all data read from the disk.  Since
we are not interested in rewriting an on-disk file system, we can
implement COMPFS as a layer on top of a base file system (SFS)."

The two design points the paper walks through are both implemented and
selected per instance:

* ``coherent=False`` — **case 1 (Figure 5)**: COMPFS accesses the
  underlying file through the plain file interface and caches plaintext.
  Mappings/reads of file_COMP and direct access to file_SFS are *not*
  coherent: a direct write to the underlying file leaves COMPFS's
  plaintext cache stale (the staleness window Figure 5 warns about, and
  which ``benchmarks/bench_fig05_compfs_case1.py`` demonstrates).
* ``coherent=True`` — **case 2 (Figure 6)**: COMPFS additionally acts
  as a cache manager for the underlying file by binding to it (the
  C3-P3 connection).  Direct writes to file_SFS now flush COMPFS's
  plaintext cache, and COMPFS writes through immediately, so all views
  stay coherent.

On-disk format of the underlying file: ``b"CZ01" + u64 plaintext size +
zlib stream``.  Compression is real (zlib), so the space savings COMPFS
exists for are measurable.

COMPFS is the paper's canonical *transform* layer: in spine terms its
override points are the decode on page-in and the encode on write-back
(:class:`CompOps`), plus the plaintext view of lengths and attributes.
Everything else — naming, binding, holder fan-out — is the generic
runtime.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, Optional

from repro.errors import FsError
from repro.types import PAGE_SIZE, AccessRights, page_range
from repro.vm.page import PageStore

from repro.fs.attributes import FileAttributes
from repro.fs.base import (
    BaseLayer,
    ChannelOps,
    LayerDirectory,
    LayerFile,
    LayerFileState,
)
from repro.fs.file import File

MAGIC = b"CZ01"
_HEADER = struct.Struct("<4sQ")


def pack_compressed(plaintext: bytes, level: int = 6) -> bytes:
    return _HEADER.pack(MAGIC, len(plaintext)) + zlib.compress(plaintext, level)


def unpack_compressed(payload: bytes) -> bytes:
    if len(payload) == 0:
        return b""
    if len(payload) < _HEADER.size:
        raise FsError("underlying file too short to be a COMPFS file")
    magic, plain_size = _HEADER.unpack_from(payload)
    if magic != MAGIC:
        raise FsError("underlying file is not in COMPFS format")
    plaintext = zlib.decompress(payload[_HEADER.size :])
    if len(plaintext) != plain_size:
        raise FsError(
            f"COMPFS header claims {plain_size} bytes, got {len(plaintext)}"
        )
    return plaintext


class CompFileState(LayerFileState):
    """Per-file state: plaintext cache + upstream holders + downstream
    channel (case 2 only)."""

    def __init__(self, layer: "CompFs", under_file: File) -> None:
        super().__init__(layer, under_file)
        self.plain = PageStore()
        self.plain_size: Optional[int] = None  # None = not loaded
        self.dirty = False
        #: True while _write_through is rewriting the underlying file.
        #: The lower layer's coherency actions during that window are
        #: echoes of our own write — they must not invalidate the (still
        #: current) plaintext or our clients' caches.
        self.writing_through = False

    def purge(self) -> None:
        super().purge()
        self.plain.clear()
        self.plain_size = None
        self.dirty = False


class CompFile(LayerFile):
    """An open handle to a COMPFS file (plaintext view).

    Binds to file_COMP are handled by COMPFS itself in both cases —
    plaintext differs from the stored data, so the underlying cache can
    never be shared (paper sec. 4.2.2 last paragraph) — which is exactly
    the generic :class:`LayerFile` behaviour.
    """


class CompDirectory(LayerDirectory):
    """Directory wrapper exporting COMPFS files."""


class CompOps(ChannelOps):
    """COMPFS's transform points: pages are served from / merged into the
    whole-file plaintext cache, and every modification is re-encoded and
    written through (case 2).  The compressed image below is held
    read-only, so cache-side flushes return nothing — any change to it
    just drops the derived plaintext."""

    def merge_recovered(self, state, recovered: Dict[int, bytes]) -> None:
        self.layer._merge(state, recovered)

    def page_in(self, source_key, pager_object, offset, size, access) -> bytes:
        layer = self.layer
        state = self.state(source_key)
        layer._ensure_loaded(state)
        requester = self.requester(source_key, pager_object)
        recovered = state.holders.acquire(requester, offset, size, access)
        self.merge_recovered(state, recovered)
        if offset >= state.plain_size:
            return b""
        size = min(size, state.plain_size - offset)
        return state.plain.read(offset, size, layer._zero_fault(state))

    def page_in_range(
        self, source_key, pager_object, offset, min_size, max_size, access
    ) -> bytes:
        """COMPFS holds the whole plaintext once loaded, so serving a
        read-ahead window up to ``max_size`` costs nothing extra — the
        hint survives to upstream caches instead of dying here."""
        state = self.state(source_key)
        self.layer._ensure_loaded(state)
        size = min(max_size, max(min_size, state.plain_size - offset))
        size = max(size, 0)
        if size == 0:
            return b""
        return self.page_in(source_key, pager_object, offset, size, access)

    def page_out(self, source_key, pager_object, offset, size, data, retain) -> None:
        layer = self.layer
        state = self.state(source_key)
        layer._ensure_loaded(state)
        self.writeback_bookkeeping(
            state, self.requester(source_key, pager_object), offset, size, retain
        )
        usable = min(size, max(0, state.plain_size - offset))
        pages = {}
        for i, index in enumerate(page_range(offset, usable)):
            pages[index] = data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]
        self.merge_recovered(state, pages)
        if layer.coherent:
            layer._write_through(state)

    def attr_page_in(self, source_key, pager_object) -> FileAttributes:
        state = self.state(source_key)
        return self.layer.file_get_attributes(state)

    def attr_write_out(self, source_key, pager_object, attrs) -> None:
        layer = self.layer
        state = self.state(source_key)
        layer._ensure_loaded(state)
        if attrs.size != state.plain_size:
            layer.file_set_length(state, attrs.size)

    # -------------------------------------------------- cache side (case 2)
    # The lower layer invalidates/flushes our cache of the *compressed*
    # bytes.  Plaintext is derived data: any change to the compressed
    # image invalidates the whole plaintext cache (conservative, always
    # correct for a whole-file compressor).  We write through, so we
    # never hold modified compressed data — the flush/deny results are
    # empty.
    def flush_back(self, state, offset, size) -> Dict[int, bytes]:
        self.layer._drop_plaintext(state)
        return {}

    def deny_writes(self, state, offset, size) -> Dict[int, bytes]:
        # We only ever hold the compressed image read-only.
        return {}

    def write_back(self, state, offset, size) -> Dict[int, bytes]:
        return {}

    def delete_range(self, state, offset, size) -> None:
        self.layer._drop_plaintext(state)

    def zero_fill(self, state, offset, size) -> None:
        self.layer._drop_plaintext(state)

    def populate(self, state, offset, size, access, data) -> None:
        # Fresh compressed data pushed at us; simplest correct response
        # is to reload lazily.
        self.layer._drop_plaintext(state)

    def destroy_cache(self, state) -> None:
        self.layer._drop_plaintext(state)
        state.down_channel = None

    def invalidate_attributes(self, state) -> None:
        # Length lives in the compressed header; reload lazily.
        self.layer._drop_plaintext(state)


class CompFs(BaseLayer):
    """The compression layer; see module docstring."""

    max_under = 1
    ops_class = CompOps
    state_class = CompFileState
    file_class = CompFile
    directory_class = CompDirectory
    down_access = AccessRights.READ_ONLY

    def __init__(self, domain, coherent: bool = True, level: int = 6) -> None:
        super().__init__(domain)
        self.coherent = coherent
        self.level = level

    def fs_type(self) -> str:
        return "compfs"

    # -------------------------------------------------------------- load/store
    def ensure_down(self, state: CompFileState) -> bool:
        """Case 2: establish the C3-P3 connection so direct access to the
        underlying file triggers coherency actions against us.  Case 1
        declines — COMPFS stays invisible to the lower layer."""
        if not self.coherent:
            return False
        return super().ensure_down(state)

    def _ensure_loaded(self, state: CompFileState) -> None:
        if state.plain_size is not None:
            return
        self.ensure_down(state)
        compressed_size = state.under_file.get_length()
        if self.coherent and compressed_size > 0:
            # Read through the channel so we are registered as a holder —
            # one ranged page-in for the whole compressed payload, so the
            # layers below can cluster instead of seeing a per-page loop.
            payload = bytes(
                state.down_channel.pager_object.page_in_range(
                    0, compressed_size, compressed_size, AccessRights.READ_ONLY
                )[:compressed_size]
            )
        else:
            payload = state.under_file.read(0, compressed_size)
        plaintext = unpack_compressed(payload)
        self.world.charge.decompress(len(payload))
        for index in page_range(0, len(plaintext)):
            state.plain.install(
                index,
                plaintext[index * PAGE_SIZE : (index + 1) * PAGE_SIZE],
                AccessRights.READ_WRITE,
            )
        state.plain_size = len(plaintext)
        state.dirty = False

    def _plaintext(self, state: CompFileState) -> bytes:
        assert state.plain_size is not None
        if state.plain_size == 0:
            return b""
        data = state.plain.read(0, state.plain_size, self._zero_fault(state))
        return data

    @staticmethod
    def _zero_fault(state: CompFileState):
        def fault(index: int, needed: AccessRights):
            return state.plain.install(index, b"", needed)

        return fault

    def _write_through(self, state: CompFileState) -> None:
        """Compress the plaintext and rewrite the underlying file."""
        plaintext = self._plaintext(state)
        self.world.charge.compress(len(plaintext))
        payload = pack_compressed(plaintext, self.level)
        # The underlying set_length + write go through the file
        # interface; in case 2 the lower layer's coherency protocol will
        # flush/invalidate our C3 cache as part of this.  Those actions
        # are echoes of this very write: writing_through suppresses the
        # plaintext drop they would otherwise trigger.
        state.writing_through = True
        try:
            state.under_file.set_length(len(payload))
            state.under_file.write(0, payload)
        finally:
            state.writing_through = False
        state.dirty = False

    def _drop_plaintext(self, state: CompFileState) -> None:
        if state.writing_through:
            return  # echo of our own write; the plaintext is current
        state.plain.clear()
        state.plain_size = None
        state.dirty = False
        # Our clients' caches are now potentially stale too.
        if state.holders.any_holder():
            state.holders.invalidate(0, 2**62)

    def _merge(self, state: CompFileState, recovered: Dict[int, bytes]) -> None:
        for index, data in recovered.items():
            state.plain.install(index, data, AccessRights.READ_WRITE, dirty=True)
            state.dirty = True

    # ------------------------------------------------------------------ file ops
    def file_read(self, state: CompFileState, offset: int, size: int) -> bytes:
        self.world.charge.fs_read_cpu()
        self._ensure_loaded(state)
        recovered = state.holders.collect_latest(offset, size)
        self._merge(state, recovered)
        if offset >= state.plain_size:
            return b""
        size = min(size, state.plain_size - offset)
        data = state.plain.read(offset, size, self._zero_fault(state))
        self.world.charge.memcpy(size)
        return data

    def file_write(self, state: CompFileState, offset: int, data: bytes) -> int:
        self.world.charge.fs_write_cpu()
        self._ensure_loaded(state)
        recovered = state.holders.acquire(
            None, offset, len(data), AccessRights.READ_WRITE
        )
        self._merge(state, recovered)
        state.plain.write(offset, data, self._zero_fault(state))
        state.plain_size = max(state.plain_size, offset + len(data))
        state.dirty = True
        self.world.charge.memcpy(len(data))
        if self.coherent:
            self._write_through(state)
        return len(data)

    def file_length(self, state: CompFileState) -> int:
        self._ensure_loaded(state)
        return state.plain_size

    def file_set_length(self, state: CompFileState, length: int) -> None:
        self._ensure_loaded(state)
        if length < state.plain_size:
            if length % PAGE_SIZE:
                boundary = (length // PAGE_SIZE) * PAGE_SIZE
                recovered = state.holders.acquire(
                    None, boundary, PAGE_SIZE, AccessRights.READ_WRITE
                )
                self._merge(state, recovered)
            state.holders.invalidate(length, state.plain_size - length)
            state.plain.truncate_to(length)
        state.plain_size = length
        state.dirty = True
        if self.coherent:
            self._write_through(state)

    def file_get_attributes(self, state: CompFileState) -> FileAttributes:
        self.world.charge.fs_attr_copy()
        self._ensure_loaded(state)
        attrs = state.under_file.get_attributes()
        attrs.size = state.plain_size  # plaintext view
        return attrs

    def file_sync(self, state: CompFileState) -> None:
        if state.plain_size is not None and state.dirty:
            self._write_through(state)
        state.under_file.sync()

    def _sync_impl(self) -> None:
        for state in self._states.values():
            if state.plain_size is not None and state.dirty:
                self._write_through(state)

    # --------------------------------------------------------------- statistics
    def space_report(self, state_or_file) -> Dict[str, int]:
        """Plaintext vs stored (compressed) sizes for one file."""
        state = (
            state_or_file.state
            if isinstance(state_or_file, CompFile)
            else state_or_file
        )
        self._ensure_loaded(state)
        return {
            "plaintext_bytes": state.plain_size,
            "stored_bytes": state.under_file.get_length(),
        }
