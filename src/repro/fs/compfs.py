"""COMPFS — the compression file system layer (paper sec. 4.2.1).

"Suppose we would like to implement a compression file system (COMPFS).
We can use COMPFS to save disk space by compressing all data before
writing it out and by uncompressing all data read from the disk.  Since
we are not interested in rewriting an on-disk file system, we can
implement COMPFS as a layer on top of a base file system (SFS)."

The two design points the paper walks through are both implemented and
selected per instance:

* ``coherent=False`` — **case 1 (Figure 5)**: COMPFS accesses the
  underlying file through the plain file interface and caches plaintext.
  Mappings/reads of file_COMP and direct access to file_SFS are *not*
  coherent: a direct write to the underlying file leaves COMPFS's
  plaintext cache stale (the staleness window Figure 5 warns about, and
  which ``benchmarks/bench_fig05_compfs_case1.py`` demonstrates).
* ``coherent=True`` — **case 2 (Figure 6)**: COMPFS additionally acts
  as a cache manager for the underlying file by binding to it (the
  C3-P3 connection).  Direct writes to file_SFS now flush COMPFS's
  plaintext cache, and COMPFS writes through immediately, so all views
  stay coherent.

On-disk format of the underlying file: ``b"CZ01" + u64 plaintext size +
zlib stream``.  Compression is real (zlib), so the space savings COMPFS
exists for are measurable.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, Hashable, Optional

from repro.errors import FsError
from repro.ipc.invocation import operation
from repro.ipc.narrow import narrow
from repro.naming.context import NamingContext
from repro.types import PAGE_SIZE, AccessRights, page_range
from repro.vm.channel import BindResult, Channel
from repro.vm.memory_object import CacheManager
from repro.vm.page import PageStore

from repro.fs.attributes import FileAttributes
from repro.fs.base import BaseLayer
from repro.fs.file import File
from repro.fs.holders import BlockHolderTable

MAGIC = b"CZ01"
_HEADER = struct.Struct("<4sQ")


def pack_compressed(plaintext: bytes, level: int = 6) -> bytes:
    return _HEADER.pack(MAGIC, len(plaintext)) + zlib.compress(plaintext, level)


def unpack_compressed(payload: bytes) -> bytes:
    if len(payload) == 0:
        return b""
    if len(payload) < _HEADER.size:
        raise FsError("underlying file too short to be a COMPFS file")
    magic, plain_size = _HEADER.unpack_from(payload)
    if magic != MAGIC:
        raise FsError("underlying file is not in COMPFS format")
    plaintext = zlib.decompress(payload[_HEADER.size :])
    if len(plaintext) != plain_size:
        raise FsError(
            f"COMPFS header claims {plain_size} bytes, got {len(plaintext)}"
        )
    return plaintext


class CompFileState:
    """Per-file state: plaintext cache + upstream holders + downstream
    channel (case 2 only)."""

    def __init__(self, layer: "CompFs", under_file: File) -> None:
        self.layer = layer
        self.under_file = under_file
        self.under_key = under_file.source_key
        self.source_key: Hashable = ("compfs", layer.oid, self.under_key)
        self.plain = PageStore()
        self.plain_size: Optional[int] = None  # None = not loaded
        self.dirty = False
        self.holders = BlockHolderTable()
        self.down_channel: Optional[Channel] = None
        #: True while _write_through is rewriting the underlying file.
        #: The lower layer's coherency actions during that window are
        #: echoes of our own write — they must not invalidate the (still
        #: current) plaintext or our clients' caches.
        self.writing_through = False


class CompFile(File):
    """An open handle to a COMPFS file (plaintext view)."""

    def __init__(self, layer: "CompFs", state: CompFileState) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.state = state
        self.source_key = state.source_key
        layer.world.charge.fs_open_state()

    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        # Case 1 or 2, binds to file_COMP are handled by COMPFS itself —
        # plaintext differs from the stored data, so the underlying cache
        # can never be shared (paper sec. 4.2.2 last paragraph).
        return self.layer.bind_source(
            self.source_key,
            cache_manager,
            requested_access,
            offset,
            label=f"compfs:{self.state.under_key}",
        )

    @operation
    def get_length(self) -> int:
        self.layer._ensure_loaded(self.state)
        return self.state.plain_size

    @operation
    def set_length(self, length: int) -> None:
        self.layer.file_set_length(self.state, length)

    @operation
    def read(self, offset: int, size: int) -> bytes:
        return self.layer.file_read(self.state, offset, size)

    @operation
    def write(self, offset: int, data: bytes) -> int:
        return self.layer.file_write(self.state, offset, data)

    @operation
    def get_attributes(self) -> FileAttributes:
        return self.layer.file_get_attributes(self.state)

    @operation
    def check_access(self, access: AccessRights) -> None:
        self.layer.world.charge.fs_access_check()

    @operation
    def sync(self) -> None:
        self.layer.file_sync(self.state)


class CompDirectory(NamingContext):
    """Directory wrapper exporting COMPFS files."""

    def __init__(self, layer: "CompFs", under_context: NamingContext) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.under_context = under_context

    @operation
    def resolve(self, name: str) -> object:
        return self.layer.wrap_resolved(self.under_context.resolve(name))

    @operation
    def bind(self, name: str, obj: object) -> None:
        self.under_context.bind(name, obj)

    @operation
    def unbind(self, name: str) -> object:
        self.layer.purge_named(self.under_context, name)
        return self.under_context.unbind(name)

    @operation
    def rebind(self, name: str, obj: object) -> object:
        return self.under_context.rebind(name, obj)

    @operation
    def list_bindings(self):
        return [
            (name, self.layer.wrap_resolved(obj, charge_open=False))
            for name, obj in self.under_context.list_bindings()
        ]

    @operation
    def create_file(self, name: str) -> File:
        return self.layer.wrap_resolved(self.under_context.create_file(name))

    @operation
    def create_dir(self, name: str) -> "CompDirectory":
        return CompDirectory(self.layer, self.under_context.create_dir(name))

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        self.under_context.rename(old_name, new_name)


class CompFs(BaseLayer):
    """The compression layer; see module docstring."""

    max_under = 1

    def __init__(self, domain, coherent: bool = True, level: int = 6) -> None:
        super().__init__(domain)
        self.coherent = coherent
        self.level = level
        self._states: Dict[Hashable, CompFileState] = {}
        self._states_by_source: Dict[Hashable, CompFileState] = {}

    def fs_type(self) -> str:
        return "compfs"

    # ------------------------------------------------------------- naming face
    @operation
    def resolve(self, name: str) -> object:
        return self.wrap_resolved(self.under.resolve(name))

    @operation
    def bind(self, name: str, obj: object) -> None:
        self.under.bind(name, obj)

    @operation
    def unbind(self, name: str) -> object:
        self.purge_named(self.under, name)
        return self.under.unbind(name)

    @operation
    def rebind(self, name: str, obj: object) -> object:
        return self.under.rebind(name, obj)

    @operation
    def list_bindings(self):
        return [
            (name, self.wrap_resolved(obj, charge_open=False))
            for name, obj in self.under.list_bindings()
        ]

    @operation
    def create_file(self, name: str) -> File:
        # "A request to COMPFS to create a new file_COMP results in
        # COMPFS creating a new underlying file_SFS."
        return self.wrap_resolved(self.under.create_file(name))

    @operation
    def create_dir(self, name: str) -> CompDirectory:
        return CompDirectory(self, self.under.create_dir(name))

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        self.under.rename(old_name, new_name)

    # ------------------------------------------------------ unlink hygiene
    def purge_named(self, under_context, name: str) -> None:
        """Drop per-file state before an unlink; the freed i-node may be
        reused and stale cached state must not leak into the new file."""
        try:
            obj = under_context.resolve(name)
        except Exception:
            return
        under_file = narrow(obj, File)
        if under_file is not None:
            self._purge_state(under_file.source_key)

    def _purge_state(self, under_key) -> None:
        state = self._states.pop(under_key, None)
        if state is None:
            return
        self._states_by_source.pop(state.source_key, None)
        state.holders.invalidate(0, 2**62)
        state.plain.clear()
        state.plain_size = None
        state.dirty = False
        if state.down_channel is not None and not state.down_channel.closed:
            state.down_channel.close()
            state.down_channel = None

    def wrap_resolved(self, obj: object, charge_open: bool = True) -> object:
        under_file = narrow(obj, File)
        if under_file is not None:
            if charge_open:
                under_file.check_access(AccessRights.READ_ONLY)
                under_file.get_attributes()
            state = self._state_for(under_file)
            if charge_open:
                return CompFile(self, state)
            handle = object.__new__(CompFile)
            File.__init__(handle, self.domain)
            handle.layer = self
            handle.state = state
            handle.source_key = state.source_key
            return handle
        under_context = narrow(obj, NamingContext)
        if under_context is not None:
            return CompDirectory(self, under_context)
        return obj

    def _state_for(self, under_file: File) -> CompFileState:
        state = self._states.get(under_file.source_key)
        if state is None:
            state = CompFileState(self, under_file)
            self._states[state.under_key] = state
            self._states_by_source[state.source_key] = state
        return state

    # -------------------------------------------------------------- load/store
    def _ensure_down(self, state: CompFileState) -> None:
        """Case 2: establish the C3-P3 connection so direct access to the
        underlying file triggers coherency actions against us."""
        if not self.coherent:
            return
        if state.down_channel is None or state.down_channel.closed:
            state.down_channel = self.bind_below(
                state, state.under_file, AccessRights.READ_ONLY
            )

    def _ensure_loaded(self, state: CompFileState) -> None:
        if state.plain_size is not None:
            return
        self._ensure_down(state)
        compressed_size = state.under_file.get_length()
        if self.coherent and compressed_size > 0:
            # Read through the channel so we are registered as a holder —
            # one ranged page-in for the whole compressed payload, so the
            # layers below can cluster instead of seeing a per-page loop.
            payload = bytes(
                state.down_channel.pager_object.page_in_range(
                    0, compressed_size, compressed_size, AccessRights.READ_ONLY
                )[:compressed_size]
            )
        else:
            payload = state.under_file.read(0, compressed_size)
        plaintext = unpack_compressed(payload)
        self.world.charge.decompress(len(payload))
        for index in page_range(0, len(plaintext)):
            state.plain.install(
                index,
                plaintext[index * PAGE_SIZE : (index + 1) * PAGE_SIZE],
                AccessRights.READ_WRITE,
            )
        state.plain_size = len(plaintext)
        state.dirty = False

    def _plaintext(self, state: CompFileState) -> bytes:
        assert state.plain_size is not None
        if state.plain_size == 0:
            return b""
        data = state.plain.read(0, state.plain_size, self._zero_fault(state))
        return data

    @staticmethod
    def _zero_fault(state: CompFileState):
        def fault(index: int, needed: AccessRights):
            return state.plain.install(index, b"", needed)

        return fault

    def _write_through(self, state: CompFileState) -> None:
        """Compress the plaintext and rewrite the underlying file."""
        plaintext = self._plaintext(state)
        self.world.charge.compress(len(plaintext))
        payload = pack_compressed(plaintext, self.level)
        # The underlying set_length + write go through the file
        # interface; in case 2 the lower layer's coherency protocol will
        # flush/invalidate our C3 cache as part of this.  Those actions
        # are echoes of this very write: writing_through suppresses the
        # plaintext drop they would otherwise trigger.
        state.writing_through = True
        try:
            state.under_file.set_length(len(payload))
            state.under_file.write(0, payload)
        finally:
            state.writing_through = False
        state.dirty = False

    # ------------------------------------------------------------------ file ops
    def file_read(self, state: CompFileState, offset: int, size: int) -> bytes:
        self.world.charge.fs_read_cpu()
        self._ensure_loaded(state)
        recovered = state.holders.collect_latest(offset, size)
        self._merge(state, recovered)
        if offset >= state.plain_size:
            return b""
        size = min(size, state.plain_size - offset)
        data = state.plain.read(offset, size, self._zero_fault(state))
        self.world.charge.memcpy(size)
        return data

    def file_write(self, state: CompFileState, offset: int, data: bytes) -> int:
        self.world.charge.fs_write_cpu()
        self._ensure_loaded(state)
        recovered = state.holders.acquire(
            None, offset, len(data), AccessRights.READ_WRITE
        )
        self._merge(state, recovered)
        state.plain.write(offset, data, self._zero_fault(state))
        state.plain_size = max(state.plain_size, offset + len(data))
        state.dirty = True
        self.world.charge.memcpy(len(data))
        if self.coherent:
            self._write_through(state)
        return len(data)

    def file_set_length(self, state: CompFileState, length: int) -> None:
        self._ensure_loaded(state)
        if length < state.plain_size:
            if length % PAGE_SIZE:
                boundary = (length // PAGE_SIZE) * PAGE_SIZE
                recovered = state.holders.acquire(
                    None, boundary, PAGE_SIZE, AccessRights.READ_WRITE
                )
                self._merge(state, recovered)
            state.holders.invalidate(length, state.plain_size - length)
            state.plain.truncate_to(length)
        state.plain_size = length
        state.dirty = True
        if self.coherent:
            self._write_through(state)

    def file_get_attributes(self, state: CompFileState) -> FileAttributes:
        self.world.charge.fs_attr_copy()
        self._ensure_loaded(state)
        attrs = state.under_file.get_attributes()
        attrs.size = state.plain_size  # plaintext view
        return attrs

    def file_sync(self, state: CompFileState) -> None:
        if state.plain_size is not None and state.dirty:
            self._write_through(state)
        state.under_file.sync()

    def _sync_impl(self) -> None:
        for state in self._states.values():
            if state.plain_size is not None and state.dirty:
                self._write_through(state)

    def _merge(self, state: CompFileState, recovered: Dict[int, bytes]) -> None:
        for index, data in recovered.items():
            state.plain.install(index, data, AccessRights.READ_WRITE, dirty=True)
            state.dirty = True

    # --------------------------------------------------------------- statistics
    def space_report(self, state_or_file) -> Dict[str, int]:
        """Plaintext vs stored (compressed) sizes for one file."""
        state = (
            state_or_file.state
            if isinstance(state_or_file, CompFile)
            else state_or_file
        )
        self._ensure_loaded(state)
        return {
            "plaintext_bytes": state.plain_size,
            "stored_bytes": state.under_file.get_length(),
        }

    # ------------------------------------------------------------- pager hooks
    def _pager_page_in(
        self, source_key, pager_object, offset: int, size: int, access: AccessRights
    ) -> bytes:
        state = self._states_by_source[source_key]
        self._ensure_loaded(state)
        requester = None
        for channel in self.channels.channels_for(source_key):
            if channel.pager_object is pager_object:
                requester = channel
        recovered = state.holders.acquire(requester, offset, size, access)
        self._merge(state, recovered)
        if offset >= state.plain_size:
            return b""
        size = min(size, state.plain_size - offset)
        return state.plain.read(offset, size, self._zero_fault(state))

    def _pager_page_in_range(
        self, source_key, pager_object, offset, min_size, max_size, access
    ) -> bytes:
        """COMPFS holds the whole plaintext once loaded, so serving a
        read-ahead window up to ``max_size`` costs nothing extra — the
        hint survives to upstream caches instead of dying here."""
        state = self._states_by_source[source_key]
        self._ensure_loaded(state)
        size = min(max_size, max(min_size, state.plain_size - offset))
        size = max(size, 0)
        if size == 0:
            return b""
        return self._pager_page_in(source_key, pager_object, offset, size, access)

    def _pager_page_out(
        self, source_key, pager_object, offset: int, size: int, data: bytes, retain
    ) -> None:
        state = self._states_by_source[source_key]
        self._ensure_loaded(state)
        for channel in self.channels.channels_for(source_key):
            if channel.pager_object is pager_object:
                if retain is None:
                    state.holders.forget_range(channel, offset, size)
                elif retain is AccessRights.READ_ONLY:
                    state.holders.record(
                        channel, offset, size, AccessRights.READ_ONLY
                    )
                else:
                    recovered = state.holders.acquire(
                        channel, offset, size, AccessRights.READ_WRITE
                    )
                    self._merge(state, recovered)
        usable = min(size, max(0, state.plain_size - offset))
        pages = {}
        for i, index in enumerate(page_range(offset, usable)):
            pages[index] = data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]
        self._merge(state, pages)
        if self.coherent:
            self._write_through(state)

    def _pager_attr_page_in(self, source_key, pager_object) -> FileAttributes:
        state = self._states_by_source[source_key]
        return self.file_get_attributes(state)

    def _pager_attr_write_out(self, source_key, pager_object, attrs) -> None:
        state = self._states_by_source[source_key]
        self._ensure_loaded(state)
        if attrs.size != state.plain_size:
            self.file_set_length(state, attrs.size)

    def _on_channel_closed(self, source_key, channel: Channel) -> None:
        state = self._states_by_source.get(source_key)
        if state is not None:
            state.holders.drop_channel(channel)

    # -------------------------------------------------- cache hooks (case 2)
    # The lower layer invalidates/flushes our cache of the *compressed*
    # bytes.  Plaintext is derived data: any change to the compressed
    # image invalidates the whole plaintext cache (conservative, always
    # correct for a whole-file compressor).  We write through, so we
    # never hold modified compressed data — the flush/deny results are
    # empty.
    def _drop_plaintext(self, state: CompFileState) -> None:
        if state.writing_through:
            return  # echo of our own write; the plaintext is current
        state.plain.clear()
        state.plain_size = None
        state.dirty = False
        # Our clients' caches are now potentially stale too.
        if state.holders.any_holder():
            state.holders.invalidate(0, 2**62)

    def _cache_flush_back(self, state, offset: int, size: int) -> Dict[int, bytes]:
        self._drop_plaintext(state)
        return {}

    def _cache_deny_writes(self, state, offset: int, size: int) -> Dict[int, bytes]:
        # We only ever hold the compressed image read-only.
        return {}

    def _cache_write_back(self, state, offset: int, size: int) -> Dict[int, bytes]:
        return {}

    def _cache_delete_range(self, state, offset: int, size: int) -> None:
        self._drop_plaintext(state)

    def _cache_zero_fill(self, state, offset: int, size: int) -> None:
        self._drop_plaintext(state)

    def _cache_populate(self, state, offset, size, access, data) -> None:
        # Fresh compressed data pushed at us; simplest correct response
        # is to reload lazily.
        self._drop_plaintext(state)

    def _cache_destroy(self, state) -> None:
        self._drop_plaintext(state)
        state.down_channel = None

    def _cache_invalidate_attributes(self, state) -> None:
        # Length lives in the compressed header; reload lazily.
        self._drop_plaintext(state)

    def _cache_write_back_attributes(self, state) -> Optional[FileAttributes]:
        return None
