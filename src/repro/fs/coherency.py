"""The coherency layer.

"The Spring distributed file system is implemented as a coherency layer.
The coherency layer implements a per-block multiple-readers/single-writer
coherency protocol.  Among other things, the implementation keeps track
of the state of each file block (read-only vs. read-write) and of each
cache object that holds the block at any point in time. ... The
coherency layer also caches file attributes using the operations
provided by the fs_cache and fs_pager interfaces." (paper sec. 6.2)

The layer plays both roles of Figure 4 simultaneously:

* **pager** to its clients (VMMs mapping files, or further layers
  stacked above): serves page_in/page_out on its files and triggers
  coherency actions against the other holders before granting access;
* **cache manager** to the layer below: binds to underlying files,
  exchanging fs_cache/fs_pager objects, caches their blocks and
  attributes, and responds to the lower pager's coherency actions —
  recursively recalling data from its own upstream holders first.

Stacking an instance of this layer over any non-coherent layer yields a
coherent stack (sec. 6.3); Spring SFS is exactly coherency-over-disk
(Figure 10).  Construct with ``cache=False`` to disable data+attribute
caching — the "Cached by Coherency Layer? No" rows of Table 2.

In spine terms (:mod:`repro.fs.base`): this layer IS the recall policy,
so :class:`CoherencyOps` overrides nearly the whole dispatch table —
what it inherits from the runtime is the state registry, the naming
face, the bind plumbing, and the fan-out helpers.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.errors import FsError, StaleFileError
from repro.ipc.narrow import narrow
from repro.types import PAGE_SIZE, AccessRights, page_range
from repro.vm.cache_object import FsCache
from repro.vm.channel import Channel
from repro.vm.page import ZERO_VIEW, CachedPage, PageStore, index_runs
from repro.vm.readahead import StreamTable

from repro.fs.attributes import CachedAttributes, FileAttributes
from repro.fs.base import (
    BaseLayer,
    ChannelOps,
    LayerDirectory,
    LayerFile,
    LayerFileState,
)
from repro.fs.file import File


class CoherentFileState(LayerFileState):
    """Per-file state the coherency layer maintains (one per underlying
    file, shared by every open handle and every upstream channel)."""

    def __init__(self, layer: "CoherencyLayer", under_file: File) -> None:
        super().__init__(layer, under_file)
        self.store = PageStore()
        self.attrs: Optional[CachedAttributes] = None
        self.destroyed = False
        self.streams = StreamTable()

    def purge(self) -> None:
        super().purge()
        self.store.clear()
        self.attrs = None
        self.destroyed = True


class CoherentFile(LayerFile):
    """An open handle to a file exported by the coherency layer."""


class CoherentDirectory(LayerDirectory):
    """Wraps an underlying directory context, exporting coherent files."""


class CoherencyOps(ChannelOps):
    """The coherency layer's dispatch table: every op first recalls the
    affected blocks from the *other* upstream holders (MRSW), then
    serves from / installs into the layer's page cache."""

    def requester(self, source_key, pager_object) -> Channel:
        """Unlike the pass-through, a request from a pager object with no
        live channel is a protocol violation here — the holder table
        would silently miscount."""
        channel = super().requester(source_key, pager_object)
        if channel is None:
            raise FsError("pager object does not belong to a live channel")
        return channel

    def merge_recovered(self, state, recovered: Dict[int, bytes]) -> None:
        self.layer._merge_recovered(state, recovered)

    # ----------------------------------------------------------- pager side
    def page_in(self, source_key, pager_object, offset, size, access) -> bytes:
        layer = self.layer
        state = self.state(source_key)
        requester = self.requester(source_key, pager_object)
        with self.region():
            recovered = state.holders.acquire(requester, offset, size, access)
        self.merge_recovered(state, recovered)
        if layer.cache_enabled:
            # Zero-copy serve: the requester installs (copies) the page
            # into its own cache immediately, so handing out a view of
            # ours is safe — see DESIGN.md section 7.
            return state.store.read_bytes(
                offset, size, layer._fault_below(state, access)
            )
        return layer._read_through(state, offset, size, recovered)

    def page_in_range(
        self, source_key, pager_object, offset, min_size, max_size, access
    ) -> bytes:
        """Serve a ranged page-in from the cache (clamped to the file),
        so an upstream reader with read-ahead enabled gets its window in
        one call — and this layer prefetches below with clustering."""
        layer = self.layer
        state = self.state(source_key)
        if layer.cache_enabled:
            size = min(max_size, max(min_size, layer.file_length(state) - offset))
            size = max(size, 0)
            if size == 0:
                return b""
            requester = self.requester(source_key, pager_object)
            with self.region():
                recovered = state.holders.acquire(requester, offset, size, access)
            self.merge_recovered(state, recovered)
            # The upstream explicitly asked for this window, so fetching
            # the missing pages below in clustered runs is demanded data,
            # not speculation — no knob gates it.  This is what lets a
            # read-ahead hint issued above a stacked layer survive all
            # the way to the disk layer's clustering.
            layer._prefetch_missing(state, offset, size, access)
            return state.store.read_bytes(
                offset, size, layer._fault_below(state, access)
            )
        # Not caching: still forward the window so clustering below
        # survives this layer instead of collapsing to the minimum.
        size = min(max_size, max(min_size, state.under_file.get_length() - offset))
        size = max(size, 0)
        if size == 0:
            return b""
        requester = self.requester(source_key, pager_object)
        with self.region():
            recovered = state.holders.acquire(requester, offset, size, access)
        self.merge_recovered(state, recovered)  # pushed straight down
        return self.down(state).page_in_range(offset, min_size, size, access)

    def page_out(self, source_key, pager_object, offset, size, data, retain) -> None:
        state = self.state(source_key)
        requester = self.requester(source_key, pager_object)
        if retain is None:
            state.holders.forget_range(requester, offset, size)
        elif retain is AccessRights.READ_ONLY:
            state.holders.record(requester, offset, size, AccessRights.READ_ONLY)
        else:
            # sync: the client retains the data read-write — it IS a
            # writer of these blocks, so register it (flushing any other
            # holder first; the incoming data supersedes what they held).
            recovered = state.holders.acquire(
                requester, offset, size, AccessRights.READ_WRITE
            )
            self.merge_recovered(state, recovered)
        pages = {
            index: data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]
            for i, index in enumerate(page_range(offset, size))
        }
        self.merge_recovered(state, pages)

    def attr_page_in(self, source_key, pager_object) -> FileAttributes:
        return self.layer._current_attrs(self.state(source_key)).copy()

    def attr_write_out(self, source_key, pager_object, attrs) -> None:
        layer = self.layer
        state = self.state(source_key)
        if layer.cache_enabled:
            state.attrs = CachedAttributes(attrs.copy(), dirty=True)
            requester = self.requester(source_key, pager_object)
            layer.invalidate_upstream_attrs(state, exclude=requester)
        else:
            layer.ensure_down(state)
            if state.down_pager is not None:
                state.down_pager.attr_write_out(attrs)

    # ----------------------------------------------------------- cache side
    # The lower pager acts on our cache of ITS file; we must first recall
    # the affected blocks from our own upstream holders (recursive
    # coherency, the P3-C3 arrow of Figure 6 composed with P1-C1).
    def flush_back(self, state, offset, size) -> Dict[int, bytes]:
        with self.region():
            recovered = state.holders.acquire(
                None, offset, size, AccessRights.READ_WRITE
            )
        for index, data in recovered.items():
            state.store.install(index, data, AccessRights.READ_WRITE, dirty=True)
        modified = state.store.collect_modified(offset, size)
        state.store.drop_range(offset, size)
        return modified

    def deny_writes(self, state, offset, size) -> Dict[int, bytes]:
        with self.region():
            recovered = state.holders.acquire(
                None, offset, size, AccessRights.READ_ONLY
            )
        for index, data in recovered.items():
            state.store.install(index, data, AccessRights.READ_WRITE, dirty=True)
        modified = state.store.collect_modified(offset, size)
        state.store.downgrade_range(offset, size)
        state.store.clean_range(offset, size)
        return modified

    def write_back(self, state, offset, size) -> Dict[int, bytes]:
        with self.region():
            recovered = state.holders.collect_latest(offset, size)
        for index, data in recovered.items():
            state.store.install(index, data, AccessRights.READ_WRITE, dirty=True)
        modified = state.store.collect_modified(offset, size)
        state.store.clean_range(offset, size)
        return modified

    def delete_range(self, state, offset, size) -> None:
        with self.region():
            state.holders.invalidate(offset, size)
        state.store.drop_range(offset, size)

    def zero_fill(self, state, offset, size) -> None:
        with self.region():
            state.holders.invalidate(offset, size)
        state.store.zero_range(offset, size)

    def populate(self, state, offset, size, access, data) -> None:
        for i, index in enumerate(page_range(offset, size)):
            state.store.install(
                index, data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE], access
            )

    def destroy_cache(self, state) -> None:
        state.store.clear()
        state.attrs = None
        state.destroyed = True

    def invalidate_attributes(self, state) -> None:
        state.attrs = None
        self.layer.invalidate_upstream_attrs(state)

    def write_back_attributes(self, state) -> Optional[FileAttributes]:
        if state.attrs is not None and state.attrs.dirty:
            # The pager below now owns the latest attributes; our copy is
            # clean (mirrors write_back's dirty-clearing for data).
            state.attrs.dirty = False
            return state.attrs.attrs.copy()
        return None


class CoherencyLayer(BaseLayer):
    """See module docstring."""

    max_under = 1
    ops_class = CoherencyOps
    state_class = CoherentFileState
    file_class = CoherentFile
    directory_class = CoherentDirectory

    def __init__(
        self,
        domain,
        cache: bool = True,
        readahead_pages: int = 0,
        protocol: str = "per_block",
        batch_pageout: bool = False,
        compound: bool = False,
    ) -> None:
        super().__init__(domain)
        self.cache_enabled = cache
        self.compound = compound
        self.readahead_pages = readahead_pages
        self.batch_pageout = batch_pageout
        #: Coherency policy: "per_block" (the paper's production choice)
        #: or "whole_file" (coarse single-owner) — the protocol is not
        #: dictated by the architecture (sec. 3.3.3).
        self.protocol = protocol

    def fs_type(self) -> str:
        return "coherency"

    def source_tag(self) -> str:
        return "coh"

    def _on_open(
        self, state: CoherentFileState, attrs: Optional[FileAttributes]
    ) -> None:
        # Seed the attribute cache from the open-time fetch.
        if self.cache_enabled and state.attrs is None and attrs is not None:
            state.attrs = CachedAttributes(attrs.copy())

    # ------------------------------------------------------ downstream access
    def _fault_below(self, state: CoherentFileState, access: AccessRights):
        """Fault callback for ``state.store``: page in from the lower
        layer through the downstream channel.  With ``readahead_pages``
        set, sequential misses issue a ranged page-in and install the
        extra (clustered) data speculatively."""

        def fault(index: int, needed: AccessRights) -> CachedPage:
            effective = access if access.writable else needed
            self.ensure_down(state)
            window = self.readahead_pages
            sequential = state.streams.observe(index)
            if window > 0 and sequential:
                self.world.counters.inc("coherency.readahead")
                data = state.down_channel.pager_object.page_in_range(
                    index * PAGE_SIZE,
                    PAGE_SIZE,
                    (1 + window) * PAGE_SIZE,
                    effective,
                )
                extra_pages = max(0, (len(data) - 1) // PAGE_SIZE)
                for i in range(1, extra_pages + 1):
                    if (index + i) not in state.store:
                        state.store.install(
                            index + i,
                            data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE],
                            effective,
                        )
                # Keep the scan looking sequential past the window.
                state.streams.advance_head(index + extra_pages)
                return state.store.install(index, data[:PAGE_SIZE], effective)
            data = state.down_channel.pager_object.page_in(
                index * PAGE_SIZE, PAGE_SIZE, effective
            )
            return state.store.install(index, data, effective)

        return fault

    def _merge_recovered(
        self, state: CoherentFileState, recovered: Dict[int, bytes]
    ) -> None:
        """Fold data recalled from upstream holders into our cache as
        dirty (it is newer than the lower layer's copy), or push it
        straight down when we are not caching."""
        if not recovered:
            return
        if self.cache_enabled:
            for index, data in recovered.items():
                state.store.install(
                    index, data, AccessRights.READ_WRITE, dirty=True
                )
        else:
            self.ensure_down(state)
            for index, data in sorted(recovered.items()):
                state.down_channel.pager_object.page_out(
                    index * PAGE_SIZE, PAGE_SIZE, data
                )

    def _prefetch_missing(
        self,
        state: CoherentFileState,
        offset: int,
        size: int,
        access: AccessRights,
    ) -> None:
        """Fetch the missing pages of ``[offset, offset + size)`` from
        below as ranged page-ins, one per contiguous missing run.
        Single-page gaps are left to the normal fault path (identical
        cost, and they keep feeding the sequential-stream detector)."""
        effective = access if access.writable else AccessRights.READ_ONLY
        missing = [i for i in page_range(offset, size) if i not in state.store]
        for run_start, run_len in index_runs(missing):
            if run_len < 2:
                continue
            self.ensure_down(state)
            data = state.down_channel.pager_object.page_in_range(
                run_start * PAGE_SIZE,
                run_len * PAGE_SIZE,
                run_len * PAGE_SIZE,
                effective,
            )
            for i in range(run_len):
                state.store.install(
                    run_start + i,
                    data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE],
                    effective,
                )

    # ------------------------------------------------------------- attributes
    def _collect_latest_attrs(self, state: CoherentFileState) -> None:
        """Attribute analogue of write_back: pull dirty attributes from
        upstream file-system caches (narrowable to fs_cache) so this
        layer's view is current.  VMM channels are plain cache managers
        and are skipped — so this costs nothing in a plain SFS."""
        with self.fanout_region():
            for channel in self.channels.channels_for(state.source_key):
                fs_cache = narrow(channel.cache_object, FsCache)
                if fs_cache is None:
                    continue
                fetched = fs_cache.write_back_attributes()
                if fetched is not None:
                    if self.cache_enabled:
                        state.attrs = CachedAttributes(fetched, dirty=True)
                    else:
                        self.ensure_down(state)
                        if state.down_pager is not None:
                            state.down_pager.attr_write_out(fetched)

    def _current_attrs(self, state: CoherentFileState) -> FileAttributes:
        self._collect_latest_attrs(state)
        if self.cache_enabled:
            if state.attrs is None:
                self.ensure_down(state)
                if state.down_pager is not None:
                    fetched = state.down_pager.attr_page_in()
                else:
                    fetched = state.under_file.get_attributes()
                state.attrs = CachedAttributes(fetched)
            return state.attrs.attrs
        return state.under_file.get_attributes()

    def _now(self) -> int:
        return int(self.world.clock.now_us)

    # --------------------------------------------------------------- file ops
    def file_read(self, state: CoherentFileState, offset: int, size: int) -> bytes:
        self.world.charge.fs_read_cpu()
        attrs = self._current_attrs(state)
        if offset >= attrs.size:
            return b""
        size = min(size, attrs.size - offset)
        with self.fanout_region():
            recovered = state.holders.collect_latest(offset, size)
        self._merge_recovered(state, recovered)
        if self.cache_enabled:
            data = state.store.read(
                offset, size, self._fault_below(state, AccessRights.READ_ONLY)
            )
            state.attrs.touch_atime(self._now())
        else:
            data = self._read_through(state, offset, size, recovered)
        self.world.charge.memcpy(size)
        return data

    def _read_through(
        self,
        state: CoherentFileState,
        offset: int,
        size: int,
        recovered: Dict[int, bytes],
    ) -> bytes:
        self.ensure_down(state)
        out = bytearray()
        position, remaining = offset, size
        while remaining > 0:
            index, start = divmod(position, PAGE_SIZE)
            take = min(PAGE_SIZE - start, remaining)
            if index in recovered:
                page = recovered[index]
            else:
                page = state.down_channel.pager_object.page_in(
                    index * PAGE_SIZE, PAGE_SIZE, AccessRights.READ_ONLY
                )
            # ``page`` may be a memoryview; pad short (EOF) pages with
            # slices of the interned zero page instead of concatenating.
            end = start + take
            length = len(page)
            if length >= end:
                out += page[start:end]
            else:
                if start < length:
                    out += page[start:length]
                out += ZERO_VIEW[: end - max(start, length)]
            position += take
            remaining -= take
        return bytes(out)

    def file_write(self, state: CoherentFileState, offset: int, data: bytes) -> int:
        self.world.charge.fs_write_cpu()
        with self.fanout_region():
            recovered = state.holders.acquire(
                None, offset, len(data), AccessRights.READ_WRITE
            )
        self._merge_recovered(state, recovered)
        self.world.charge.memcpy(len(data))
        if self.cache_enabled:
            state.store.write(
                offset, data, self._fault_below(state, AccessRights.READ_WRITE)
            )
            self._current_attrs(state)  # ensure attrs are cached
            state.attrs.grow(offset + len(data))
            state.attrs.touch_mtime(self._now())
            self.invalidate_upstream_attrs(state)
        else:
            state.under_file.write(offset, data)
        return len(data)

    def file_get_attributes(self, state: CoherentFileState) -> FileAttributes:
        self.world.charge.fs_attr_copy()
        return self._current_attrs(state).copy()

    def file_length(self, state: CoherentFileState) -> int:
        return self._current_attrs(state).size

    def file_check_access(
        self, state: CoherentFileState, access: AccessRights
    ) -> None:
        self.world.charge.fs_access_check()
        if state.destroyed:
            raise StaleFileError("file state destroyed under open handle")

    def file_set_length(self, state: CoherentFileState, length: int) -> None:
        old = self._current_attrs(state).size
        if length < old:
            with self.fanout_region():
                if length % PAGE_SIZE:
                    # Recover the boundary page from any dirty holder before
                    # invalidating — its head (below the new length) survives.
                    boundary = (length // PAGE_SIZE) * PAGE_SIZE
                    recovered = state.holders.acquire(
                        None, boundary, PAGE_SIZE, AccessRights.READ_WRITE
                    )
                    self._merge_recovered(state, recovered)
                state.holders.invalidate(length, old - length)
            state.store.truncate_to(length)
        if self.cache_enabled:
            state.attrs.set_size(length)
            state.attrs.touch_mtime(self._now())
            self.invalidate_upstream_attrs(state)
        state.under_file.set_length(length)

    def file_sync(self, state: CoherentFileState) -> None:
        """Push dirty attributes (first — the length clamps page-outs)
        and dirty blocks to the lower layer.

        Write-back order is deterministic: dirty pages ascend by index;
        with ``batch_pageout`` set, contiguous runs go down as single
        ranged syncs, in the same ascending order."""
        if not self.cache_enabled:
            return
        self.ensure_down(state)
        if state.attrs is not None and state.attrs.dirty:
            if state.down_pager is not None:
                state.down_pager.attr_write_out(state.attrs.attrs.copy())
            state.attrs.dirty = False
        if self.batch_pageout:
            for run in state.store.dirty_runs():
                data = b"".join(page.snapshot() for _, page in run)
                state.down_channel.pager_object.sync_range(
                    run[0][0] * PAGE_SIZE, len(data), data
                )
                for _, page in run:
                    page.dirty = False
            return
        pager_sync = state.down_channel.pager_object.sync
        for index, page in state.store.dirty_pages():
            pager_sync(index * PAGE_SIZE, PAGE_SIZE, page.snapshot())
            page.dirty = False

    def _sync_impl(self) -> None:
        for state in self._states.values():
            if not state.destroyed:
                self.file_sync(state)
