"""The coherency layer.

"The Spring distributed file system is implemented as a coherency layer.
The coherency layer implements a per-block multiple-readers/single-writer
coherency protocol.  Among other things, the implementation keeps track
of the state of each file block (read-only vs. read-write) and of each
cache object that holds the block at any point in time. ... The
coherency layer also caches file attributes using the operations
provided by the fs_cache and fs_pager interfaces." (paper sec. 6.2)

The layer plays both roles of Figure 4 simultaneously:

* **pager** to its clients (VMMs mapping files, or further layers
  stacked above): serves page_in/page_out on its files and triggers
  coherency actions against the other holders before granting access;
* **cache manager** to the layer below: binds to underlying files,
  exchanging fs_cache/fs_pager objects, caches their blocks and
  attributes, and responds to the lower pager's coherency actions —
  recursively recalling data from its own upstream holders first.

Stacking an instance of this layer over any non-coherent layer yields a
coherent stack (sec. 6.3); Spring SFS is exactly coherency-over-disk
(Figure 10).  Construct with ``cache=False`` to disable data+attribute
caching — the "Cached by Coherency Layer? No" rows of Table 2.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Hashable, List, Optional

from repro.errors import FsError, StaleFileError
from repro.ipc.compound import compound_region
from repro.ipc.invocation import operation
from repro.ipc.narrow import narrow
from repro.naming.context import NamingContext
from repro.types import PAGE_SIZE, AccessRights, page_range
from repro.vm.channel import BindResult, Channel
from repro.vm.cache_object import FsCache
from repro.vm.memory_object import CacheManager
from repro.vm.page import CachedPage, PageStore, index_runs
from repro.vm.pager_object import FsPager
from repro.vm.readahead import StreamTable

from repro.fs.attributes import CachedAttributes, FileAttributes
from repro.fs.base import BaseLayer
from repro.fs.file import File
from repro.fs.holders import BlockHolderTable, make_holder_table


class CoherentFileState:
    """Per-file state the coherency layer maintains (one per underlying
    file, shared by every open handle and every upstream channel)."""

    def __init__(self, layer: "CoherencyLayer", under_file: File) -> None:
        self.layer = layer
        self.under_file = under_file
        self.under_key = under_file.source_key
        self.source_key: Hashable = ("coh", layer.oid, self.under_key)
        self.store = PageStore()
        self.attrs: Optional[CachedAttributes] = None
        self.holders = make_holder_table(layer.protocol)
        self.down_channel: Optional[Channel] = None
        self.down_pager: Optional[FsPager] = None
        self.destroyed = False
        self.streams = StreamTable()


class CoherentFile(File):
    """An open handle to a file exported by the coherency layer."""

    def __init__(self, layer: "CoherencyLayer", state: CoherentFileState) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.state = state
        self.source_key = state.source_key
        layer.world.charge.fs_open_state()

    # --- memory_object -------------------------------------------------------
    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        return self.layer.bind_source(
            self.source_key,
            cache_manager,
            requested_access,
            offset,
            label=f"coh:{self.state.under_key}",
        )

    @operation
    def get_length(self) -> int:
        return self.layer.file_length(self.state)

    @operation
    def set_length(self, length: int) -> None:
        self.layer.file_set_length(self.state, length)

    # --- file -----------------------------------------------------------------
    @operation
    def read(self, offset: int, size: int) -> bytes:
        return self.layer.file_read(self.state, offset, size)

    @operation
    def write(self, offset: int, data: bytes) -> int:
        return self.layer.file_write(self.state, offset, data)

    @operation
    def get_attributes(self) -> FileAttributes:
        return self.layer.file_get_attributes(self.state)

    @operation
    def check_access(self, access: AccessRights) -> None:
        self.layer.world.charge.fs_access_check()
        if self.state.destroyed:
            raise StaleFileError("file state destroyed under open handle")

    @operation
    def sync(self) -> None:
        self.layer.file_sync(self.state)


class CoherentDirectory(NamingContext):
    """Wraps an underlying directory context, exporting coherent files."""

    def __init__(self, layer: "CoherencyLayer", under_context: NamingContext) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.under_context = under_context

    @operation
    def resolve(self, name: str) -> object:
        return self.layer.wrap_resolved(self.under_context.resolve(name))

    @operation
    def bind(self, name: str, obj: object) -> None:
        self.under_context.bind(name, obj)

    @operation
    def unbind(self, name: str) -> object:
        self.layer.purge_named(self.under_context, name)
        return self.under_context.unbind(name)

    @operation
    def rebind(self, name: str, obj: object) -> object:
        return self.under_context.rebind(name, obj)

    @operation
    def list_bindings(self):
        return [
            (name, self.layer.wrap_resolved(obj, charge_open=False))
            for name, obj in self.under_context.list_bindings()
        ]

    @operation
    def create_file(self, name: str) -> File:
        return self.layer.wrap_resolved(self.under_context.create_file(name))

    @operation
    def create_dir(self, name: str) -> "CoherentDirectory":
        return CoherentDirectory(self.layer, self.under_context.create_dir(name))

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        self.under_context.rename(old_name, new_name)


class CoherencyLayer(BaseLayer):
    """See module docstring."""

    max_under = 1

    def __init__(
        self,
        domain,
        cache: bool = True,
        readahead_pages: int = 0,
        protocol: str = "per_block",
        batch_pageout: bool = False,
        compound: bool = False,
    ) -> None:
        super().__init__(domain)
        self.cache_enabled = cache
        #: Batch the per-holder coherency control messages (recalls,
        #: write-denials, attribute invalidations) of one coherency
        #: action into a single round trip per remote node.  Off by
        #: default — Table 2/3 calibration charges per message.
        self.compound = compound
        #: Sequential read-ahead window toward the layer below (sec. 8
        #: extension); 0 = off.
        self.readahead_pages = readahead_pages
        #: Push contiguous dirty runs below as single ranged syncs
        #: instead of one call per page.  Off by default, like
        #: readahead_pages — Table 2/3 calibration assumes per-page
        #: write-back.
        self.batch_pageout = batch_pageout
        #: Coherency policy: "per_block" (the paper's production choice)
        #: or "whole_file" (coarse single-owner) — the protocol is not
        #: dictated by the architecture (sec. 3.3.3).
        self.protocol = protocol
        self._states: Dict[Hashable, CoherentFileState] = {}
        self._states_by_source: Dict[Hashable, CoherentFileState] = {}

    def fs_type(self) -> str:
        return "coherency"

    def _fanout_region(self):
        """A compound region around a holder/attribute fan-out when
        batching is on, else a no-op context."""
        if self.compound:
            return compound_region(self.world)
        return contextlib.nullcontext()

    # ------------------------------------------------------------ naming face
    @operation
    def resolve(self, name: str) -> object:
        return self.wrap_resolved(self.under.resolve(name))

    @operation
    def bind(self, name: str, obj: object) -> None:
        self.under.bind(name, obj)

    @operation
    def unbind(self, name: str) -> object:
        self.purge_named(self.under, name)
        return self.under.unbind(name)

    @operation
    def rebind(self, name: str, obj: object) -> object:
        return self.under.rebind(name, obj)

    @operation
    def list_bindings(self):
        return [
            (name, self.wrap_resolved(obj, charge_open=False))
            for name, obj in self.under.list_bindings()
        ]

    @operation
    def create_file(self, name: str) -> File:
        return self.wrap_resolved(self.under.create_file(name))

    # ------------------------------------------------------ unlink hygiene
    def purge_named(self, under_context, name: str) -> None:
        """Drop this layer's per-file state before an unlink: the lower
        layer may reuse the freed i-node for a new file, and stale cached
        attributes/pages must not be resurrected for it."""
        try:
            obj = under_context.resolve(name)
        except Exception:
            return
        under_file = narrow(obj, File)
        if under_file is not None:
            self._purge_state(under_file.source_key)

    def _purge_state(self, under_key: Hashable) -> None:
        state = self._states.pop(under_key, None)
        if state is None:
            return
        self._states_by_source.pop(state.source_key, None)
        state.holders.invalidate(0, 2**62)
        state.store.clear()
        state.attrs = None
        state.destroyed = True
        if state.down_channel is not None and not state.down_channel.closed:
            state.down_channel.close()

    @operation
    def create_dir(self, name: str) -> CoherentDirectory:
        return CoherentDirectory(self, self.under.create_dir(name))

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        self.under.rename(old_name, new_name)

    def wrap_resolved(self, obj: object, charge_open: bool = True) -> object:
        """Wrap whatever the lower layer resolved: files get coherent
        handles (the open path), directories get wrapping contexts."""
        under_file = narrow(obj, File)
        if under_file is not None:
            if charge_open:
                under_file.check_access(AccessRights.READ_ONLY)
                attrs = under_file.get_attributes()
            else:
                attrs = None
            state = self._state_for(under_file)
            if self.cache_enabled and state.attrs is None and attrs is not None:
                state.attrs = CachedAttributes(attrs.copy())
            if charge_open:
                return CoherentFile(self, state)
            handle = object.__new__(CoherentFile)
            File.__init__(handle, self.domain)
            handle.layer = self
            handle.state = state
            handle.source_key = state.source_key
            return handle
        under_context = narrow(obj, NamingContext)
        if under_context is not None:
            return CoherentDirectory(self, under_context)
        return obj

    def _state_for(self, under_file: File) -> CoherentFileState:
        state = self._states.get(under_file.source_key)
        if state is None:
            state = CoherentFileState(self, under_file)
            self._states[state.under_key] = state
            self._states_by_source[state.source_key] = state
        return state

    # ------------------------------------------------------ downstream access
    def _ensure_down(self, state: CoherentFileState) -> None:
        """Establish (once) the downstream channel: the layer acting as a
        cache manager for the underlying file (paper sec. 4.2)."""
        if state.down_channel is None or state.down_channel.closed:
            channel = self.bind_below(
                state, state.under_file, AccessRights.READ_WRITE
            )
            state.down_channel = channel
            state.down_pager = self.down_fs_pager(channel)

    def _fault_below(self, state: CoherentFileState, access: AccessRights):
        """Fault callback for ``state.store``: page in from the lower
        layer through the downstream channel.  With ``readahead_pages``
        set, sequential misses issue a ranged page-in and install the
        extra (clustered) data speculatively."""

        def fault(index: int, needed: AccessRights) -> CachedPage:
            effective = access if access.writable else needed
            self._ensure_down(state)
            window = self.readahead_pages
            sequential = state.streams.observe(index)
            if window > 0 and sequential:
                self.world.counters.inc("coherency.readahead")
                data = state.down_channel.pager_object.page_in_range(
                    index * PAGE_SIZE,
                    PAGE_SIZE,
                    (1 + window) * PAGE_SIZE,
                    effective,
                )
                extra_pages = max(0, (len(data) - 1) // PAGE_SIZE)
                for i in range(1, extra_pages + 1):
                    if (index + i) not in state.store:
                        state.store.install(
                            index + i,
                            data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE],
                            effective,
                        )
                # Keep the scan looking sequential past the window.
                state.streams.advance_head(index + extra_pages)
                return state.store.install(index, data[:PAGE_SIZE], effective)
            data = state.down_channel.pager_object.page_in(
                index * PAGE_SIZE, PAGE_SIZE, effective
            )
            return state.store.install(index, data, effective)

        return fault

    def _merge_recovered(
        self, state: CoherentFileState, recovered: Dict[int, bytes]
    ) -> None:
        """Fold data recalled from upstream holders into our cache as
        dirty (it is newer than the lower layer's copy), or push it
        straight down when we are not caching."""
        if not recovered:
            return
        if self.cache_enabled:
            for index, data in recovered.items():
                state.store.install(
                    index, data, AccessRights.READ_WRITE, dirty=True
                )
        else:
            self._ensure_down(state)
            for index, data in sorted(recovered.items()):
                state.down_channel.pager_object.page_out(
                    index * PAGE_SIZE, PAGE_SIZE, data
                )

    # ------------------------------------------------------------- attributes
    def _collect_latest_attrs(self, state: CoherentFileState) -> None:
        """Attribute analogue of write_back: pull dirty attributes from
        upstream file-system caches (narrowable to fs_cache) so this
        layer's view is current.  VMM channels are plain cache managers
        and are skipped — so this costs nothing in a plain SFS."""
        with self._fanout_region():
            for channel in self.channels.channels_for(state.source_key):
                fs_cache = narrow(channel.cache_object, FsCache)
                if fs_cache is None:
                    continue
                fetched = fs_cache.write_back_attributes()
                if fetched is not None:
                    if self.cache_enabled:
                        state.attrs = CachedAttributes(fetched, dirty=True)
                    else:
                        self._ensure_down(state)
                        if state.down_pager is not None:
                            state.down_pager.attr_write_out(fetched)

    def _current_attrs(self, state: CoherentFileState) -> FileAttributes:
        self._collect_latest_attrs(state)
        if self.cache_enabled:
            if state.attrs is None:
                self._ensure_down(state)
                if state.down_pager is not None:
                    fetched = state.down_pager.attr_page_in()
                else:
                    fetched = state.under_file.get_attributes()
                state.attrs = CachedAttributes(fetched)
            return state.attrs.attrs
        return state.under_file.get_attributes()

    def _now(self) -> int:
        return int(self.world.clock.now_us)

    def _invalidate_upstream_attrs(
        self, state: CoherentFileState, exclude: Optional[Channel] = None
    ) -> None:
        """Attribute-coherency fan-out: tell every upstream file-system
        cache (narrowable to fs_cache) to drop its attribute copy."""
        with self._fanout_region():
            for channel in self.channels.channels_for(state.source_key):
                if exclude is not None and channel is exclude:
                    continue
                fs_cache = narrow(channel.cache_object, FsCache)
                if fs_cache is not None:
                    fs_cache.invalidate_attributes()

    # --------------------------------------------------------------- file ops
    def file_read(self, state: CoherentFileState, offset: int, size: int) -> bytes:
        self.world.charge.fs_read_cpu()
        attrs = self._current_attrs(state)
        if offset >= attrs.size:
            return b""
        size = min(size, attrs.size - offset)
        with self._fanout_region():
            recovered = state.holders.collect_latest(offset, size)
        self._merge_recovered(state, recovered)
        if self.cache_enabled:
            data = state.store.read(
                offset, size, self._fault_below(state, AccessRights.READ_ONLY)
            )
            state.attrs.touch_atime(self._now())
        else:
            data = self._read_through(state, offset, size, recovered)
        self.world.charge.memcpy(size)
        return data

    def _read_through(
        self,
        state: CoherentFileState,
        offset: int,
        size: int,
        recovered: Dict[int, bytes],
    ) -> bytes:
        self._ensure_down(state)
        out = bytearray()
        position, remaining = offset, size
        while remaining > 0:
            index, start = divmod(position, PAGE_SIZE)
            take = min(PAGE_SIZE - start, remaining)
            if index in recovered:
                page = recovered[index]
            else:
                page = state.down_channel.pager_object.page_in(
                    index * PAGE_SIZE, PAGE_SIZE, AccessRights.READ_ONLY
                )
            page = page + bytes(PAGE_SIZE - len(page))
            out += page[start : start + take]
            position += take
            remaining -= take
        return bytes(out)

    def file_write(self, state: CoherentFileState, offset: int, data: bytes) -> int:
        self.world.charge.fs_write_cpu()
        with self._fanout_region():
            recovered = state.holders.acquire(
                None, offset, len(data), AccessRights.READ_WRITE
            )
        self._merge_recovered(state, recovered)
        self.world.charge.memcpy(len(data))
        if self.cache_enabled:
            state.store.write(
                offset, data, self._fault_below(state, AccessRights.READ_WRITE)
            )
            self._current_attrs(state)  # ensure attrs are cached
            state.attrs.grow(offset + len(data))
            state.attrs.touch_mtime(self._now())
            self._invalidate_upstream_attrs(state)
        else:
            state.under_file.write(offset, data)
        return len(data)

    def file_get_attributes(self, state: CoherentFileState) -> FileAttributes:
        self.world.charge.fs_attr_copy()
        return self._current_attrs(state).copy()

    def file_length(self, state: CoherentFileState) -> int:
        return self._current_attrs(state).size

    def file_set_length(self, state: CoherentFileState, length: int) -> None:
        old = self._current_attrs(state).size
        if length < old:
            with self._fanout_region():
                if length % PAGE_SIZE:
                    # Recover the boundary page from any dirty holder before
                    # invalidating — its head (below the new length) survives.
                    boundary = (length // PAGE_SIZE) * PAGE_SIZE
                    recovered = state.holders.acquire(
                        None, boundary, PAGE_SIZE, AccessRights.READ_WRITE
                    )
                    self._merge_recovered(state, recovered)
                state.holders.invalidate(length, old - length)
            state.store.truncate_to(length)
        if self.cache_enabled:
            state.attrs.set_size(length)
            state.attrs.touch_mtime(self._now())
            self._invalidate_upstream_attrs(state)
        state.under_file.set_length(length)

    def file_sync(self, state: CoherentFileState) -> None:
        """Push dirty attributes (first — the length clamps page-outs)
        and dirty blocks to the lower layer.

        Write-back order is deterministic: dirty pages ascend by index;
        with ``batch_pageout`` set, contiguous runs go down as single
        ranged syncs, in the same ascending order."""
        if not self.cache_enabled:
            return
        self._ensure_down(state)
        if state.attrs is not None and state.attrs.dirty:
            if state.down_pager is not None:
                state.down_pager.attr_write_out(state.attrs.attrs.copy())
            state.attrs.dirty = False
        if self.batch_pageout:
            for run in state.store.dirty_runs():
                data = b"".join(page.snapshot() for _, page in run)
                state.down_channel.pager_object.sync_range(
                    run[0][0] * PAGE_SIZE, len(data), data
                )
                for _, page in run:
                    page.dirty = False
            return
        for index, page in state.store.dirty_pages():
            state.down_channel.pager_object.sync(
                index * PAGE_SIZE, PAGE_SIZE, page.snapshot()
            )
            page.dirty = False

    def _sync_impl(self) -> None:
        for state in self._states.values():
            if not state.destroyed:
                self.file_sync(state)

    # ------------------------------------------------ pager hooks (upstream)
    def _state_by_source(self, source_key: Hashable) -> CoherentFileState:
        state = self._states_by_source.get(source_key)
        if state is None:
            raise FsError(f"no file state for {source_key!r}")
        return state

    def _requester_channel(self, source_key, pager_object) -> Channel:
        for channel in self.channels.channels_for(source_key):
            if channel.pager_object is pager_object:
                return channel
        raise FsError("pager object does not belong to a live channel")

    def _pager_page_in(
        self, source_key, pager_object, offset: int, size: int, access: AccessRights
    ) -> bytes:
        state = self._state_by_source(source_key)
        requester = self._requester_channel(source_key, pager_object)
        with self._fanout_region():
            recovered = state.holders.acquire(requester, offset, size, access)
        self._merge_recovered(state, recovered)
        if self.cache_enabled:
            return state.store.read(offset, size, self._fault_below(state, access))
        return self._read_through(state, offset, size, recovered)

    def _pager_page_in_range(
        self, source_key, pager_object, offset, min_size, max_size, access
    ) -> bytes:
        """Serve a ranged page-in from the cache (clamped to the file),
        so an upstream reader with read-ahead enabled gets its window in
        one call — and this layer prefetches below with clustering."""
        state = self._state_by_source(source_key)
        if self.cache_enabled:
            size = min(max_size, max(min_size, self.file_length(state) - offset))
            size = max(size, 0)
            if size == 0:
                return b""
            requester = self._requester_channel(source_key, pager_object)
            with self._fanout_region():
                recovered = state.holders.acquire(requester, offset, size, access)
            self._merge_recovered(state, recovered)
            # The upstream explicitly asked for this window, so fetching
            # the missing pages below in clustered runs is demanded data,
            # not speculation — no knob gates it.  This is what lets a
            # read-ahead hint issued above a stacked layer survive all
            # the way to the disk layer's clustering.
            self._prefetch_missing(state, offset, size, access)
            return state.store.read(offset, size, self._fault_below(state, access))
        # Not caching: still forward the window so clustering below
        # survives this layer instead of collapsing to the minimum.
        size = min(
            max_size, max(min_size, state.under_file.get_length() - offset)
        )
        size = max(size, 0)
        if size == 0:
            return b""
        requester = self._requester_channel(source_key, pager_object)
        with self._fanout_region():
            recovered = state.holders.acquire(requester, offset, size, access)
        self._merge_recovered(state, recovered)  # pushed straight down
        self._ensure_down(state)
        return state.down_channel.pager_object.page_in_range(
            offset, min_size, size, access
        )

    def _prefetch_missing(
        self,
        state: CoherentFileState,
        offset: int,
        size: int,
        access: AccessRights,
    ) -> None:
        """Fetch the missing pages of ``[offset, offset + size)`` from
        below as ranged page-ins, one per contiguous missing run.
        Single-page gaps are left to the normal fault path (identical
        cost, and they keep feeding the sequential-stream detector)."""
        effective = access if access.writable else AccessRights.READ_ONLY
        missing = [i for i in page_range(offset, size) if i not in state.store]
        for run_start, run_len in index_runs(missing):
            if run_len < 2:
                continue
            self._ensure_down(state)
            data = state.down_channel.pager_object.page_in_range(
                run_start * PAGE_SIZE,
                run_len * PAGE_SIZE,
                run_len * PAGE_SIZE,
                effective,
            )
            for i in range(run_len):
                state.store.install(
                    run_start + i,
                    data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE],
                    effective,
                )

    def _pager_page_out(
        self, source_key, pager_object, offset: int, size: int, data: bytes, retain
    ) -> None:
        state = self._state_by_source(source_key)
        requester = self._requester_channel(source_key, pager_object)
        if retain is None:
            state.holders.forget_range(requester, offset, size)
        elif retain is AccessRights.READ_ONLY:
            state.holders.record(requester, offset, size, AccessRights.READ_ONLY)
        else:
            # sync: the client retains the data read-write — it IS a
            # writer of these blocks, so register it (flushing any other
            # holder first; the incoming data supersedes what they held).
            recovered = state.holders.acquire(
                requester, offset, size, AccessRights.READ_WRITE
            )
            self._merge_recovered(state, recovered)
        pages = {
            index: data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]
            for i, index in enumerate(page_range(offset, size))
        }
        self._merge_recovered(state, pages)

    def _pager_attr_page_in(self, source_key, pager_object) -> FileAttributes:
        state = self._state_by_source(source_key)
        return self._current_attrs(state).copy()

    def _pager_attr_write_out(self, source_key, pager_object, attrs) -> None:
        state = self._state_by_source(source_key)
        if self.cache_enabled:
            state.attrs = CachedAttributes(attrs.copy(), dirty=True)
            requester = self._requester_channel(source_key, pager_object)
            self._invalidate_upstream_attrs(state, exclude=requester)
        else:
            self._ensure_down(state)
            if state.down_pager is not None:
                state.down_pager.attr_write_out(attrs)

    def _on_channel_closed(self, source_key, channel: Channel) -> None:
        state = self._states_by_source.get(source_key)
        if state is not None:
            state.holders.drop_channel(channel)

    # --------------------------------------------- cache hooks (downstream)
    # The lower pager acts on our cache of ITS file; we must first recall
    # the affected blocks from our own upstream holders (recursive
    # coherency, the P3-C3 arrow of Figure 6 composed with P1-C1).
    def _cache_flush_back(self, state, offset: int, size: int) -> Dict[int, bytes]:
        with self._fanout_region():
            recovered = state.holders.acquire(
                None, offset, size, AccessRights.READ_WRITE
            )
        for index, data in recovered.items():
            state.store.install(index, data, AccessRights.READ_WRITE, dirty=True)
        modified = state.store.collect_modified(offset, size)
        state.store.drop_range(offset, size)
        return modified

    def _cache_deny_writes(self, state, offset: int, size: int) -> Dict[int, bytes]:
        with self._fanout_region():
            recovered = state.holders.acquire(
                None, offset, size, AccessRights.READ_ONLY
            )
        for index, data in recovered.items():
            state.store.install(index, data, AccessRights.READ_WRITE, dirty=True)
        modified = state.store.collect_modified(offset, size)
        state.store.downgrade_range(offset, size)
        state.store.clean_range(offset, size)
        return modified

    def _cache_write_back(self, state, offset: int, size: int) -> Dict[int, bytes]:
        with self._fanout_region():
            recovered = state.holders.collect_latest(offset, size)
        for index, data in recovered.items():
            state.store.install(index, data, AccessRights.READ_WRITE, dirty=True)
        modified = state.store.collect_modified(offset, size)
        state.store.clean_range(offset, size)
        return modified

    def _cache_delete_range(self, state, offset: int, size: int) -> None:
        with self._fanout_region():
            state.holders.invalidate(offset, size)
        state.store.drop_range(offset, size)

    def _cache_zero_fill(self, state, offset: int, size: int) -> None:
        with self._fanout_region():
            state.holders.invalidate(offset, size)
        state.store.zero_range(offset, size)

    def _cache_populate(
        self, state, offset: int, size: int, access: AccessRights, data: bytes
    ) -> None:
        for i, index in enumerate(page_range(offset, size)):
            state.store.install(
                index, data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE], access
            )

    def _cache_destroy(self, state) -> None:
        state.store.clear()
        state.attrs = None
        state.destroyed = True

    def _cache_invalidate_attributes(self, state) -> None:
        state.attrs = None
        self._invalidate_upstream_attrs(state)

    def _cache_write_back_attributes(self, state) -> Optional[FileAttributes]:
        if state.attrs is not None and state.attrs.dirty:
            # The pager below now owns the latest attributes; our copy is
            # clean (mirrors write_back's dirty-clearing for data).
            state.attrs.dirty = False
            return state.attrs.attrs.copy()
        return None
