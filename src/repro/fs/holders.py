"""Per-block holder tracking — the heart of the coherency protocol.

"The implementation keeps track of the state of each file block
(read-only vs. read-write) and of each cache object that holds the block
at any point in time.  Coherency actions are triggered depending on the
state and the current request using a single-writer/multiple-reader
per-block coherency algorithm." (paper sec. 6.2)

A :class:`BlockHolderTable` records, for one file, which upstream
channels hold which blocks in which mode, and performs the fan-out of
coherency actions (deny_writes / flush_back / write_back / delete_range)
against the holders' cache objects.  It is reused by every pager that
maintains coherency: the coherency layer, DFS, and the monolithic SFS.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.types import PAGE_SIZE, AccessRights, page_range
from repro.vm.channel import Channel


class BlockHolderTable:
    """MRSW state for the blocks of one file across client channels.

    Alongside the per-page map, two refcount indexes are maintained:
    how many page entries each holder oid has (``_oid_refs``) and how
    many of those are writable (``_writer_refs``).  They exist purely so
    the hot query paths (:meth:`acquire`, :meth:`collect_latest`) can
    prove "no conflict possible" in O(1) and skip the page scan — the
    common case when one client owns a file.  Closed channels stay
    counted until dropped, which only costs a fall-through to the scan,
    never a missed conflict.
    """

    __slots__ = ("_holders", "_oid_refs", "_writer_refs")

    def __init__(self) -> None:
        #: page index -> {channel cache-object oid -> (channel, rights)}
        self._holders: Dict[int, Dict[int, Tuple[Channel, AccessRights]]] = {}
        #: holder oid -> number of page entries it appears in.
        self._oid_refs: Dict[int, int] = {}
        #: holder oid -> number of page entries it holds read-write.
        self._writer_refs: Dict[int, int] = {}

    def _tracked_pages(self, offset: int, size: int) -> List[int]:
        """Pages we actually track that intersect the byte range.  Ranges
        may be huge ('whole file': size 2**62), so never iterate the raw
        page range — only the tracked keys."""
        if size <= 0:
            return []
        first = offset // PAGE_SIZE
        last = (offset + size - 1) // PAGE_SIZE
        return [p for p in self._holders if first <= p <= last]

    # --- refcount maintenance --------------------------------------------
    def _unref(self, oid: int, was_writable: bool) -> None:
        refs = self._oid_refs
        count = refs.get(oid, 0)
        if count <= 1:
            refs.pop(oid, None)
        else:
            refs[oid] = count - 1
        if was_writable:
            self._unref_writer(oid)

    def _unref_writer(self, oid: int) -> None:
        writers = self._writer_refs
        count = writers.get(oid, 0)
        if count <= 1:
            writers.pop(oid, None)
        else:
            writers[oid] = count - 1

    # --- bookkeeping -----------------------------------------------------
    def record(
        self, channel: Channel, offset: int, size: int, access: AccessRights
    ) -> None:
        """Note that ``channel`` now holds the range with ``access``.

        Unlike the query paths, recording really touches every page in
        the range — callers pass real transfer sizes here.
        """
        oid = channel.cache_object.oid
        writable = access.writable
        holders = self._holders
        oid_refs = self._oid_refs
        writer_refs = self._writer_refs
        entry = (channel, access)
        for page in page_range(offset, size):
            page_holders = holders.get(page)
            if page_holders is None:
                page_holders = holders[page] = {}
            previous = page_holders.get(oid)
            page_holders[oid] = entry
            if previous is None:
                oid_refs[oid] = oid_refs.get(oid, 0) + 1
                if writable:
                    writer_refs[oid] = writer_refs.get(oid, 0) + 1
            else:
                was_writable = previous[1].writable
                if writable and not was_writable:
                    writer_refs[oid] = writer_refs.get(oid, 0) + 1
                elif was_writable and not writable:
                    self._unref_writer(oid)

    def forget_range(self, channel: Channel, offset: int, size: int) -> None:
        oid = channel.cache_object.oid
        for page in self._tracked_pages(offset, size):
            previous = self._holders[page].pop(oid, None)
            if previous is not None:
                self._unref(oid, previous[1].writable)

    def drop_channel(self, channel: Channel) -> None:
        oid = channel.cache_object.oid
        for holders in self._holders.values():
            previous = holders.pop(oid, None)
            if previous is not None:
                self._unref(oid, previous[1].writable)

    def holders_of(self, page: int) -> List[Tuple[Channel, AccessRights]]:
        return list(self._holders.get(page, {}).values())

    def writer_of(self, page: int) -> Optional[Channel]:
        for channel, rights in self.holders_of(page):
            if rights.writable:
                return channel
        return None

    def any_holder(self) -> bool:
        return bool(self._oid_refs)

    # --- coherency actions ------------------------------------------------
    def _conflicting_channels(
        self, offset: int, size: int, access: AccessRights, exclude_oid: Optional[int]
    ) -> Dict[int, Tuple[Channel, AccessRights]]:
        """Channels that must be acted on before granting ``access`` over
        the range: every other holder for a write request, every other
        *writer* for a read request."""
        conflicts: Dict[int, Tuple[Channel, AccessRights]] = {}
        for page in self._tracked_pages(offset, size):
            for oid, (channel, rights) in self._holders[page].items():
                if oid == exclude_oid or channel.closed:
                    continue
                if access.writable or rights.writable:
                    # Keep the strongest conflicting mode we have seen.
                    previous = conflicts.get(oid)
                    if previous is None or rights.writable:
                        conflicts[oid] = (channel, rights)
        return conflicts

    def acquire(
        self,
        requester: Optional[Channel],
        offset: int,
        size: int,
        access: AccessRights,
    ) -> Dict[int, bytes]:
        """Make it legal for ``requester`` (or the pager itself, when
        None) to hold ``[offset, offset+size)`` with ``access``.

        Read requests downgrade conflicting writers (deny_writes); write
        requests flush every other holder (flush_back).  Returns the
        modified data recovered from holders, keyed by page index — the
        caller must merge it into its authoritative copy *before* serving
        the request.
        """
        exclude = requester.cache_object.oid if requester is not None else None
        # O(1) no-conflict proofs from the refcount indexes: a write
        # request conflicts only with *other holders*, a read request
        # only with *other writers*.  When neither exists, skip the page
        # scan entirely — the single-client common case.
        if access.writable:
            refs = self._oid_refs
            no_conflicts = not refs or (len(refs) == 1 and exclude in refs)
        else:
            writers = self._writer_refs
            no_conflicts = not writers or (
                len(writers) == 1 and exclude in writers
            )
        if no_conflicts:
            if requester is not None:
                self.record(requester, offset, size, access)
            return {}
        recovered: Dict[int, bytes] = {}
        for oid, (channel, rights) in self._conflicting_channels(
            offset, size, access, exclude
        ).items():
            if access.writable:
                modified = channel.cache_object.flush_back(offset, size)
                self._forget_holder_range(oid, offset, size)
            else:
                modified = channel.cache_object.deny_writes(offset, size)
                self._downgrade_holder_range(oid, offset, size)
            recovered.update(modified)
        if requester is not None:
            self.record(requester, offset, size, access)
        return recovered

    def collect_latest(self, offset: int, size: int) -> Dict[int, bytes]:
        """Pull current modified data from writers without changing their
        mode (write_back) — used when the pager itself needs to *read*
        data that an upstream cache may have dirtied."""
        if not self._writer_refs:
            return {}
        recovered: Dict[int, bytes] = {}
        seen: set = set()
        for page in self._tracked_pages(offset, size):
            for oid, (channel, rights) in self._holders[page].items():
                if rights.writable and oid not in seen and not channel.closed:
                    seen.add(oid)
                    recovered.update(channel.cache_object.write_back(offset, size))
        return recovered

    def invalidate(
        self, offset: int, size: int, exclude: Optional[Channel] = None
    ) -> None:
        """delete_range on every holder (e.g. after a truncate)."""
        exclude_oid = exclude.cache_object.oid if exclude is not None else None
        notified: set = set()
        for page in self._tracked_pages(offset, size):
            holders = self._holders[page]
            for oid, (channel, rights) in list(holders.items()):
                if oid == exclude_oid:
                    continue
                if oid not in notified and not channel.closed:
                    notified.add(oid)
                    channel.cache_object.delete_range(offset, size)
                holders.pop(oid, None)
                self._unref(oid, rights.writable)

    # --- internals --------------------------------------------------------
    def _forget_holder_range(self, oid: int, offset: int, size: int) -> None:
        for page in self._tracked_pages(offset, size):
            previous = self._holders[page].pop(oid, None)
            if previous is not None:
                self._unref(oid, previous[1].writable)

    def _downgrade_holder_range(self, oid: int, offset: int, size: int) -> None:
        for page in self._tracked_pages(offset, size):
            holders = self._holders[page]
            previous = holders.get(oid)
            if previous is not None:
                holders[oid] = (previous[0], AccessRights.READ_ONLY)
                if previous[1].writable:
                    self._unref_writer(oid)


#: "Whole file" for the coarse protocol's coherency actions.
WHOLE_FILE = 2**62


class WholeFileHolderTable:
    """The coarse alternative protocol: whole-file multiple-reader /
    single-writer.

    The paper's architecture deliberately does not fix the protocol
    ("pagers are free to implement whatever coherency protocol they
    wish", sec. 3.3.3); its production choice is per-block
    (:class:`BlockHolderTable`).  This implementation tracks one state
    per *file* instead: any write conflict flushes a holder's entire
    cache of the file.  Correct, simpler, and pathological under false
    sharing — which `benchmarks/bench_ablation_protocol.py` measures.

    Implements the same interface as :class:`BlockHolderTable`.
    """

    def __init__(self) -> None:
        #: cache-object oid -> (channel, rights) — one entry per holder.
        self._holders: Dict[int, Tuple[Channel, AccessRights]] = {}

    # --- bookkeeping -----------------------------------------------------
    def record(
        self, channel: Channel, offset: int, size: int, access: AccessRights
    ) -> None:
        oid = channel.cache_object.oid
        previous = self._holders.get(oid)
        if previous is not None and previous[1].writable:
            access = AccessRights.READ_WRITE  # never silently downgrade
        self._holders[oid] = (channel, access)

    def forget_range(self, channel: Channel, offset: int, size: int) -> None:
        # Coarse protocol: giving up any of the file gives up all of it.
        self._holders.pop(channel.cache_object.oid, None)

    def drop_channel(self, channel: Channel) -> None:
        self._holders.pop(channel.cache_object.oid, None)

    def holders_of(self, page: int) -> List[Tuple[Channel, AccessRights]]:
        return list(self._holders.values())

    def writer_of(self, page: int) -> Optional[Channel]:
        for channel, rights in self._holders.values():
            if rights.writable:
                return channel
        return None

    def any_holder(self) -> bool:
        return bool(self._holders)

    # --- coherency actions ------------------------------------------------
    def acquire(
        self,
        requester: Optional[Channel],
        offset: int,
        size: int,
        access: AccessRights,
    ) -> Dict[int, bytes]:
        exclude = requester.cache_object.oid if requester is not None else None
        recovered: Dict[int, bytes] = {}
        for oid, (channel, rights) in list(self._holders.items()):
            if oid == exclude or channel.closed:
                continue
            if access.writable:
                recovered.update(channel.cache_object.flush_back(0, WHOLE_FILE))
                del self._holders[oid]
            elif rights.writable:
                recovered.update(channel.cache_object.deny_writes(0, WHOLE_FILE))
                self._holders[oid] = (channel, AccessRights.READ_ONLY)
        if requester is not None:
            self.record(requester, offset, size, access)
        return recovered

    def collect_latest(self, offset: int, size: int) -> Dict[int, bytes]:
        recovered: Dict[int, bytes] = {}
        for oid, (channel, rights) in self._holders.items():
            if rights.writable and not channel.closed:
                recovered.update(channel.cache_object.write_back(0, WHOLE_FILE))
        return recovered

    def invalidate(
        self, offset: int, size: int, exclude: Optional[Channel] = None
    ) -> None:
        exclude_oid = exclude.cache_object.oid if exclude is not None else None
        for oid, (channel, _) in list(self._holders.items()):
            if oid == exclude_oid:
                continue
            if not channel.closed:
                channel.cache_object.delete_range(0, WHOLE_FILE)
            del self._holders[oid]


def make_holder_table(protocol: str):
    """Factory for the pluggable coherency policy."""
    if protocol == "per_block":
        return BlockHolderTable()
    if protocol == "whole_file":
        return WholeFileHolderTable()
    raise ValueError(f"unknown coherency protocol {protocol!r}")
