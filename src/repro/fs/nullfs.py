"""NULLFS — the minimal pass-through layer.

The smallest possible stackable file system: it adds no functionality at
all.  It exists for two reasons:

* as the worked example for layer authors (see docs/WRITING_A_LAYER.md):
  with the generic runtime in ``fs/base.py`` supplying the naming face,
  the forwarding file handles, and the channel dispatch spine, a
  pass-through layer is nothing but a name;
* as the measuring stick for pure layering overhead: the generic
  :class:`~repro.fs.base.ForwardingFile` forwards ``bind`` to the
  underlying file, so mapped I/O through NULLFS is *free* (the local VMM
  talks straight to the underlying pager — the same mechanism DFS uses
  for local clients), and read/write pay exactly one forwarding hop.

This is the Spring analogue of the classic BSD nullfs / loopback vnode
layer the paper's related-work section situates itself against.
"""

from __future__ import annotations

from repro.fs.base import BaseLayer, ForwardingFile, LayerDirectory


class NullFile(ForwardingFile):
    """A pass-through handle; everything comes from ForwardingFile."""


class NullDirectory(LayerDirectory):
    """A pass-through directory; everything comes from LayerDirectory."""


class NullFs(BaseLayer):
    """See module docstring."""

    file_class = NullFile
    directory_class = NullDirectory

    def fs_type(self) -> str:
        return "nullfs"
