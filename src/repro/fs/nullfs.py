"""NULLFS — the minimal pass-through layer.

The smallest possible stackable file system: it adds no functionality at
all.  It exists for two reasons:

* as the worked example for layer authors (see docs/WRITING_A_LAYER.md):
  every structural obligation of a layer — wrapping resolution, the
  naming face, bind handling — with nothing else in the way;
* as the measuring stick for pure layering overhead: NULLFS forwards
  ``bind`` to the underlying file, so mapped I/O through it is *free*
  (the local VMM talks straight to the underlying pager — the same
  mechanism DFS uses for local clients), and read/write pay exactly one
  forwarding hop.

This is the Spring analogue of the classic BSD nullfs / loopback vnode
layer the paper's related-work section situates itself against.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.ipc.invocation import operation
from repro.ipc.narrow import narrow
from repro.naming.context import NamingContext
from repro.types import AccessRights
from repro.vm.channel import BindResult
from repro.vm.memory_object import CacheManager

from repro.fs.attributes import FileAttributes
from repro.fs.base import BaseLayer
from repro.fs.file import File


class NullFile(File):
    """A pass-through handle: every operation forwards to the underlying
    file; binds are forwarded so mappings bypass NULLFS entirely."""

    def __init__(self, layer: "NullFs", under_file: File) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.under_file = under_file
        self.source_key: Hashable = ("nullfs", layer.oid, under_file.source_key)
        layer.world.charge.fs_open_state()

    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        # Identity data => share the underlying cache (paper sec. 4.2.2).
        self.layer.world.counters.inc("nullfs.bind_forwarded")
        return self.under_file.bind(cache_manager, requested_access, offset, length)

    @operation
    def get_length(self) -> int:
        return self.under_file.get_length()

    @operation
    def set_length(self, length: int) -> None:
        self.under_file.set_length(length)

    @operation
    def read(self, offset: int, size: int) -> bytes:
        return self.under_file.read(offset, size)

    @operation
    def write(self, offset: int, data: bytes) -> int:
        return self.under_file.write(offset, data)

    @operation
    def get_attributes(self) -> FileAttributes:
        return self.under_file.get_attributes()

    @operation
    def check_access(self, access: AccessRights) -> None:
        self.under_file.check_access(access)

    @operation
    def sync(self) -> None:
        self.under_file.sync()


class NullDirectory(NamingContext):
    def __init__(self, layer: "NullFs", under_context: NamingContext) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.under_context = under_context

    @operation
    def resolve(self, name: str) -> object:
        return self.layer.wrap_resolved(self.under_context.resolve(name))

    @operation
    def bind(self, name: str, obj: object) -> None:
        self.under_context.bind(name, obj)

    @operation
    def unbind(self, name: str) -> object:
        return self.under_context.unbind(name)

    @operation
    def rebind(self, name: str, obj: object) -> object:
        return self.under_context.rebind(name, obj)

    @operation
    def list_bindings(self):
        return [
            (name, self.layer.wrap_resolved(obj, charge_open=False))
            for name, obj in self.under_context.list_bindings()
        ]

    @operation
    def create_file(self, name: str) -> File:
        return self.layer.wrap_resolved(self.under_context.create_file(name))

    @operation
    def create_dir(self, name: str) -> "NullDirectory":
        return NullDirectory(self.layer, self.under_context.create_dir(name))

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        self.under_context.rename(old_name, new_name)


class NullFs(BaseLayer):
    """See module docstring."""

    max_under = 1

    def fs_type(self) -> str:
        return "nullfs"

    @operation
    def resolve(self, name: str) -> object:
        return self.wrap_resolved(self.under.resolve(name))

    @operation
    def bind(self, name: str, obj: object) -> None:
        self.under.bind(name, obj)

    @operation
    def unbind(self, name: str) -> object:
        return self.under.unbind(name)

    @operation
    def rebind(self, name: str, obj: object) -> object:
        return self.under.rebind(name, obj)

    @operation
    def list_bindings(self):
        return [
            (name, self.wrap_resolved(obj, charge_open=False))
            for name, obj in self.under.list_bindings()
        ]

    @operation
    def create_file(self, name: str) -> File:
        return self.wrap_resolved(self.under.create_file(name))

    @operation
    def create_dir(self, name: str) -> NullDirectory:
        return NullDirectory(self, self.under.create_dir(name))

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        self.under.rename(old_name, new_name)

    def wrap_resolved(self, obj: object, charge_open: bool = True) -> object:
        under_file = narrow(obj, File)
        if under_file is not None:
            if charge_open:
                under_file.check_access(AccessRights.READ_ONLY)
                under_file.get_attributes()
                return NullFile(self, under_file)
            handle = object.__new__(NullFile)
            File.__init__(handle, self.domain)
            handle.layer = self
            handle.under_file = under_file
            handle.source_key = ("nullfs", self.oid, under_file.source_key)
            return handle
        under_context = narrow(obj, NamingContext)
        if under_context is not None:
            return NullDirectory(self, under_context)
        return obj
