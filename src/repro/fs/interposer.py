"""Per-file interposition (paper sec. 5) — watchdog-style extensions.

Two mechanisms from the paper:

1. **Object interposition**: substitute a file O1 for O2 of the same
   type; O1 decides per operation whether to forward or implement the
   functionality itself.  :class:`InterposedFile` is the forwarding
   base; :class:`AuditFile`, :class:`ReadOnlyFile` and
   :class:`TransformFile` are concrete watchdog-style interposers.

2. **Name-resolution-time interposition**: "an interposer resolves the
   name of the context where the file object(s) is bound, unbinds the
   context from the name space, and binds in its place a naming context
   implemented by the interposer itself."  :class:`WatchdogContext` and
   :func:`interpose_on_name` implement exactly that recipe (requiring
   bind rights on the parent context — the paper's authentication note).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import PermissionDeniedError, ReadOnlyError
from repro.ipc.interpose import InterposerBase
from repro.ipc.invocation import operation
from repro.ipc.narrow import narrow
from repro.naming.context import NamingContext
from repro.types import AccessRights
from repro.vm.channel import BindResult
from repro.vm.memory_object import CacheManager

from repro.fs.attributes import FileAttributes
from repro.fs.file import File


class InterposedFile(InterposerBase, File):
    """A file of the same type as its target, forwarding every operation.

    Subclasses override individual operations; anything not overridden
    reaches the original file unchanged.
    """

    def __init__(self, domain, target: File) -> None:
        InterposerBase.__init__(self, domain, target)
        self.source_key = ("interposed", self.oid, target.source_key)

    # --- memory_object ------------------------------------------------------
    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        return self.forward("bind", cache_manager, requested_access, offset, length)

    @operation
    def get_length(self) -> int:
        return self.forward("get_length")

    @operation
    def set_length(self, length: int) -> None:
        return self.forward("set_length", length)

    # --- file ------------------------------------------------------------------
    @operation
    def read(self, offset: int, size: int) -> bytes:
        return self.forward("read", offset, size)

    @operation
    def write(self, offset: int, data: bytes) -> int:
        return self.forward("write", offset, data)

    @operation
    def get_attributes(self) -> FileAttributes:
        return self.forward("get_attributes")

    @operation
    def check_access(self, access: AccessRights) -> None:
        return self.forward("check_access", access)

    @operation
    def sync(self) -> None:
        return self.forward("sync")


class AuditFile(InterposedFile):
    """Records every data access (a watchdog that only watches)."""

    def __init__(self, domain, target: File) -> None:
        super().__init__(domain, target)
        self.audit_log: List[Tuple[str, int, int]] = []

    @operation
    def read(self, offset: int, size: int) -> bytes:
        self.audit_log.append(("read", offset, size))
        return self.forward("read", offset, size)

    @operation
    def write(self, offset: int, data: bytes) -> int:
        self.audit_log.append(("write", offset, len(data)))
        return self.forward("write", offset, data)


class ReadOnlyFile(InterposedFile):
    """Denies all mutation, implementing those operations itself."""

    @operation
    def write(self, offset: int, data: bytes) -> int:
        self.record_local("write", offset)
        raise ReadOnlyError("file is interposed read-only")

    @operation
    def set_length(self, length: int) -> None:
        self.record_local("set_length", length)
        raise ReadOnlyError("file is interposed read-only")

    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        if requested_access.writable:
            self.record_local("bind", offset)
            raise ReadOnlyError("writable mapping denied by interposer")
        return self.forward("bind", cache_manager, requested_access, offset, length)

    @operation
    def check_access(self, access: AccessRights) -> None:
        if access.writable:
            raise ReadOnlyError("file is interposed read-only")
        return self.forward("check_access", access)


class TransformFile(InterposedFile):
    """Applies a byte-level transform on the way in and out — the
    watchdog paper's canonical example (e.g. transparent rot13).

    ``decode`` is applied to data read; ``encode`` to data written.
    Mappings are denied: the transform only exists on the read/write
    path, so handing out raw pages would bypass it.
    """

    def __init__(
        self,
        domain,
        target: File,
        encode: Callable[[bytes], bytes],
        decode: Callable[[bytes], bytes],
    ) -> None:
        super().__init__(domain, target)
        self.encode = encode
        self.decode = decode

    @operation
    def read(self, offset: int, size: int) -> bytes:
        data = self.forward("read", offset, size)
        return self.decode(data)

    @operation
    def write(self, offset: int, data: bytes) -> int:
        return self.forward("write", offset, self.encode(data))

    @operation
    def bind(self, cache_manager, requested_access, offset, length) -> BindResult:
        self.record_local("bind", offset)
        raise PermissionDeniedError(
            "mapping denied: transform interposer covers read/write only"
        )


class WatchdogContext(NamingContext):
    """A naming context interposed over another context.

    "The interposer can then selectively intercept some name resolutions
    while passing the rest to the original context."  Interception rules
    map binding names to wrapper factories.
    """

    def __init__(self, domain, original: NamingContext) -> None:
        super().__init__(domain)
        self.original = original
        self._rules: Dict[str, Callable[[File], File]] = {}
        self.intercepted: List[str] = []

    def watch(self, name: str, make_wrapper: Callable[[File], File]) -> None:
        """Intercept resolutions of ``name``, wrapping the resolved file."""
        self._rules[name] = make_wrapper

    @operation
    def resolve(self, name: str) -> object:
        head = name.split("/", 1)[0].lstrip("/")
        resolved = self.original.resolve(name)
        rule = self._rules.get(head)
        if rule is None:
            return resolved
        target = narrow(resolved, File)
        if target is None:
            return resolved
        self.intercepted.append(name)
        self.world.counters.inc("watchdog.intercepted")
        return rule(target)

    @operation
    def bind(self, name: str, obj: object) -> None:
        self.original.bind(name, obj)

    @operation
    def unbind(self, name: str) -> object:
        return self.original.unbind(name)

    @operation
    def rebind(self, name: str, obj: object) -> object:
        return self.original.rebind(name, obj)

    @operation
    def list_bindings(self):
        return self.original.list_bindings()

    @operation
    def create_file(self, name: str) -> File:
        return self.original.create_file(name)


def interpose_on_name(
    parent: NamingContext, name: str, domain
) -> WatchdogContext:
    """The paper's name-space interposition recipe: resolve the context
    bound at ``name`` under ``parent``, and rebind a watchdog context
    implemented by ``domain`` in its place.

    The caller's domain must pass ``parent``'s ACL bind check — "the
    interposer has to be appropriately authenticated to be able to
    manipulate the name space".
    """
    original = parent.resolve(name)
    context = narrow(original, NamingContext)
    if context is None:
        raise PermissionDeniedError(f"{name!r} is not a context")
    watchdog = WatchdogContext(domain, context)
    parent.rebind(name, watchdog)
    return watchdog
