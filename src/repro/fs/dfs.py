"""DFS — the network-coherent distributed file system layer (Figure 7).

"The job of DFS is to export SFS files to other machines in a coherent
fashion ... For each underlying file_SFS, DFS exports a file_DFS.
File_DFS may be accessed on the local machine through the normal Spring
mechanisms, or it may be accessed remotely through the DFS protocol."

The two defining mechanisms, both implemented here:

* **Local bind forwarding** — "Local binds to file_DFS are forwarded to
  the corresponding file_SFS.  Thus, local clients of file_DFS use the
  same cache object as clients of file_SFS, and DFS is not involved in
  local page-in/page-out requests."  (Toggle with
  ``forward_local_binds=False`` for the ablation.)
* **DFS as cache manager to SFS** — remote traffic flows through DFS,
  which binds to the underlying file (the P2-C2 connection).  When a
  local client needs a block that remote clients hold dirty, SFS's
  coherency layer calls DFS's fs_cache, and DFS recalls the block from
  the remote VMMs over the network; and vice versa.

Remote machines reach DFS through ordinary location-transparent object
invocation — our network model charges every hop, which *is* the
"private DFS protocol" of the paper for accounting purposes.

DFS is the layer the :class:`repro.fs.base.ChannelOps` defaults are
modelled on — a coherent pass-through that keeps no data cache of its
own — so it overrides *no* channel operations at all.  What remains
here is its one transform point (local bind forwarding) and the
intent-open fast path.
"""

from __future__ import annotations

import dataclasses

from repro.errors import FsError
from repro.ipc.invocation import operation
from repro.ipc.narrow import narrow
from repro.types import PAGE_SIZE, AccessRights
from repro.vm.cache_object import FsCache
from repro.vm.channel import BindResult
from repro.vm.memory_object import CacheManager

from repro.fs.attributes import FileAttributes
from repro.fs.base import (
    BaseLayer,
    ChannelOps,
    LayerDirectory,
    LayerFile,
    LayerFileState,
)
from repro.fs.file import File


@dataclasses.dataclass(frozen=True)
class IntentOpenResult:
    """Result of :meth:`DfsLayer.open_intent` — the open handle plus the
    attributes the client would otherwise fetch in a separate round
    trip.  The NFSv4/Lustre "intent" idea applied to the Spring open
    protocol: lookup, access check, and attribute fetch travel together."""

    file: "DfsFile"
    attributes: FileAttributes


class DfsFileState(LayerFileState):
    """Per-exported-file state on the DFS server.

    The holder table is *volatile*: a node crash loses it (see
    :meth:`DfsLayer._on_node_crash`).  ``registered_epoch`` stamps which
    server incarnation the current table was built under; a mismatch
    against ``node.epoch`` after recovery triggers re-registration.
    """

    def __init__(self, layer: "DfsLayer", under_file: File) -> None:
        super().__init__(layer, under_file)
        self.registered_epoch = layer.domain.node.epoch


class DfsOps(ChannelOps):
    """DFS dispatch table: identical to the coherent pass-through
    defaults, except that every state lookup first runs crash recovery —
    a channel operation arriving after the server rebooted must not see
    the empty post-crash holder table as authoritative."""

    def state(self, source_key):
        state = self.layer.state_by_source(source_key)
        self.layer._ensure_recovered(state)
        return state


class DfsFile(LayerFile):
    """file_DFS: an open handle exported by DFS."""

    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        layer = self.layer
        caller_local = (
            getattr(cache_manager, "domain", None) is not None
            and cache_manager.domain.node is layer.domain.node
        )
        if caller_local and layer.forward_local_binds:
            # Forward: the local VMM ends up talking to SFS directly and
            # shares the very same cached memory as direct SFS clients.
            layer.world.counters.inc("dfs.bind_forwarded")
            return self.state.under_file.bind(
                cache_manager, requested_access, offset, length
            )
        layer.world.counters.inc("dfs.bind_served")
        # P2-C2 up front: remote traffic must participate in the lower
        # layer's coherency from the first page.
        layer.ensure_down(self.state)
        return layer.bind_file(
            self.state, cache_manager, requested_access, offset, length
        )


class DfsDirectory(LayerDirectory):
    """Directory wrapper exporting DFS files (resolvable remotely)."""

    @operation
    def open_intent(self, name: str) -> "IntentOpenResult":
        """Lookup + access check + attribute fetch in one invocation
        (one round trip for a remote client)."""
        return self.layer._open_intent(self.under_context, name)


class DfsLayer(BaseLayer):
    """The DFS server layer; see module docstring."""

    max_under = 1
    ops_class = DfsOps
    state_class = DfsFileState
    file_class = DfsFile
    directory_class = DfsDirectory

    def __init__(
        self,
        domain,
        forward_local_binds: bool = True,
        protocol: str = "per_block",
        compound: bool = False,
    ) -> None:
        super().__init__(domain)
        self.forward_local_binds = forward_local_binds
        #: Coherency policy for remote client channels (sec. 3.3.3: the
        #: protocol is the pager's choice).
        self.protocol = protocol
        self.compound = compound
        # A server crash loses the volatile per-client holder state;
        # recovery rebuilds it from the surviving clients (Lustre-style).
        domain.node.add_crash_listener(self._on_node_crash)

    def fs_type(self) -> str:
        return "dfs"

    # --------------------------------------------------- crash recovery
    def _on_node_crash(self) -> None:
        """The server machine went down: every per-client holder table —
        who caches which block, with what rights — is volatile state and
        is lost with the crash.  The underlying SFS data (disk) and the
        clients' own caches survive."""
        for state in self._states.values():
            state.holders = self._make_holders()

    def _ensure_recovered(self, state: DfsFileState) -> None:
        """Rebuild ``state``'s holder table after a server crash.

        Clients detect the recovery through the node's epoch bump (the
        state is stamped with the epoch its table was registered under).
        Each surviving upstream channel re-declares its cached holds via
        :meth:`~repro.vm.cache_object.CacheObject.held_blocks`, and any
        dirty attribute copy a client's fs_cache still holds is replayed
        down through the coherency layer — so post-recovery reads see
        exactly the pre-crash state.  Dirty *data* blocks need no replay
        here: re-recording the writer's hold lets the normal MRSW recall
        fetch them on the next conflicting access.
        """
        node = self.domain.node
        if state.registered_epoch == node.epoch:
            return
        state.registered_epoch = node.epoch
        with self.fanout_region():
            for channel in self.channels.channels_for(state.source_key):
                held = channel.cache_object.held_blocks()
                if held:
                    for index in sorted(held):
                        writable, _dirty = held[index]
                        access = (
                            AccessRights.READ_WRITE
                            if writable
                            else AccessRights.READ_ONLY
                        )
                        state.holders.record(
                            channel, index * PAGE_SIZE, PAGE_SIZE, access
                        )
                fs_cache = narrow(channel.cache_object, FsCache)
                if fs_cache is not None:
                    attrs = fs_cache.write_back_attributes()
                    if attrs is not None:
                        self.ensure_down(state)
                        if state.down_pager is not None:
                            state.down_pager.attr_write_out(attrs)
        self.world.counters.inc("dfs.recoveries")
        self.world.trace(
            "fault", "dfs_recovered",
            file=str(state.under_key), epoch=node.epoch,
        )

    @operation
    def open_intent(self, name: str) -> IntentOpenResult:
        """Lookup + access check + attribute fetch in one invocation
        (one round trip for a remote client)."""
        return self._open_intent(self.under, name)

    def _open_intent(self, under_context, name: str) -> IntentOpenResult:
        """Shared body of the intent-open operations: runs entirely on
        the server, where every sub-step is a local or cross-domain call."""
        obj = under_context.resolve(name)
        under_file = narrow(obj, File)
        if under_file is None:
            raise FsError(f"{name!r} is not a file")
        under_file.check_access(AccessRights.READ_ONLY)
        attrs = under_file.get_attributes()
        self.world.charge.fs_attr_copy()
        self.world.counters.inc("dfs.intent_open")
        return IntentOpenResult(DfsFile(self, self._state_for(under_file)), attrs)

    # ------------------------------------------------------------- file ops
    # DFS keeps no data cache of its own: reads and writes are served out
    # of the underlying file after recalling anything remote VMMs hold
    # dirty.  (The paper's DFS maps file_SFS; the effect — data cached on
    # the server by the layer below — is the same.)
    def file_read(self, state: DfsFileState, offset: int, size: int) -> bytes:
        self._ensure_recovered(state)
        self.world.charge.fs_read_cpu()
        with self.fanout_region():
            recovered = state.holders.collect_latest(offset, size)
            self.push_recovered(state, recovered)
        return state.under_file.read(offset, size)

    def file_write(self, state: DfsFileState, offset: int, data: bytes) -> int:
        self._ensure_recovered(state)
        self.world.charge.fs_write_cpu()
        with self.fanout_region():
            recovered = state.holders.acquire(
                None, offset, len(data), AccessRights.READ_WRITE
            )
            self.push_recovered(state, recovered)
        return state.under_file.write(offset, data)

    def file_set_length(self, state: DfsFileState, length: int) -> None:
        self._ensure_recovered(state)
        with self.fanout_region():
            state.holders.invalidate(length, 2**62)
        state.under_file.set_length(length)


def export_dfs(server_node, under_fs, name: str = "dfs", **layer_kwargs) -> DfsLayer:
    """Administrative helper: create a DFS layer on ``server_node``, stack
    it on ``under_fs``, and export it at ``/fs/<name>``.  Extra keyword
    arguments (``compound=True``, ``protocol=...``) pass through to
    :class:`DfsLayer`."""
    from repro.ipc.domain import Credentials

    domain = server_node.create_domain(
        f"{name}-server", Credentials(name, privileged=True)
    )
    dfs = DfsLayer(domain, **layer_kwargs)
    dfs.stack_on(under_fs)
    server_node.fs_context.bind(name, dfs)
    return dfs


def mount_remote(client_node, server_node, name: str = "dfs") -> object:
    """Bind a remote DFS export into the client node's /fs context —
    "the Spring naming system ... enables the naming system to be largely
    orthogonal to the file system"."""
    remote = server_node.fs_context.resolve(name)
    mount_name = f"{name}@{server_node.name}"
    client_node.fs_context.bind(mount_name, remote)
    return remote
