"""DFS — the network-coherent distributed file system layer (Figure 7).

"The job of DFS is to export SFS files to other machines in a coherent
fashion ... For each underlying file_SFS, DFS exports a file_DFS.
File_DFS may be accessed on the local machine through the normal Spring
mechanisms, or it may be accessed remotely through the DFS protocol."

The two defining mechanisms, both implemented here:

* **Local bind forwarding** — "Local binds to file_DFS are forwarded to
  the corresponding file_SFS.  Thus, local clients of file_DFS use the
  same cache object as clients of file_SFS, and DFS is not involved in
  local page-in/page-out requests."  (Toggle with
  ``forward_local_binds=False`` for the ablation.)
* **DFS as cache manager to SFS** — remote traffic flows through DFS,
  which binds to the underlying file (the P2-C2 connection).  When a
  local client needs a block that remote clients hold dirty, SFS's
  coherency layer calls DFS's fs_cache, and DFS recalls the block from
  the remote VMMs over the network; and vice versa.

Remote machines reach DFS through ordinary location-transparent object
invocation — our network model charges every hop, which *is* the
"private DFS protocol" of the paper for accounting purposes.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Dict, Hashable, Optional

from repro.errors import FsError
from repro.ipc.compound import compound_region
from repro.ipc.invocation import current_domain, operation
from repro.ipc.narrow import narrow
from repro.naming.context import NamingContext
from repro.types import PAGE_SIZE, AccessRights, page_range
from repro.vm.cache_object import FsCache
from repro.vm.channel import BindResult, Channel
from repro.vm.memory_object import CacheManager

from repro.fs.attributes import FileAttributes
from repro.fs.base import BaseLayer
from repro.fs.file import File
from repro.fs.holders import BlockHolderTable, make_holder_table


@dataclasses.dataclass(frozen=True)
class IntentOpenResult:
    """Result of :meth:`DfsLayer.open_intent` — the open handle plus the
    attributes the client would otherwise fetch in a separate round
    trip.  The NFSv4/Lustre "intent" idea applied to the Spring open
    protocol: lookup, access check, and attribute fetch travel together."""

    file: "DfsFile"
    attributes: FileAttributes


class DfsFileState:
    """Per-exported-file state on the DFS server."""

    def __init__(self, layer: "DfsLayer", under_file: File) -> None:
        self.layer = layer
        self.under_file = under_file
        self.under_key = under_file.source_key
        self.source_key: Hashable = ("dfs", layer.oid, self.under_key)
        #: Remote client channels (DFS is the pager for these).
        self.holders = make_holder_table(layer.protocol)
        #: P2-C2: DFS as cache manager to the layer below.
        self.down_channel: Optional[Channel] = None


class DfsFile(File):
    """file_DFS: an open handle exported by DFS."""

    def __init__(self, layer: "DfsLayer", state: DfsFileState) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.state = state
        self.source_key = state.source_key
        layer.world.charge.fs_open_state()

    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        layer = self.layer
        caller_local = (
            getattr(cache_manager, "domain", None) is not None
            and cache_manager.domain.node is layer.domain.node
        )
        if caller_local and layer.forward_local_binds:
            # Forward: the local VMM ends up talking to SFS directly and
            # shares the very same cached memory as direct SFS clients.
            layer.world.counters.inc("dfs.bind_forwarded")
            return self.state.under_file.bind(
                cache_manager, requested_access, offset, length
            )
        layer.world.counters.inc("dfs.bind_served")
        layer._ensure_down(self.state)
        return layer.bind_source(
            self.source_key,
            cache_manager,
            requested_access,
            offset,
            label=f"dfs:{self.state.under_key}",
        )

    @operation
    def get_length(self) -> int:
        return self.state.under_file.get_length()

    @operation
    def set_length(self, length: int) -> None:
        self.layer.file_set_length(self.state, length)

    @operation
    def read(self, offset: int, size: int) -> bytes:
        return self.layer.file_read(self.state, offset, size)

    @operation
    def write(self, offset: int, data: bytes) -> int:
        return self.layer.file_write(self.state, offset, data)

    @operation
    def get_attributes(self) -> FileAttributes:
        return self.layer.file_get_attributes(self.state)

    @operation
    def check_access(self, access: AccessRights) -> None:
        self.layer.world.charge.fs_access_check()

    @operation
    def sync(self) -> None:
        self.state.under_file.sync()


class DfsDirectory(NamingContext):
    """Directory wrapper exporting DFS files (resolvable remotely)."""

    def __init__(self, layer: "DfsLayer", under_context: NamingContext) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.under_context = under_context

    @operation
    def resolve(self, name: str) -> object:
        return self.layer.wrap_resolved(self.under_context.resolve(name))

    @operation
    def open_intent(self, name: str) -> "IntentOpenResult":
        """Lookup + access check + attribute fetch in one invocation
        (one round trip for a remote client)."""
        return self.layer._open_intent(self.under_context, name)

    @operation
    def bind(self, name: str, obj: object) -> None:
        self.under_context.bind(name, obj)

    @operation
    def unbind(self, name: str) -> object:
        self.layer.purge_named(self.under_context, name)
        return self.under_context.unbind(name)

    @operation
    def rebind(self, name: str, obj: object) -> object:
        return self.under_context.rebind(name, obj)

    @operation
    def list_bindings(self):
        return [
            (name, self.layer.wrap_resolved(obj, charge_open=False))
            for name, obj in self.under_context.list_bindings()
        ]

    @operation
    def create_file(self, name: str) -> File:
        return self.layer.wrap_resolved(self.under_context.create_file(name))

    @operation
    def create_dir(self, name: str) -> "DfsDirectory":
        return DfsDirectory(self.layer, self.under_context.create_dir(name))

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        self.under_context.rename(old_name, new_name)


class DfsLayer(BaseLayer):
    """The DFS server layer; see module docstring."""

    max_under = 1

    def __init__(
        self,
        domain,
        forward_local_binds: bool = True,
        protocol: str = "per_block",
        compound: bool = False,
    ) -> None:
        super().__init__(domain)
        self.forward_local_binds = forward_local_binds
        #: Coherency policy for remote client channels (sec. 3.3.3: the
        #: protocol is the pager's choice).
        self.protocol = protocol
        #: Batch per-holder coherency control messages (recalls,
        #: write-denials, invalidations) into one round trip per remote
        #: node.  Off by default: calibration is per-message.
        self.compound = compound
        self._states: Dict[Hashable, DfsFileState] = {}
        self._states_by_source: Dict[Hashable, DfsFileState] = {}

    def _fanout_region(self):
        """A compound region around a holder fan-out when batching is on,
        else a no-op context."""
        if self.compound:
            return compound_region(self.world)
        return contextlib.nullcontext()

    def fs_type(self) -> str:
        return "dfs"

    # ------------------------------------------------------------- naming face
    @operation
    def resolve(self, name: str) -> object:
        return self.wrap_resolved(self.under.resolve(name))

    @operation
    def open_intent(self, name: str) -> IntentOpenResult:
        """Lookup + access check + attribute fetch in one invocation
        (one round trip for a remote client)."""
        return self._open_intent(self.under, name)

    def _open_intent(self, under_context, name: str) -> IntentOpenResult:
        """Shared body of the intent-open operations: runs entirely on
        the server, where every sub-step is a local or cross-domain call."""
        obj = under_context.resolve(name)
        under_file = narrow(obj, File)
        if under_file is None:
            raise FsError(f"{name!r} is not a file")
        under_file.check_access(AccessRights.READ_ONLY)
        attrs = under_file.get_attributes()
        self.world.charge.fs_attr_copy()
        self.world.counters.inc("dfs.intent_open")
        return IntentOpenResult(DfsFile(self, self._state_for(under_file)), attrs)

    @operation
    def bind(self, name: str, obj: object) -> None:
        self.under.bind(name, obj)

    @operation
    def unbind(self, name: str) -> object:
        self.purge_named(self.under, name)
        return self.under.unbind(name)

    @operation
    def rebind(self, name: str, obj: object) -> object:
        return self.under.rebind(name, obj)

    @operation
    def list_bindings(self):
        return [
            (name, self.wrap_resolved(obj, charge_open=False))
            for name, obj in self.under.list_bindings()
        ]

    @operation
    def create_file(self, name: str) -> File:
        return self.wrap_resolved(self.under.create_file(name))

    @operation
    def create_dir(self, name: str) -> DfsDirectory:
        return DfsDirectory(self, self.under.create_dir(name))

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        self.under.rename(old_name, new_name)

    # ------------------------------------------------------ unlink hygiene
    def purge_named(self, under_context, name: str) -> None:
        """Drop per-file state before an unlink; the freed i-node may be
        reused and stale cached state must not leak into the new file."""
        try:
            obj = under_context.resolve(name)
        except Exception:
            return
        under_file = narrow(obj, File)
        if under_file is not None:
            self._purge_state(under_file.source_key)

    def _purge_state(self, under_key) -> None:
        state = self._states.pop(under_key, None)
        if state is None:
            return
        self._states_by_source.pop(state.source_key, None)
        state.holders.invalidate(0, 2**62)
        if state.down_channel is not None and not state.down_channel.closed:
            state.down_channel.close()
            state.down_channel = None

    def wrap_resolved(self, obj: object, charge_open: bool = True) -> object:
        under_file = narrow(obj, File)
        if under_file is not None:
            if charge_open:
                under_file.check_access(AccessRights.READ_ONLY)
                under_file.get_attributes()
            state = self._state_for(under_file)
            if charge_open:
                return DfsFile(self, state)
            handle = object.__new__(DfsFile)
            File.__init__(handle, self.domain)
            handle.layer = self
            handle.state = state
            handle.source_key = state.source_key
            return handle
        under_context = narrow(obj, NamingContext)
        if under_context is not None:
            return DfsDirectory(self, under_context)
        return obj

    def _state_for(self, under_file: File) -> DfsFileState:
        state = self._states.get(under_file.source_key)
        if state is None:
            state = DfsFileState(self, under_file)
            self._states[state.under_key] = state
            self._states_by_source[state.source_key] = state
        return state

    def _ensure_down(self, state: DfsFileState) -> None:
        """Establish P2-C2: DFS as cache manager to the layer below, so
        remote traffic participates in the lower layer's coherency."""
        if state.down_channel is None or state.down_channel.closed:
            state.down_channel = self.bind_below(
                state, state.under_file, AccessRights.READ_WRITE
            )

    # ------------------------------------------------------------- file ops
    # DFS keeps no data cache of its own: reads and writes are served out
    # of the underlying file after recalling anything remote VMMs hold
    # dirty.  (The paper's DFS maps file_SFS; the effect — data cached on
    # the server by the layer below — is the same.)
    def _push_recovered(self, state: DfsFileState, recovered: Dict[int, bytes]) -> None:
        if not recovered:
            return
        self._ensure_down(state)
        run: list = []  # contiguous (index, data) run, pushed as one call
        for index, data in sorted(recovered.items()):
            if run and index != run[-1][0] + 1:
                self._push_run(state, run)
            run.append((index, data))
        self._push_run(state, run)

    def _push_run(self, state: DfsFileState, run: list) -> None:
        if not run:
            return
        if len(run) == 1:
            index, chunk = run[0]
            state.down_channel.pager_object.page_out(
                index * PAGE_SIZE, PAGE_SIZE, chunk
            )
        else:
            data = b"".join(chunk for _, chunk in run)
            state.down_channel.pager_object.page_out_range(
                run[0][0] * PAGE_SIZE, len(data), data
            )
        run.clear()

    def file_read(self, state: DfsFileState, offset: int, size: int) -> bytes:
        self.world.charge.fs_read_cpu()
        with self._fanout_region():
            recovered = state.holders.collect_latest(offset, size)
            self._push_recovered(state, recovered)
        data = state.under_file.read(offset, size)
        return data

    def file_write(self, state: DfsFileState, offset: int, data: bytes) -> int:
        self.world.charge.fs_write_cpu()
        with self._fanout_region():
            recovered = state.holders.acquire(
                None, offset, len(data), AccessRights.READ_WRITE
            )
            self._push_recovered(state, recovered)
        return state.under_file.write(offset, data)

    def file_set_length(self, state: DfsFileState, length: int) -> None:
        with self._fanout_region():
            state.holders.invalidate(length, 2**62)
        state.under_file.set_length(length)

    def file_get_attributes(self, state: DfsFileState) -> FileAttributes:
        self.world.charge.fs_attr_copy()
        return state.under_file.get_attributes()

    def _sync_impl(self) -> None:
        pass  # nothing cached here

    # ------------------------------------------------------------- pager hooks
    # These serve the *remote* clients' channels.
    def _pager_page_in(
        self, source_key, pager_object, offset: int, size: int, access: AccessRights
    ) -> bytes:
        state = self._states_by_source[source_key]
        requester = None
        for channel in self.channels.channels_for(source_key):
            if channel.pager_object is pager_object:
                requester = channel
        with self._fanout_region():
            recovered = state.holders.acquire(requester, offset, size, access)
            self._push_recovered(state, recovered)
        self._ensure_down(state)
        # Fetch through P2-C2 with the client's access mode so the layer
        # below runs its own coherency against local holders.
        return state.down_channel.pager_object.page_in(offset, size, access)

    def _pager_page_in_range(
        self, source_key, pager_object, offset, min_size, max_size, access
    ) -> bytes:
        """Ranged remote page-in: one network round trip returns a whole
        read-ahead window, fetched from the layer below with clustering."""
        state = self._states_by_source[source_key]
        requester = None
        for channel in self.channels.channels_for(source_key):
            if channel.pager_object is pager_object:
                requester = channel
        file_size = state.under_file.get_length()
        size = max(0, min(max_size, max(min_size, file_size - offset)))
        if size == 0:
            return b""
        with self._fanout_region():
            recovered = state.holders.acquire(requester, offset, size, access)
            self._push_recovered(state, recovered)
        self._ensure_down(state)
        return state.down_channel.pager_object.page_in_range(
            offset, min_size, size, access
        )

    def _pager_page_out(
        self, source_key, pager_object, offset: int, size: int, data: bytes, retain
    ) -> None:
        state = self._states_by_source[source_key]
        with self._fanout_region():
            for channel in self.channels.channels_for(source_key):
                if channel.pager_object is pager_object:
                    if retain is None:
                        state.holders.forget_range(channel, offset, size)
                    elif retain is AccessRights.READ_ONLY:
                        state.holders.record(
                            channel, offset, size, AccessRights.READ_ONLY
                        )
                    else:
                        recovered = state.holders.acquire(
                            channel, offset, size, AccessRights.READ_WRITE
                        )
                        self._push_recovered(state, recovered)
        self._ensure_down(state)
        state.down_channel.pager_object.page_out(offset, size, data)

    def _pager_page_out_range(
        self, source_key, pager_object, offset: int, size: int, data: bytes, retain
    ) -> None:
        """Vectored write-back from a remote client: same holder
        bookkeeping as the single-page hook, then one ranged call below
        so the batching survives to the disk layer's clustered writes."""
        state = self._states_by_source[source_key]
        with self._fanout_region():
            for channel in self.channels.channels_for(source_key):
                if channel.pager_object is pager_object:
                    if retain is None:
                        state.holders.forget_range(channel, offset, size)
                    elif retain is AccessRights.READ_ONLY:
                        state.holders.record(
                            channel, offset, size, AccessRights.READ_ONLY
                        )
                    else:
                        recovered = state.holders.acquire(
                            channel, offset, size, AccessRights.READ_WRITE
                        )
                        self._push_recovered(state, recovered)
        self._ensure_down(state)
        state.down_channel.pager_object.page_out_range(offset, size, data)

    def _pager_attr_page_in(self, source_key, pager_object) -> FileAttributes:
        state = self._states_by_source[source_key]
        return state.under_file.get_attributes()

    def _pager_attr_write_out(self, source_key, pager_object, attrs) -> None:
        state = self._states_by_source[source_key]
        self._ensure_down(state)
        pager = self.down_fs_pager(state.down_channel)
        if pager is not None:
            pager.attr_write_out(attrs)

    def _on_channel_closed(self, source_key, channel: Channel) -> None:
        state = self._states_by_source.get(source_key)
        if state is not None:
            state.holders.drop_channel(channel)

    # ------------------------------------------- cache hooks (P2-C2 from below)
    # The layer below needs data or invalidation; DFS holds nothing
    # itself, so every action is a fan-out to the remote holders over the
    # network — "any coherency actions taken by DFS through its private
    # network protocol will be communicated to SFS through the P2-C2
    # channel", and vice versa.
    def _cache_flush_back(self, state, offset: int, size: int) -> Dict[int, bytes]:
        with self._fanout_region():
            return state.holders.acquire(
                None, offset, size, AccessRights.READ_WRITE
            )

    def _cache_deny_writes(self, state, offset: int, size: int) -> Dict[int, bytes]:
        with self._fanout_region():
            return state.holders.acquire(
                None, offset, size, AccessRights.READ_ONLY
            )

    def _cache_write_back(self, state, offset: int, size: int) -> Dict[int, bytes]:
        with self._fanout_region():
            return state.holders.collect_latest(offset, size)

    def _cache_delete_range(self, state, offset: int, size: int) -> None:
        with self._fanout_region():
            state.holders.invalidate(offset, size)

    def _cache_zero_fill(self, state, offset: int, size: int) -> None:
        with self._fanout_region():
            state.holders.invalidate(offset, size)

    def _cache_populate(self, state, offset, size, access, data) -> None:
        pass  # nothing cached here

    def _cache_destroy(self, state) -> None:
        state.holders.invalidate(0, 2**62)
        state.down_channel = None

    def _cache_invalidate_attributes(self, state) -> None:
        # Remote attribute caches (CFS instances) must drop their copies.
        with self._fanout_region():
            for channel in self.channels.channels_for(state.source_key):
                fs_cache = narrow(channel.cache_object, FsCache)
                if fs_cache is not None:
                    fs_cache.invalidate_attributes()

    def _cache_write_back_attributes(self, state) -> Optional[FileAttributes]:
        return None


def export_dfs(server_node, under_fs, name: str = "dfs", **layer_kwargs) -> DfsLayer:
    """Administrative helper: create a DFS layer on ``server_node``, stack
    it on ``under_fs``, and export it at ``/fs/<name>``.  Extra keyword
    arguments (``compound=True``, ``protocol=...``) pass through to
    :class:`DfsLayer`."""
    from repro.ipc.domain import Credentials

    domain = server_node.create_domain(
        f"{name}-server", Credentials(name, privileged=True)
    )
    dfs = DfsLayer(domain, **layer_kwargs)
    dfs.stack_on(under_fs)
    server_node.fs_context.bind(name, dfs)
    return dfs


def mount_remote(client_node, server_node, name: str = "dfs") -> object:
    """Bind a remote DFS export into the client node's /fs context —
    "the Spring naming system ... enables the naming system to be largely
    orthogonal to the file system"."""
    remote = server_node.fs_context.resolve(name)
    mount_name = f"{name}@{server_node.name}"
    client_node.fs_context.bind(mount_name, remote)
    return remote
