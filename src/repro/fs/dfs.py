"""DFS — the network-coherent distributed file system layer (Figure 7).

"The job of DFS is to export SFS files to other machines in a coherent
fashion ... For each underlying file_SFS, DFS exports a file_DFS.
File_DFS may be accessed on the local machine through the normal Spring
mechanisms, or it may be accessed remotely through the DFS protocol."

The two defining mechanisms, both implemented here:

* **Local bind forwarding** — "Local binds to file_DFS are forwarded to
  the corresponding file_SFS.  Thus, local clients of file_DFS use the
  same cache object as clients of file_SFS, and DFS is not involved in
  local page-in/page-out requests."  (Toggle with
  ``forward_local_binds=False`` for the ablation.)
* **DFS as cache manager to SFS** — remote traffic flows through DFS,
  which binds to the underlying file (the P2-C2 connection).  When a
  local client needs a block that remote clients hold dirty, SFS's
  coherency layer calls DFS's fs_cache, and DFS recalls the block from
  the remote VMMs over the network; and vice versa.

Remote machines reach DFS through ordinary location-transparent object
invocation — our network model charges every hop, which *is* the
"private DFS protocol" of the paper for accounting purposes.

DFS is the layer the :class:`repro.fs.base.ChannelOps` defaults are
modelled on — a coherent pass-through that keeps no data cache of its
own — so it overrides *no* channel operations at all.  What remains
here is its one transform point (local bind forwarding) and the
intent-open fast path.
"""

from __future__ import annotations

import dataclasses

from repro.errors import FsError
from repro.ipc.invocation import operation
from repro.ipc.narrow import narrow
from repro.types import AccessRights
from repro.vm.channel import BindResult
from repro.vm.memory_object import CacheManager

from repro.fs.attributes import FileAttributes
from repro.fs.base import BaseLayer, LayerDirectory, LayerFile, LayerFileState
from repro.fs.file import File


@dataclasses.dataclass(frozen=True)
class IntentOpenResult:
    """Result of :meth:`DfsLayer.open_intent` — the open handle plus the
    attributes the client would otherwise fetch in a separate round
    trip.  The NFSv4/Lustre "intent" idea applied to the Spring open
    protocol: lookup, access check, and attribute fetch travel together."""

    file: "DfsFile"
    attributes: FileAttributes


class DfsFileState(LayerFileState):
    """Per-exported-file state on the DFS server."""


class DfsFile(LayerFile):
    """file_DFS: an open handle exported by DFS."""

    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        layer = self.layer
        caller_local = (
            getattr(cache_manager, "domain", None) is not None
            and cache_manager.domain.node is layer.domain.node
        )
        if caller_local and layer.forward_local_binds:
            # Forward: the local VMM ends up talking to SFS directly and
            # shares the very same cached memory as direct SFS clients.
            layer.world.counters.inc("dfs.bind_forwarded")
            return self.state.under_file.bind(
                cache_manager, requested_access, offset, length
            )
        layer.world.counters.inc("dfs.bind_served")
        # P2-C2 up front: remote traffic must participate in the lower
        # layer's coherency from the first page.
        layer.ensure_down(self.state)
        return layer.bind_file(
            self.state, cache_manager, requested_access, offset, length
        )


class DfsDirectory(LayerDirectory):
    """Directory wrapper exporting DFS files (resolvable remotely)."""

    @operation
    def open_intent(self, name: str) -> "IntentOpenResult":
        """Lookup + access check + attribute fetch in one invocation
        (one round trip for a remote client)."""
        return self.layer._open_intent(self.under_context, name)


class DfsLayer(BaseLayer):
    """The DFS server layer; see module docstring."""

    max_under = 1
    state_class = DfsFileState
    file_class = DfsFile
    directory_class = DfsDirectory

    def __init__(
        self,
        domain,
        forward_local_binds: bool = True,
        protocol: str = "per_block",
        compound: bool = False,
    ) -> None:
        super().__init__(domain)
        self.forward_local_binds = forward_local_binds
        #: Coherency policy for remote client channels (sec. 3.3.3: the
        #: protocol is the pager's choice).
        self.protocol = protocol
        self.compound = compound

    def fs_type(self) -> str:
        return "dfs"

    @operation
    def open_intent(self, name: str) -> IntentOpenResult:
        """Lookup + access check + attribute fetch in one invocation
        (one round trip for a remote client)."""
        return self._open_intent(self.under, name)

    def _open_intent(self, under_context, name: str) -> IntentOpenResult:
        """Shared body of the intent-open operations: runs entirely on
        the server, where every sub-step is a local or cross-domain call."""
        obj = under_context.resolve(name)
        under_file = narrow(obj, File)
        if under_file is None:
            raise FsError(f"{name!r} is not a file")
        under_file.check_access(AccessRights.READ_ONLY)
        attrs = under_file.get_attributes()
        self.world.charge.fs_attr_copy()
        self.world.counters.inc("dfs.intent_open")
        return IntentOpenResult(DfsFile(self, self._state_for(under_file)), attrs)

    # ------------------------------------------------------------- file ops
    # DFS keeps no data cache of its own: reads and writes are served out
    # of the underlying file after recalling anything remote VMMs hold
    # dirty.  (The paper's DFS maps file_SFS; the effect — data cached on
    # the server by the layer below — is the same.)
    def file_read(self, state: DfsFileState, offset: int, size: int) -> bytes:
        self.world.charge.fs_read_cpu()
        with self.fanout_region():
            recovered = state.holders.collect_latest(offset, size)
            self.push_recovered(state, recovered)
        return state.under_file.read(offset, size)

    def file_write(self, state: DfsFileState, offset: int, data: bytes) -> int:
        self.world.charge.fs_write_cpu()
        with self.fanout_region():
            recovered = state.holders.acquire(
                None, offset, len(data), AccessRights.READ_WRITE
            )
            self.push_recovered(state, recovered)
        return state.under_file.write(offset, data)

    def file_set_length(self, state: DfsFileState, length: int) -> None:
        with self.fanout_region():
            state.holders.invalidate(length, 2**62)
        state.under_file.set_length(length)


def export_dfs(server_node, under_fs, name: str = "dfs", **layer_kwargs) -> DfsLayer:
    """Administrative helper: create a DFS layer on ``server_node``, stack
    it on ``under_fs``, and export it at ``/fs/<name>``.  Extra keyword
    arguments (``compound=True``, ``protocol=...``) pass through to
    :class:`DfsLayer`."""
    from repro.ipc.domain import Credentials

    domain = server_node.create_domain(
        f"{name}-server", Credentials(name, privileged=True)
    )
    dfs = DfsLayer(domain, **layer_kwargs)
    dfs.stack_on(under_fs)
    server_node.fs_context.bind(name, dfs)
    return dfs


def mount_remote(client_node, server_node, name: str = "dfs") -> object:
    """Bind a remote DFS export into the client node's /fs context —
    "the Spring naming system ... enables the naming system to be largely
    orthogonal to the file system"."""
    remote = server_node.fs_context.resolve(name)
    mount_name = f"{name}@{server_node.name}"
    client_node.fs_context.bind(mount_name, remote)
    return remote
