"""File system creators and stack configuration (paper sec. 4.4).

"At boot-time or during run-time, the file system creator for each file
system type (e.g., DFS and COMPFS) is created.  When a file system
creator is started, it registers itself in a well-known place e.g.
/fs_creators/dfs_creator."

This module provides creators for every layer type in the library, the
registration helper, and :func:`build_stack` — the "proper extensible
file system configuration tools" the paper lists as future work: a
declarative spec is turned into the exact lookup/create/stack_on/bind
sequence of the paper's sec. 4.5 walkthrough.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import FsError, NameNotFoundError
from repro.ipc.domain import Credentials, Domain
from repro.ipc.invocation import operation
from repro.ipc.node import Node

from repro.fs.cfs import CfsLayer
from repro.fs.coherency import CoherencyLayer
from repro.fs.compfs import CompFs
from repro.fs.cryptfs import CryptFs
from repro.fs.dfs import DfsLayer
from repro.fs.fs_interfaces import StackableFs, StackableFsCreator
from repro.fs.mirrorfs import MirrorFs
from repro.fs.nullfs import NullFs
from repro.fs.quotafs import QuotaFs


class LayerCreator(StackableFsCreator):
    """A creator parameterized by a layer class.

    Each ``create`` call makes a fresh server domain for the instance
    (the common administrative choice); pass ``shared_domain`` to place
    all instances in one domain instead.
    """

    _counter = 0

    def __init__(
        self,
        domain,
        layer_class: type,
        type_tag: str,
        shared_domain: Optional[Domain] = None,
        **layer_kwargs: Any,
    ) -> None:
        super().__init__(domain)
        self.layer_class = layer_class
        self.type_tag = type_tag
        self.shared_domain = shared_domain
        self.layer_kwargs = layer_kwargs

    def create_type_tag(self) -> str:
        return self.type_tag

    @operation
    def create(self, **overrides: Any) -> StackableFs:
        if self.shared_domain is not None:
            domain = self.shared_domain
        else:
            LayerCreator._counter += 1
            domain = self.domain.node.create_domain(
                f"{self.type_tag}-{LayerCreator._counter}",
                Credentials(self.type_tag, privileged=True),
            )
        kwargs = dict(self.layer_kwargs)
        kwargs.update(overrides)
        return self.layer_class(domain, **kwargs)


#: Layer classes creatable by type tag (disk and mono need a device, so
#: they are constructed by create_sfs / explicitly, not by creators).
CREATABLE_LAYERS: Dict[str, type] = {
    "coherency": CoherencyLayer,
    "compfs": CompFs,
    "cryptfs": CryptFs,
    "dfs": DfsLayer,
    "mirrorfs": MirrorFs,
    "cfs": CfsLayer,
    "nullfs": NullFs,
    "quotafs": QuotaFs,
}


def register_standard_creators(node: Node) -> Dict[str, LayerCreator]:
    """Boot-time registration: one creator per layer type, bound under
    /fs_creators as <type>_creator."""
    creators_domain = node.create_domain(
        "fs-creators", Credentials("fs-creators", privileged=True)
    )
    registered = {}
    with creators_domain.activate():
        for tag, layer_class in CREATABLE_LAYERS.items():
            creator = LayerCreator(creators_domain, layer_class, tag)
            node.fs_creators.bind(f"{tag}_creator", creator)
            registered[tag] = creator
    return registered


def lookup_creator(node: Node, type_tag: str) -> StackableFsCreator:
    """Step 1 of the paper's configuration method: 'A file system creator
    object is looked up from the well-known place using a normal naming
    resolve operation.'"""
    try:
        obj = node.fs_creators.resolve(f"{type_tag}_creator")
    except NameNotFoundError:
        raise FsError(
            f"no creator registered for {type_tag!r}; "
            f"run register_standard_creators(node) first"
        )
    if not isinstance(obj, StackableFsCreator):
        raise FsError(f"/fs_creators/{type_tag}_creator is not a creator")
    return obj


@dataclasses.dataclass
class LayerSpec:
    """One layer in a declarative stack description."""

    type_tag: str
    options: Dict[str, Any] = dataclasses.field(default_factory=dict)


def build_stack(
    node: Node,
    base: StackableFs,
    layers: Sequence[LayerSpec],
    export_as: Optional[str] = None,
    export_all: bool = False,
) -> List[StackableFs]:
    """Run the sec. 4.5 walkthrough for an arbitrary stack:

    1. look up each creator from /fs_creators,
    2. create an instance,
    3. stack it on the layer below,
    4. bind the top (and optionally every intermediate layer — "a
       decision is made whether or not to export SFS, COMPFS, and DFS
       files") into /fs.

    Returns the layer instances bottom-up (excluding ``base``).
    """
    built: List[StackableFs] = []
    current = base
    for spec in layers:
        creator = lookup_creator(node, spec.type_tag)
        instance = creator.create(**spec.options)
        instance.stack_on(current)
        if export_all:
            node.fs_context.bind(f"{spec.type_tag}-{instance.oid}", instance)
        built.append(instance)
        current = instance
    if export_as is not None:
        node.fs_context.bind(export_as, current)
    return built
