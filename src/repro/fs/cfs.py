"""CFS — the client-side attribute-caching file system (paper sec. 6.2).

"CFS is an attribute-caching file system.  Its main function is to
interpose on remote files when they are passed to the local machine.
Once interposed on, all calls to remote files end up being forwarded to
the local CFS."

Mechanisms reproduced:

* **Dynamic per-file interposition** — :meth:`CfsLayer.interpose` wraps a
  remote file in a locally implemented :class:`CfsFile` of the same type
  (Spring object interposition, sec. 5).
* **Cache-manager bind** — "When CFS is asked to interpose on a file, it
  becomes a cache manager for the remote file by invoking the bind
  operation on the file"; the returned channel's fs_pager provides the
  attribute page-in/out operations CFS caches through.
* **Bind forwarding to the VMM** — "CFS proceeds by returning to the VMM
  a pager-cache object channel to the remote DFS.  Therefore, all
  page-ins and page-outs from the VMM go directly to the remote DFS."
* **read/write via mapping** — "CFS also services read/write requests by
  mapping the file into its address space and reading/writing the data
  from/to its memory (thus utilizing the local VMM for caching the
  data)."

CFS is optional (the paper's last note): without it, every file
operation goes to the remote DFS.

CFS keeps no holder table of its own (``holders`` is None — the local
VMM's channel goes straight to the remote DFS), so the spine's
cache-side defaults already return nothing for data ops; its only
:class:`ChannelOps` overrides are the attribute-cache ones.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import FsError
from repro.ipc.invocation import operation
from repro.ipc.narrow import narrow
from repro.naming.context import NamingContext
from repro.types import PAGE_SIZE, AccessRights
from repro.vm.channel import BindResult
from repro.vm.memory_object import CacheManager

from repro.fs.attributes import CachedAttributes, FileAttributes
from repro.fs.base import (
    BaseLayer,
    ChannelOps,
    LayerDirectory,
    LayerFile,
    LayerFileState,
)
from repro.fs.file import File


class CfsFileState(LayerFileState):
    """Per-interposed-file state on the client."""

    def __init__(self, layer: "CfsLayer", remote_file: File) -> None:
        super().__init__(layer, remote_file)
        self.attrs: Optional[CachedAttributes] = None
        #: Local mapping used to serve read/write through the local VMM.
        self.mapping = None
        self.mapping_length = 0

    @property
    def remote_file(self) -> File:
        return self.under_file

    @property
    def remote_key(self):
        return self.under_key


class CfsFile(LayerFile):
    """The locally implemented stand-in for a remote file."""

    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        # Forward: local VMM ends up with a channel straight to the
        # remote DFS; CFS stays out of the page traffic.
        self.layer.world.counters.inc("cfs.bind_forwarded")
        return self.state.remote_file.bind(
            cache_manager, requested_access, offset, length
        )


class CfsContext(LayerDirectory):
    """Wraps a remote context so resolved files come back interposed."""

    @property
    def remote_context(self) -> NamingContext:
        return self.under_context

    @operation
    def unbind(self, name: str) -> object:
        # No purge: interposed state belongs to the remote file, and the
        # remote side handles its own unlink hygiene.
        return self.under_context.unbind(name)

    @operation
    def list_bindings(self):
        return self.under_context.list_bindings()


class CfsOps(ChannelOps):
    """CFS caches attributes only; data lives in the local VMM (which has
    its own channel to the remote DFS).  With no holder table, the
    spine's data-op defaults already collect nothing — only the
    attribute ops need real behaviour."""

    def destroy_cache(self, state) -> None:
        state.attrs = None
        state.down_channel = None
        state.down_pager = None

    def invalidate_attributes(self, state) -> None:
        self.layer.world.counters.inc("cfs.attr_invalidated")
        state.attrs = None

    def write_back_attributes(self, state) -> Optional[FileAttributes]:
        if state.attrs is not None and state.attrs.dirty:
            return state.attrs.attrs.copy()
        return None


class CfsLayer(BaseLayer):
    """The per-node CFS server."""

    max_under = 0
    ops_class = CfsOps
    state_class = CfsFileState
    file_class = CfsFile
    directory_class = CfsContext

    def __init__(self, domain, readahead_pages: int = 0) -> None:
        super().__init__(domain)
        #: Sequential read-ahead window for the mappings CFS reads and
        #: writes through.  Applied per-cache (VmCache.readahead_override)
        #: rather than via the node-wide VMM knob, so only CFS traffic is
        #: affected; the ranged page-ins travel the whole remote stack —
        #: DFS forwards them and the disk layer clusters.
        self.readahead_pages = readahead_pages

    def fs_type(self) -> str:
        return "cfs"

    def _make_holders(self):
        return None  # no upstream coherency state; binds are forwarded

    # ------------------------------------------------------------ interposition
    @operation
    def interpose(self, remote_file: File) -> CfsFile:
        """Interpose on one remote file, returning the local stand-in."""
        state = self._states.get(remote_file.source_key)
        if state is None:
            state = self._state_for(remote_file)
            # Become a cache manager for the remote file right away.
            state.down_channel = self.bind_below(
                state, remote_file, AccessRights.READ_ONLY
            )
            state.down_pager = self.down_fs_pager(state.down_channel)
            self.world.counters.inc("cfs.interposed")
        return CfsFile(self, state)

    def wrap_resolved(self, obj: object) -> object:
        remote_file = narrow(obj, File)
        if remote_file is not None:
            return self.interpose(remote_file)
        remote_context = narrow(obj, NamingContext)
        if remote_context is not None:
            return CfsContext(self, remote_context)
        return obj

    # ------------------------------------------------------------- attributes
    def cached_attrs(self, state: CfsFileState) -> FileAttributes:
        if state.attrs is None:
            self.world.counters.inc("cfs.attr_fetch")
            if state.down_pager is not None:
                fetched = state.down_pager.attr_page_in()
            else:
                fetched = state.remote_file.get_attributes()
            state.attrs = CachedAttributes(fetched)
        return state.attrs.attrs

    # --------------------------------------------------------------- data path
    def _ensure_mapping(self, state: CfsFileState, needed_length: int) -> None:
        """Map (or re-map) the remote file into CFS's address space so
        read/write go through the local VMM's page cache."""
        if state.mapping is not None and state.mapping_length >= needed_length:
            return
        vmm = self.domain.node.vmm
        if state.mapping is None:
            self._aspace = getattr(self, "_aspace", None) or vmm.create_address_space(
                "cfs"
            )
        length = max(needed_length, self.cached_attrs(state).size)
        if length == 0:
            length = PAGE_SIZE
        if state.mapping is not None:
            state.mapping.address_space.unmap(state.mapping)
        state.mapping = self._aspace.map(
            # Map the CfsFile itself?  No: map the remote file; its bind
            # is what reaches the remote DFS pager.
            state.remote_file,
            AccessRights.READ_WRITE,
            offset=0,
            length=length,
        )
        state.mapping_length = length
        if self.readahead_pages > 0:
            state.mapping.cache.readahead_override = self.readahead_pages

    def file_read(self, state: CfsFileState, offset: int, size: int) -> bytes:
        self.world.charge.fs_read_cpu()
        attrs = self.cached_attrs(state)
        if offset >= attrs.size:
            return b""
        size = min(size, attrs.size - offset)
        self._ensure_mapping(state, offset + size)
        # Mapping.read may return a view into the shared VmCache;
        # File.read's contract is immutable bytes, so materialize here —
        # exactly once, at the layer boundary.
        return state.mapping.read_copy(offset, size)

    def file_write(self, state: CfsFileState, offset: int, data: bytes) -> int:
        self.world.charge.fs_write_cpu()
        attrs = self.cached_attrs(state)
        end = offset + len(data)
        if end > attrs.size:
            # Growth must go to the authority (the remote file) so other
            # clients observe it.  The server's invalidation fan-out may
            # drop our attribute cache during this call — refetch after.
            state.remote_file.set_length(end)
            self.cached_attrs(state)
            state.attrs.set_size(end)
        self._ensure_mapping(state, end)
        state.mapping.write(offset, data)
        self.cached_attrs(state)
        state.attrs.touch_mtime(int(self.world.clock.now_us))
        return len(data)

    def file_length(self, state: CfsFileState) -> int:
        return self.cached_attrs(state).size

    def file_get_attributes(self, state: CfsFileState) -> FileAttributes:
        self.world.charge.fs_attr_copy()
        return self.cached_attrs(state).copy()

    def file_set_length(self, state: CfsFileState, length: int) -> None:
        state.remote_file.set_length(length)
        if state.attrs is not None:
            state.attrs.set_size(length)

    def file_sync(self, state: CfsFileState) -> None:
        if state.attrs is not None and state.attrs.dirty:
            if state.down_pager is not None:
                state.down_pager.attr_write_out(state.attrs.attrs.copy())
            state.attrs.dirty = False
        if state.mapping is not None:
            state.mapping.cache.sync()

    def _sync_impl(self) -> None:
        for state in self._states.values():
            self.file_sync(state)

    # -------------------------------------------------------------- naming face
    # CFS is not bound into the FS name space as a tree of its own; these
    # satisfy the stackable_fs contract minimally.
    @operation
    def resolve(self, name: str) -> object:
        raise FsError("CFS interposes on files; it does not export a tree")

    @operation
    def bind(self, name: str, obj: object) -> None:
        raise FsError("CFS does not hold bindings")

    @operation
    def unbind(self, name: str) -> object:
        raise FsError("CFS does not hold bindings")

    @operation
    def rebind(self, name: str, obj: object) -> object:
        raise FsError("CFS does not hold bindings")

    @operation
    def list_bindings(self):
        return []


def start_cfs(node, readahead_pages: int = 0) -> CfsLayer:
    """Boot a CFS server on a node (administratively optional)."""
    from repro.ipc.domain import Credentials

    domain = node.create_domain("cfs", Credentials("cfs", privileged=True))
    return CfsLayer(domain, readahead_pages=readahead_pages)
