"""CFS — the client-side attribute-caching file system (paper sec. 6.2).

"CFS is an attribute-caching file system.  Its main function is to
interpose on remote files when they are passed to the local machine.
Once interposed on, all calls to remote files end up being forwarded to
the local CFS."

Mechanisms reproduced:

* **Dynamic per-file interposition** — :meth:`CfsLayer.interpose` wraps a
  remote file in a locally implemented :class:`CfsFile` of the same type
  (Spring object interposition, sec. 5).
* **Cache-manager bind** — "When CFS is asked to interpose on a file, it
  becomes a cache manager for the remote file by invoking the bind
  operation on the file"; the returned channel's fs_pager provides the
  attribute page-in/out operations CFS caches through.
* **Bind forwarding to the VMM** — "CFS proceeds by returning to the VMM
  a pager-cache object channel to the remote DFS.  Therefore, all
  page-ins and page-outs from the VMM go directly to the remote DFS."
* **read/write via mapping** — "CFS also services read/write requests by
  mapping the file into its address space and reading/writing the data
  from/to its memory (thus utilizing the local VMM for caching the
  data)."

CFS is optional (the paper's last note): without it, every file
operation goes to the remote DFS.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.errors import FsError
from repro.ipc.invocation import operation
from repro.ipc.narrow import narrow
from repro.naming.context import NamingContext
from repro.types import PAGE_SIZE, AccessRights
from repro.vm.channel import BindResult, Channel
from repro.vm.memory_object import CacheManager
from repro.vm.pager_object import FsPager

from repro.fs.attributes import CachedAttributes, FileAttributes
from repro.fs.base import BaseLayer
from repro.fs.file import File


class CfsFileState:
    """Per-interposed-file state on the client."""

    def __init__(self, layer: "CfsLayer", remote_file: File) -> None:
        self.layer = layer
        self.remote_file = remote_file
        self.remote_key = remote_file.source_key
        self.source_key: Hashable = ("cfs", layer.oid, self.remote_key)
        self.attrs: Optional[CachedAttributes] = None
        #: CFS as cache manager for the remote file (attribute channel).
        self.down_channel: Optional[Channel] = None
        self.down_pager: Optional[FsPager] = None
        #: Local mapping used to serve read/write through the local VMM.
        self.mapping = None
        self.mapping_length = 0


class CfsFile(File):
    """The locally implemented stand-in for a remote file."""

    def __init__(self, layer: "CfsLayer", state: CfsFileState) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.state = state
        self.source_key = state.source_key
        layer.world.charge.fs_open_state()

    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        # Forward: local VMM ends up with a channel straight to the
        # remote DFS; CFS stays out of the page traffic.
        self.layer.world.counters.inc("cfs.bind_forwarded")
        return self.state.remote_file.bind(
            cache_manager, requested_access, offset, length
        )

    @operation
    def get_length(self) -> int:
        return self.layer.cached_attrs(self.state).size

    @operation
    def set_length(self, length: int) -> None:
        self.layer.file_set_length(self.state, length)

    @operation
    def read(self, offset: int, size: int) -> bytes:
        return self.layer.file_read(self.state, offset, size)

    @operation
    def write(self, offset: int, data: bytes) -> int:
        return self.layer.file_write(self.state, offset, data)

    @operation
    def get_attributes(self) -> FileAttributes:
        self.layer.world.charge.fs_attr_copy()
        return self.layer.cached_attrs(self.state).copy()

    @operation
    def check_access(self, access: AccessRights) -> None:
        self.layer.world.charge.fs_access_check()

    @operation
    def sync(self) -> None:
        self.layer.file_sync(self.state)


class CfsContext(NamingContext):
    """Wraps a remote context so resolved files come back interposed."""

    def __init__(self, layer: "CfsLayer", remote_context: NamingContext) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.remote_context = remote_context

    @operation
    def resolve(self, name: str) -> object:
        return self.layer.wrap_resolved(self.remote_context.resolve(name))

    @operation
    def bind(self, name: str, obj: object) -> None:
        self.remote_context.bind(name, obj)

    @operation
    def unbind(self, name: str) -> object:
        return self.remote_context.unbind(name)

    @operation
    def rebind(self, name: str, obj: object) -> object:
        return self.remote_context.rebind(name, obj)

    @operation
    def list_bindings(self):
        return self.remote_context.list_bindings()

    @operation
    def create_file(self, name: str) -> File:
        return self.layer.wrap_resolved(self.remote_context.create_file(name))


class CfsLayer(BaseLayer):
    """The per-node CFS server."""

    max_under = 0

    def __init__(self, domain, readahead_pages: int = 0) -> None:
        super().__init__(domain)
        self._states: Dict[Hashable, CfsFileState] = {}
        #: Sequential read-ahead window for the mappings CFS reads and
        #: writes through.  Applied per-cache (VmCache.readahead_override)
        #: rather than via the node-wide VMM knob, so only CFS traffic is
        #: affected; the ranged page-ins travel the whole remote stack —
        #: DFS forwards them and the disk layer clusters.
        self.readahead_pages = readahead_pages

    def fs_type(self) -> str:
        return "cfs"

    # ------------------------------------------------------------ interposition
    @operation
    def interpose(self, remote_file: File) -> CfsFile:
        """Interpose on one remote file, returning the local stand-in."""
        state = self._states.get(remote_file.source_key)
        if state is None:
            state = CfsFileState(self, remote_file)
            self._states[state.remote_key] = state
            # Become a cache manager for the remote file right away.
            state.down_channel = self.bind_below(
                state, remote_file, AccessRights.READ_ONLY
            )
            state.down_pager = self.down_fs_pager(state.down_channel)
            self.world.counters.inc("cfs.interposed")
        return CfsFile(self, state)

    def wrap_resolved(self, obj: object) -> object:
        remote_file = narrow(obj, File)
        if remote_file is not None:
            return self.interpose(remote_file)
        remote_context = narrow(obj, NamingContext)
        if remote_context is not None:
            return CfsContext(self, remote_context)
        return obj

    # ------------------------------------------------------------- attributes
    def cached_attrs(self, state: CfsFileState) -> FileAttributes:
        if state.attrs is None:
            self.world.counters.inc("cfs.attr_fetch")
            if state.down_pager is not None:
                fetched = state.down_pager.attr_page_in()
            else:
                fetched = state.remote_file.get_attributes()
            state.attrs = CachedAttributes(fetched)
        return state.attrs.attrs

    # --------------------------------------------------------------- data path
    def _ensure_mapping(self, state: CfsFileState, needed_length: int) -> None:
        """Map (or re-map) the remote file into CFS's address space so
        read/write go through the local VMM's page cache."""
        if state.mapping is not None and state.mapping_length >= needed_length:
            return
        vmm = self.domain.node.vmm
        if state.mapping is None:
            self._aspace = getattr(self, "_aspace", None) or vmm.create_address_space(
                "cfs"
            )
        length = max(needed_length, self.cached_attrs(state).size)
        if length == 0:
            length = PAGE_SIZE
        if state.mapping is not None:
            state.mapping.address_space.unmap(state.mapping)
        state.mapping = self._aspace.map(
            # Map the CfsFile itself?  No: map the remote file; its bind
            # is what reaches the remote DFS pager.
            state.remote_file,
            AccessRights.READ_WRITE,
            offset=0,
            length=length,
        )
        state.mapping_length = length
        if self.readahead_pages > 0:
            state.mapping.cache.readahead_override = self.readahead_pages

    def file_read(self, state: CfsFileState, offset: int, size: int) -> bytes:
        self.world.charge.fs_read_cpu()
        attrs = self.cached_attrs(state)
        if offset >= attrs.size:
            return b""
        size = min(size, attrs.size - offset)
        self._ensure_mapping(state, offset + size)
        return state.mapping.read(offset, size)

    def file_write(self, state: CfsFileState, offset: int, data: bytes) -> int:
        self.world.charge.fs_write_cpu()
        attrs = self.cached_attrs(state)
        end = offset + len(data)
        if end > attrs.size:
            # Growth must go to the authority (the remote file) so other
            # clients observe it.  The server's invalidation fan-out may
            # drop our attribute cache during this call — refetch after.
            state.remote_file.set_length(end)
            self.cached_attrs(state)
            state.attrs.set_size(end)
        self._ensure_mapping(state, end)
        state.mapping.write(offset, data)
        self.cached_attrs(state)
        state.attrs.touch_mtime(int(self.world.clock.now_us))
        return len(data)

    def file_set_length(self, state: CfsFileState, length: int) -> None:
        state.remote_file.set_length(length)
        if state.attrs is not None:
            state.attrs.set_size(length)

    def file_sync(self, state: CfsFileState) -> None:
        if state.attrs is not None and state.attrs.dirty:
            if state.down_pager is not None:
                state.down_pager.attr_write_out(state.attrs.attrs.copy())
            state.attrs.dirty = False
        if state.mapping is not None:
            state.mapping.cache.sync()

    def _sync_impl(self) -> None:
        for state in self._states.values():
            self.file_sync(state)

    # -------------------------------------------------------------- naming face
    # CFS is not bound into the FS name space as a tree of its own; these
    # satisfy the stackable_fs contract minimally.
    @operation
    def resolve(self, name: str) -> object:
        raise FsError("CFS interposes on files; it does not export a tree")

    @operation
    def bind(self, name: str, obj: object) -> None:
        raise FsError("CFS does not hold bindings")

    @operation
    def unbind(self, name: str) -> object:
        raise FsError("CFS does not hold bindings")

    @operation
    def rebind(self, name: str, obj: object) -> object:
        raise FsError("CFS does not hold bindings")

    @operation
    def list_bindings(self):
        return []

    # ------------------------------------------------- cache hooks (from DFS)
    # CFS caches attributes only; data lives in the local VMM (which has
    # its own channel to the remote DFS).  So data-coherency actions have
    # nothing to collect here, and attribute invalidations drop the cache.
    def _cache_flush_back(self, state, offset: int, size: int) -> Dict[int, bytes]:
        return {}

    def _cache_deny_writes(self, state, offset: int, size: int) -> Dict[int, bytes]:
        return {}

    def _cache_write_back(self, state, offset: int, size: int) -> Dict[int, bytes]:
        return {}

    def _cache_delete_range(self, state, offset: int, size: int) -> None:
        pass

    def _cache_zero_fill(self, state, offset: int, size: int) -> None:
        pass

    def _cache_populate(self, state, offset, size, access, data) -> None:
        pass

    def _cache_destroy(self, state) -> None:
        state.attrs = None
        state.down_channel = None
        state.down_pager = None

    def _cache_invalidate_attributes(self, state) -> None:
        self.world.counters.inc("cfs.attr_invalidated")
        state.attrs = None

    def _cache_write_back_attributes(self, state) -> Optional[FileAttributes]:
        if state.attrs is not None and state.attrs.dirty:
            return state.attrs.attrs.copy()
        return None


def start_cfs(node, readahead_pages: int = 0) -> CfsLayer:
    """Boot a CFS server on a node (administratively optional)."""
    from repro.ipc.domain import Credentials

    domain = node.create_domain("cfs", Credentials("cfs", privileged=True))
    return CfsLayer(domain, readahead_pages=readahead_pages)
