"""The disk layer — the base, non-coherent on-disk file system.

Figure 10: Spring SFS is two layers; this is the bottom one.  "The base
disk layer implements an on-disk UFS-compatible file system.  It does
not, however, implement a coherency algorithm."  Accordingly:

* it is a pager: clients (normally exactly one coherency layer) page in
  and out of it, and every data access really hits the device;
* it performs **no** coherency actions between its channels — two
  independent cache managers binding the same disk file will happily
  diverge (the coherency layer exists to prevent that, sec. 6.3);
* it maintains its own i-node/dentry cache, so open and stat need no
  disk I/O (sec. 6.4 table notes).

Files and directories are addressed by i-node through a mounted
:class:`repro.storage.volume.Volume`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import (
    FsError,
    IsADirectoryError_,
    NotADirectoryError_,
    ReadOnlyError,
    StaleFileError,
)
from repro.ipc.invocation import operation
from repro.naming import name as names
from repro.naming.context import NamingContext
from repro.storage.block_device import BlockDevice
from repro.storage.inode import FileType
from repro.storage.volume import Volume
from repro.types import AccessRights
from repro.vm.channel import BindResult
from repro.vm.memory_object import CacheManager

from repro.fs.attributes import FileAttributes
from repro.fs.base import BaseLayer, ChannelOps
from repro.fs.file import File


class DiskFile(File):
    """An open handle to one on-disk file (per-open state)."""

    def __init__(self, layer: "DiskLayer", ino: int) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.ino = ino
        self.source_key: Hashable = ("disk", layer.oid, ino)
        layer.world.charge.fs_open_state()

    # --- memory_object ------------------------------------------------------
    @operation
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        return self.layer.bind_source(
            self.source_key,
            cache_manager,
            requested_access,
            offset,
            label=f"disk:ino{self.ino}",
        )

    @operation
    def get_length(self) -> int:
        return self.layer.volume.iget(self.ino).size

    @operation
    def set_length(self, length: int) -> None:
        self.layer.volume.truncate(self.ino, length)

    # --- file ------------------------------------------------------------------
    @operation
    def read(self, offset: int, size: int) -> bytes:
        world = self.layer.world
        world.charge.fs_read_cpu()
        data = self.layer.volume.read_data(self.ino, offset, size)
        world.charge.memcpy(len(data))
        return data

    @operation
    def write(self, offset: int, data: bytes) -> int:
        world = self.layer.world
        world.charge.fs_write_cpu()
        world.charge.memcpy(len(data))
        self.layer.volume.write_data(self.ino, offset, data)
        return len(data)

    @operation
    def get_attributes(self) -> FileAttributes:
        self.layer.world.charge.fs_attr_copy()
        return FileAttributes.from_inode(self.layer.volume.iget(self.ino))

    @operation
    def check_access(self, access: AccessRights) -> None:
        self.layer.world.charge.fs_access_check()
        inode = self.layer.volume.iget(self.ino)  # raises if freed
        if inode.is_dir and access.writable:
            raise IsADirectoryError_("cannot open a directory for writing")

    @operation
    def sync(self) -> None:
        self.layer.volume.sync()


class DiskDirectory(NamingContext):
    """A directory exported as a naming context.

    Name resolution is the real thing: component-by-component through
    the volume's dentry cache, with directory data read from disk on
    cold lookups.
    """

    def __init__(self, layer: "DiskLayer", dir_ino: int) -> None:
        super().__init__(layer.domain)
        self.layer = layer
        self.dir_ino = dir_ino

    # --- helpers (shared with DiskLayer's root-context face) --------------------
    def _resolve_from(self, dir_ino: int, name: str) -> object:
        layer = self.layer
        components = names.split_name(name)
        current = dir_ino
        for component in components[:-1]:
            layer.world.charge.fs_resolve()
            current = layer.volume.lookup(current, component)
            if not layer.volume.iget(current).is_dir:
                raise NotADirectoryError_(f"{component!r} is not a directory")
        layer.world.charge.fs_resolve()
        ino = layer.volume.lookup(current, components[-1])
        return layer.make_object(ino)

    def _list_from(self, dir_ino: int) -> List[Tuple[str, object]]:
        layer = self.layer
        return [
            (entry_name, layer.make_object(ino, charge_open=False))
            for entry_name, ino in sorted(layer.volume.readdir(dir_ino).items())
        ]

    # --- naming_context ----------------------------------------------------------
    @operation
    def resolve(self, name: str) -> object:
        return self._resolve_from(self.dir_ino, name)

    @operation
    def bind(self, name: str, obj: object) -> None:
        raise FsError(
            "disk directories hold files, not arbitrary bindings; "
            "use create_file/create_dir"
        )

    @operation
    def unbind(self, name: str) -> object:
        """Unlink.  Returns a handle to the (possibly now free) file."""
        names.validate_component(name)
        ino = self.layer.volume.lookup(self.dir_ino, name)
        obj = self.layer.make_object(ino, charge_open=False)
        self.layer.volume.unlink(self.dir_ino, name)
        return obj

    @operation
    def rebind(self, name: str, obj: object) -> object:
        raise FsError("disk directories do not support rebind")

    @operation
    def list_bindings(self) -> List[Tuple[str, object]]:
        return self._list_from(self.dir_ino)

    # --- file management ------------------------------------------------------------
    @operation
    def create_file(self, name: str) -> File:
        names.validate_component(name)
        inode = self.layer.volume.create(self.dir_ino, name, FileType.REGULAR)
        return self.layer.make_object(inode.ino)

    @operation
    def create_dir(self, name: str) -> "DiskDirectory":
        names.validate_component(name)
        inode = self.layer.volume.create(self.dir_ino, name, FileType.DIRECTORY)
        return DiskDirectory(self.layer, inode.ino)

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        self.layer.volume.rename(self.dir_ino, old_name, self.dir_ino, new_name)


class DiskOps(ChannelOps):
    """Disk-layer dispatch: every op hits the volume; no coherency
    actions between channels (that is the coherency layer's job)."""

    def _ino_of(self, source_key: Hashable) -> int:
        return source_key[2]  # ("disk", layer oid, ino)

    def page_in(self, source_key, pager_object, offset, size, access) -> bytes:
        # Non-coherent by design: no actions against other channels.
        return self.layer.volume.read_data(self._ino_of(source_key), offset, size)

    def page_in_range(
        self, source_key, pager_object, offset, min_size, max_size, access
    ) -> bytes:
        """Clustering: serve as much of [min, max] as one pass of
        contiguous multi-block transfers provides — the paper sec. 8
        'return more data than strictly needed' opportunity.  Short of
        the minimum only at EOF (callers zero-pad pages)."""
        return self.layer.volume.read_data_clustered(
            self._ino_of(source_key), offset, max_size
        )

    def page_out(self, source_key, pager_object, offset, size, data, retain) -> None:
        # Page-outs arrive page-padded; never let padding extend the file.
        # Cache managers push attributes (the authoritative length) before
        # data, so clamping to the current i-node size is correct.
        ino = self._ino_of(source_key)
        file_size = self.layer.volume.iget(ino).size
        usable = min(size, len(data), max(0, file_size - offset))
        if usable > 0:
            self.layer.volume.write_data(ino, offset, data[:usable])

    def page_out_range(
        self, source_key, pager_object, offset, size, data, retain
    ) -> None:
        """Vectored page-out: same clamping as the single-page op, but
        the device write clusters physically contiguous blocks into
        multi-block transfers — one seek+rotation per run instead of one
        per page."""
        ino = self._ino_of(source_key)
        file_size = self.layer.volume.iget(ino).size
        usable = min(size, len(data), max(0, file_size - offset))
        if usable > 0:
            self.layer.volume.write_data_clustered(ino, offset, data[:usable])

    def attr_page_in(self, source_key, pager_object) -> FileAttributes:
        return FileAttributes.from_inode(
            self.layer.volume.iget(self._ino_of(source_key))
        )

    def attr_write_out(self, source_key, pager_object, attrs) -> None:
        ino = self._ino_of(source_key)
        inode = self.layer.volume.iget(ino)
        attrs.apply_to_inode(inode)
        self.layer.volume.mark_dirty(ino)


class DiskLayer(BaseLayer):
    """The stackable_fs face of one mounted volume.

    The layer itself doubles as the volume's root directory context, so
    binding the layer into the name space exposes its whole tree.
    """

    max_under = 0
    ops_class = DiskOps

    def __init__(self, domain, device: BlockDevice, format_device: bool = False):
        super().__init__(domain)
        if format_device:
            self.volume = Volume.mkfs(device)
        else:
            self.volume = Volume.mount(device)
        self.device = device
        self._root = DiskDirectory(self, self.volume.sb.root_ino)

    def fs_type(self) -> str:
        return "disk"

    def make_object(self, ino: int, charge_open: bool = True) -> object:
        """Materialize a handle for an i-node: DiskFile or DiskDirectory."""
        inode = self.volume.iget(ino)
        if inode.is_dir:
            return DiskDirectory(self, ino)
        if charge_open:
            return DiskFile(self, ino)
        # Listing should not pay open-state cost; build the handle without
        # the charge by bypassing DiskFile.__init__'s accounting.
        handle = object.__new__(DiskFile)
        File.__init__(handle, self.domain)
        handle.layer = self
        handle.ino = ino
        handle.source_key = ("disk", self.oid, ino)
        return handle

    # --- root-context face: delegate to the root DiskDirectory -----------------------
    @operation
    def resolve(self, name: str) -> object:
        return self._root._resolve_from(self._root.dir_ino, name)

    @operation
    def bind(self, name: str, obj: object) -> None:
        raise FsError("disk layer root holds files; use create_file/create_dir")

    @operation
    def unbind(self, name: str) -> object:
        return self._root.unbind(name)

    @operation
    def rebind(self, name: str, obj: object) -> object:
        raise FsError("disk layer root does not support rebind")

    @operation
    def list_bindings(self) -> List[Tuple[str, object]]:
        return self._root._list_from(self._root.dir_ino)

    @operation
    def create_file(self, name: str) -> File:
        return self._root.create_file(name)

    @operation
    def create_dir(self, name: str) -> DiskDirectory:
        return self._root.create_dir(name)

    @operation
    def rename(self, old_name: str, new_name: str) -> None:
        self._root.rename(old_name, new_name)

    # --- fs ------------------------------------------------------------------------------
    def _sync_impl(self) -> None:
        self.volume.sync()

    # --- mount lifecycle -----------------------------------------------------------------
    def unmount(self) -> int:
        """Cleanly detach the on-disk state: ordered metadata flush, then
        the superblock goes CLEAN (see :meth:`repro.storage.volume.Volume.unmount`).
        The layer stays usable; the next mutation lazily re-dirties the
        superblock.  Returns blocks written."""
        return self.volume.unmount()

    def remount(self) -> None:
        """Drop all in-memory volume state and re-mount from the device —
        the in-process equivalent of a reboot of this layer's server."""
        self.volume = Volume.mount(self.device)
        self._root = DiskDirectory(self, self.volume.sb.root_ino)
