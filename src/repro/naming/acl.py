"""Access control lists for naming contexts.

"Naming contexts are associated with access control lists" (paper
sec. 5, citing the Spring name service paper).  The model here is
deliberately small: an ACL names an owner, grants or withholds world
resolve/bind rights, and always admits privileged (system) credentials.
That is enough to express the paper's two requirements — protected
system contexts, and authenticated interposers being allowed to rebind
parts of the name space.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import PermissionDeniedError
from repro.ipc.domain import Credentials


class Acl:
    """Resolve/bind permissions for one context."""

    def __init__(
        self,
        owner: Optional[str] = None,
        world_resolve: bool = True,
        world_bind: bool = True,
    ) -> None:
        self.owner = owner
        self.world_resolve = world_resolve
        self.world_bind = world_bind

    # --- checks ------------------------------------------------------------
    def can_resolve(self, creds: Optional[Credentials]) -> bool:
        return self._allowed(creds, self.world_resolve)

    def can_bind(self, creds: Optional[Credentials]) -> bool:
        return self._allowed(creds, self.world_bind)

    def check_resolve(self, creds: Optional[Credentials]) -> None:
        if not self.can_resolve(creds):
            raise PermissionDeniedError(f"resolve denied for {creds!r}")

    def check_bind(self, creds: Optional[Credentials]) -> None:
        if not self.can_bind(creds):
            raise PermissionDeniedError(f"bind denied for {creds!r}")

    def _allowed(self, creds: Optional[Credentials], world_flag: bool) -> bool:
        if world_flag:
            return True
        if creds is None:
            # No active domain: internal/system access (see invocation
            # module doc); treat as privileged.
            return True
        if creds.privileged:
            return True
        return self.owner is not None and creds.principal == self.owner


def open_acl() -> Acl:
    """Anyone may resolve and bind."""
    return Acl()


def system_acl(owner: str = "nucleus") -> Acl:
    """World-readable, but only the owner/privileged domains may bind —
    the policy used for /fs_creators and other boot-time contexts."""
    return Acl(owner=owner, world_resolve=True, world_bind=False)
