"""Naming contexts.

"A context is an object that contains a set of name bindings in which
each name is unique. ... Since a context is like any other object, it can
also be bound to a name in some context." (paper sec. 3.2)

Two properties of Spring naming matter to file stacking and are
reproduced here:

* any domain may implement a naming context and (if authenticated) bind
  it anywhere — this is how a ``stackable_fs`` exports its files, and how
  interposers splice themselves in (paper sec. 5);
* resolution of a compound name hops context to context, so each hop is
  charged with the invocation path between the caller and whichever
  domain serves that context.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    NameAlreadyBoundError,
    NameNotFoundError,
    NotAContextError,
)
from repro.ipc import invocation
from repro.ipc.narrow import narrow
from repro.ipc.object import SpringObject
from repro.naming import name as names
from repro.naming.acl import Acl, open_acl


class NamingContext(SpringObject, abc.ABC):
    """The naming_context interface."""

    @abc.abstractmethod
    def resolve(self, name: str) -> object:
        """Resolve a (possibly compound) name to an object."""

    @abc.abstractmethod
    def bind(self, name: str, obj: object) -> None:
        """Create a binding for a single-component name."""

    @abc.abstractmethod
    def unbind(self, name: str) -> object:
        """Remove a binding, returning the object it named."""

    @abc.abstractmethod
    def rebind(self, name: str, obj: object) -> object:
        """Atomically replace a binding, returning the old object.

        This is the primitive interposers use: resolve, then rebind the
        name to a context/file implemented by the interposer.
        """

    @abc.abstractmethod
    def list_bindings(self) -> List[Tuple[str, object]]:
        """All (name, object) pairs, sorted by name."""


class MemoryContext(NamingContext):
    """The standard in-memory context implementation.

    Served by whatever domain created it; charged accordingly on every
    hop.  Fires world-level name-invalidation events on mutation so name
    caches (paper sec. 6.4's planned name caching) stay correct.
    """

    def __init__(self, domain, acl: Optional[Acl] = None) -> None:
        super().__init__(domain)
        self.acl = acl or open_acl()
        self._bindings: Dict[str, object] = {}

    # --- helpers ------------------------------------------------------------
    def _caller_credentials(self):
        caller = invocation.calling_domain()
        return caller.credentials if caller is not None else None

    def _notify_changed(self, component: str) -> None:
        self.world.name_event(self, component)

    # --- naming_context operations -------------------------------------------
    @invocation.operation
    def resolve(self, name: str) -> object:
        self.acl.check_resolve(self._caller_credentials())
        head, tail = names.head_tail(name)
        try:
            obj = self._bindings[head]
        except KeyError:
            raise NameNotFoundError(f"{head!r} not bound in context {self.oid}")
        if tail == "":
            return obj
        sub = narrow(obj, NamingContext)
        if sub is None:
            raise NotAContextError(
                f"{head!r} is a {type(obj).__name__}, not a context; "
                f"cannot resolve remainder {tail!r}"
            )
        return sub.resolve(tail)

    @invocation.operation
    def bind(self, name: str, obj: object) -> None:
        self.acl.check_bind(self._caller_credentials())
        names.validate_component(name)
        if name in self._bindings:
            raise NameAlreadyBoundError(f"{name!r} already bound")
        self._bindings[name] = obj
        self._notify_changed(name)

    @invocation.operation
    def unbind(self, name: str) -> object:
        self.acl.check_bind(self._caller_credentials())
        names.validate_component(name)
        try:
            obj = self._bindings.pop(name)
        except KeyError:
            raise NameNotFoundError(f"{name!r} not bound")
        self._notify_changed(name)
        return obj

    @invocation.operation
    def rebind(self, name: str, obj: object) -> object:
        self.acl.check_bind(self._caller_credentials())
        names.validate_component(name)
        try:
            old = self._bindings[name]
        except KeyError:
            raise NameNotFoundError(f"{name!r} not bound")
        self._bindings[name] = obj
        self._notify_changed(name)
        return old

    @invocation.operation
    def list_bindings(self) -> List[Tuple[str, object]]:
        self.acl.check_resolve(self._caller_credentials())
        return sorted(self._bindings.items())

    # --- convenience ----------------------------------------------------------
    @invocation.operation
    def create_context(self, name: str, acl: Optional[Acl] = None) -> "MemoryContext":
        """Create a fresh sub-context served by this context's domain and
        bind it under ``name``."""
        sub = MemoryContext(self.domain, acl)
        self.bind(name, sub)
        return sub

    def contains(self, name: str) -> bool:
        """Non-invocation peek used by tests."""
        return name in self._bindings
