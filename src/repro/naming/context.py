"""Naming contexts.

"A context is an object that contains a set of name bindings in which
each name is unique. ... Since a context is like any other object, it can
also be bound to a name in some context." (paper sec. 3.2)

Two properties of Spring naming matter to file stacking and are
reproduced here:

* any domain may implement a naming context and (if authenticated) bind
  it anywhere — this is how a ``stackable_fs`` exports its files, and how
  interposers splice themselves in (paper sec. 5);
* resolution of a compound name hops context to context, so each hop is
  charged with the invocation path between the caller and whichever
  domain serves that context.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    FileNotFoundError_,
    NameAlreadyBoundError,
    NameNotFoundError,
    NotAContextError,
)
from repro.ipc import invocation
from repro.ipc.narrow import narrow
from repro.ipc.object import SpringObject
from repro.naming import name as names
from repro.naming.acl import Acl, open_acl


@dataclasses.dataclass(frozen=True)
class ResolvedPath:
    """Result of a server-side compound-name walk (:meth:`NamingContext.
    resolve_path`).

    ``path_oids`` are the identities of every context traversed —
    including the wrapped chains under layer directories — so name
    caches can invalidate precisely.  A failed walk is *returned*, not
    raised (``missing`` names the path prefix that did not resolve), so
    a caller paying one round trip for the walk also learns enough to
    negative-cache the failure.
    """

    target: Optional[object]
    path_oids: Tuple[int, ...]
    missing: Optional[str] = None

    @property
    def found(self) -> bool:
        return self.missing is None


class NamingContext(SpringObject, abc.ABC):
    """The naming_context interface."""

    @abc.abstractmethod
    def resolve(self, name: str) -> object:
        """Resolve a (possibly compound) name to an object."""

    @invocation.operation
    def resolve_path(self, name: str) -> ResolvedPath:
        """Walk every component of ``name`` server-side in one
        invocation — one hop per serving *node* instead of one client
        round trip per component.

        The default implementation works for any context type: it
        resolves component by component with the server's domain
        active, so hops between contexts co-located on this node are
        local or cross-domain calls, and delegates the remainder in a
        single nested invocation whenever the walk crosses to a context
        served by another node.
        """
        caller = invocation.calling_domain()
        self._check_resolve_access(
            caller.credentials if caller is not None else None
        )
        components = names.split_name(name)
        oids: List[int] = []
        current: object = self
        for index, component in enumerate(components):
            context = narrow(current, NamingContext)
            if context is None:
                raise NotAContextError(
                    f"{components[index - 1]!r} is a "
                    f"{type(current).__name__}, not a context; cannot "
                    f"resolve remainder {names.SEPARATOR.join(components[index:])!r}"
                )
            if index > 0 and context.domain.node is not self.domain.node:
                # The walk crossed machines: hand the remainder to the
                # next node in one invocation, so the total cost is one
                # hop per node boundary.
                sub = context.resolve_path(
                    names.SEPARATOR.join(components[index:])
                )
                return ResolvedPath(
                    sub.target, tuple(oids) + sub.path_oids, sub.missing
                )
            oids.extend(context.path_identity())
            try:
                current = context.resolve(component)
            except (NameNotFoundError, FileNotFoundError_):
                # Plain contexts raise the former, file-system directory
                # wrappers the latter; either way the walk ends here.
                return ResolvedPath(
                    None,
                    tuple(oids),
                    names.SEPARATOR.join(components[: index + 1]),
                )
        return ResolvedPath(current, tuple(oids))

    def _check_resolve_access(self, credentials) -> None:
        """Hook: first-hop access check for :meth:`resolve_path`.

        The per-component ``resolve`` calls inside the walk authenticate
        the chain (each context checks the domain serving the previous
        one) exactly as recursive compound resolution always has; this
        hook lets ACL-bearing contexts also authenticate the *original*
        client on the first hop, matching a direct ``resolve``.
        """

    def path_identity(self) -> Tuple[int, ...]:
        """Oids under which name-mutation events affecting this context
        may fire: this object plus any wrapped context chain below it
        (layer directories forward mutations to the context they wrap,
        and the *wrapped* context is the one that fires the event).

        Bookkeeping peek, not an invocation — it carries no payload and
        models state the resolver already holds.
        """
        oids = [self.oid]
        seen = {id(self)}
        current: object = self
        while True:
            under = getattr(current, "under_context", None)
            if under is None:
                unders = getattr(current, "_under", None)
                under = unders[0] if unders else None
            if not isinstance(under, NamingContext) or id(under) in seen:
                break
            oids.append(under.oid)
            seen.add(id(under))
            current = under
        return tuple(oids)

    @abc.abstractmethod
    def bind(self, name: str, obj: object) -> None:
        """Create a binding for a single-component name."""

    @abc.abstractmethod
    def unbind(self, name: str) -> object:
        """Remove a binding, returning the object it named."""

    @abc.abstractmethod
    def rebind(self, name: str, obj: object) -> object:
        """Atomically replace a binding, returning the old object.

        This is the primitive interposers use: resolve, then rebind the
        name to a context/file implemented by the interposer.
        """

    @abc.abstractmethod
    def list_bindings(self) -> List[Tuple[str, object]]:
        """All (name, object) pairs, sorted by name."""


class MemoryContext(NamingContext):
    """The standard in-memory context implementation.

    Served by whatever domain created it; charged accordingly on every
    hop.  Fires world-level name-invalidation events on mutation so name
    caches (paper sec. 6.4's planned name caching) stay correct.
    """

    def __init__(self, domain, acl: Optional[Acl] = None) -> None:
        super().__init__(domain)
        self.acl = acl or open_acl()
        self._bindings: Dict[str, object] = {}

    # --- helpers ------------------------------------------------------------
    def _caller_credentials(self):
        caller = invocation.calling_domain()
        return caller.credentials if caller is not None else None

    def _notify_changed(self, component: str) -> None:
        self.world.name_event(self, component)

    def _check_resolve_access(self, credentials) -> None:
        self.acl.check_resolve(credentials)

    # --- naming_context operations -------------------------------------------
    @invocation.operation
    def resolve(self, name: str) -> object:
        self.acl.check_resolve(self._caller_credentials())
        head, tail = names.head_tail(name)
        try:
            obj = self._bindings[head]
        except KeyError:
            raise NameNotFoundError(f"{head!r} not bound in context {self.oid}")
        if tail == "":
            return obj
        sub = narrow(obj, NamingContext)
        if sub is None:
            raise NotAContextError(
                f"{head!r} is a {type(obj).__name__}, not a context; "
                f"cannot resolve remainder {tail!r}"
            )
        return sub.resolve(tail)

    @invocation.operation
    def bind(self, name: str, obj: object) -> None:
        self.acl.check_bind(self._caller_credentials())
        names.validate_component(name)
        if name in self._bindings:
            raise NameAlreadyBoundError(f"{name!r} already bound")
        self._bindings[name] = obj
        self._notify_changed(name)

    @invocation.operation
    def unbind(self, name: str) -> object:
        self.acl.check_bind(self._caller_credentials())
        names.validate_component(name)
        try:
            obj = self._bindings.pop(name)
        except KeyError:
            raise NameNotFoundError(f"{name!r} not bound")
        self._notify_changed(name)
        return obj

    @invocation.operation
    def rebind(self, name: str, obj: object) -> object:
        self.acl.check_bind(self._caller_credentials())
        names.validate_component(name)
        try:
            old = self._bindings[name]
        except KeyError:
            raise NameNotFoundError(f"{name!r} not bound")
        self._bindings[name] = obj
        self._notify_changed(name)
        return old

    @invocation.operation
    def list_bindings(self) -> List[Tuple[str, object]]:
        self.acl.check_resolve(self._caller_credentials())
        return sorted(self._bindings.items())

    # --- convenience ----------------------------------------------------------
    @invocation.operation
    def create_context(self, name: str, acl: Optional[Acl] = None) -> "MemoryContext":
        """Create a fresh sub-context served by this context's domain and
        bind it under ``name``."""
        sub = MemoryContext(self.domain, acl)
        self.bind(name, sub)
        return sub

    def contains(self, name: str) -> bool:
        """Non-invocation peek used by tests."""
        return name in self._bindings
