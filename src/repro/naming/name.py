"""Compound-name syntax.

Spring names are sequences of components; we use the familiar
slash-separated textual form.  A leading slash means "resolve from the
node's shared root" in :mod:`repro.naming.namespace`; within a context a
name is always relative.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import InvalidNameError

SEPARATOR = "/"


def split_name(name: str) -> List[str]:
    """Split a textual name into components, validating each.

    >>> split_name("a/b/c")
    ['a', 'b', 'c']
    >>> split_name("/fs/sfs0")
    ['fs', 'sfs0']
    """
    if not isinstance(name, str) or name == "":
        raise InvalidNameError(f"invalid name: {name!r}")
    stripped = name[1:] if name.startswith(SEPARATOR) else name
    if stripped == "":
        raise InvalidNameError("the root itself cannot be named by ''")
    components = stripped.split(SEPARATOR)
    for component in components:
        validate_component(component)
    return components


def validate_component(component: str) -> None:
    """A single binding name: non-empty, no separator, no NUL."""
    if component == "":
        raise InvalidNameError("empty name component")
    if SEPARATOR in component:
        raise InvalidNameError(f"component contains separator: {component!r}")
    if "\0" in component:
        raise InvalidNameError("component contains NUL")


def is_absolute(name: str) -> bool:
    return name.startswith(SEPARATOR)


def normalize(name: str) -> str:
    """Canonical textual form of a name relative to a given context:
    components joined by the separator, leading slash dropped.  Used as
    the name-cache key so ``/a/b`` and ``a/b`` against the same root
    share one entry (and one prefix chain).

    >>> normalize("/fs/sfs0")
    'fs/sfs0'
    """
    return SEPARATOR.join(split_name(name))


def head_tail(name: str) -> Tuple[str, str]:
    """Split into (first component, remainder) — remainder may be ''.

    >>> head_tail("a/b/c")
    ('a', 'b/c')
    >>> head_tail("a")
    ('a', '')
    """
    components = split_name(name)
    head = components[0]
    tail = SEPARATOR.join(components[1:])
    return head, tail


def join(*parts: str) -> str:
    """Join name parts with the separator, preserving a leading slash on
    the first part.

    >>> join("/fs", "sfs0", "file1")
    '/fs/sfs0/file1'
    """
    if not parts:
        raise InvalidNameError("join of no parts")
    cleaned = [parts[0].rstrip(SEPARATOR)] + [
        p.strip(SEPARATOR) for p in parts[1:] if p.strip(SEPARATOR)
    ]
    return SEPARATOR.join(cleaned)
