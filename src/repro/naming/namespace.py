"""Per-domain name spaces.

"Each Spring domain has a context object that implements a per-domain
name space.  All domains have part of their name space in common, but
they can also customize their name space as appropriate." (paper
sec. 3.2)

A :class:`Namespace` is a private context layered over the node's shared
root: absolute names (leading ``/``) resolve from the shared root;
relative names resolve from the private context first, falling back to
the root.  Binding a relative name customizes only this domain's view.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import NameNotFoundError
from repro.naming import name as names
from repro.naming.context import MemoryContext, NamingContext


class Namespace:
    """One domain's view of the name space."""

    def __init__(self, domain, root: NamingContext) -> None:
        self.domain = domain
        self.root = root
        self.private = MemoryContext(domain)
        #: Optional per-domain name cache (see :meth:`attach_cache`).
        self.cache = None

    def attach_cache(self, cache) -> "Namespace":
        """Route absolute-name resolution through ``cache`` (a
        :class:`~repro.naming.cache.NameCache`).  Relative names stay
        uncached — the private context is served by this very domain, so
        a cache would save nothing.  Returns self for chaining."""
        self.cache = cache
        return self

    def resolve(self, name: str) -> object:
        if names.is_absolute(name):
            if self.cache is not None:
                return self.cache.resolve(self.root, name)
            return self.root.resolve(name)
        try:
            return self.private.resolve(name)
        except NameNotFoundError:
            return self.root.resolve(name)

    def bind(self, name: str, obj: object) -> None:
        """Bind into the private view (relative name) or the shared root
        (absolute name)."""
        if names.is_absolute(name):
            components = names.split_name(name)
            context = self._resolve_parent(self.root, components)
            context.bind(components[-1], obj)
        else:
            self.private.bind(name, obj)

    def unbind(self, name: str) -> object:
        if names.is_absolute(name):
            components = names.split_name(name)
            context = self._resolve_parent(self.root, components)
            return context.unbind(components[-1])
        return self.private.unbind(name)

    def list_bindings(self, name: str = "") -> List[Tuple[str, object]]:
        if name == "":
            return self.private.list_bindings()
        target = self.resolve(name)
        if not isinstance(target, NamingContext):
            raise NameNotFoundError(f"{name!r} is not a context")
        return target.list_bindings()

    @staticmethod
    def _resolve_parent(root: NamingContext, components: List[str]) -> NamingContext:
        context = root
        for component in components[:-1]:
            nxt = context.resolve(component)
            if not isinstance(nxt, NamingContext):
                raise NameNotFoundError(f"{component!r} is not a context")
            context = nxt
        return context


def namespace_for(domain) -> Namespace:
    """The domain's name space, created on first use over its node's
    shared root."""
    if domain.name_space is None:
        domain.name_space = Namespace(domain, domain.node.root_context)
    return domain.name_space
