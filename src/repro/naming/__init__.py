"""Spring naming architecture (paper sec. 3.2).

Public surface: :class:`NamingContext` and :class:`MemoryContext`
(contexts and bindings), :class:`Namespace` (per-domain views),
:class:`NameCache` (sec. 6.4 name caching), and the ACL model.
"""

from repro.naming.acl import Acl, open_acl, system_acl
from repro.naming.cache import NameCache
from repro.naming.context import MemoryContext, NamingContext
from repro.naming.name import head_tail, is_absolute, join, split_name
from repro.naming.namespace import Namespace, namespace_for

__all__ = [
    "Acl",
    "open_acl",
    "system_acl",
    "NameCache",
    "MemoryContext",
    "NamingContext",
    "head_tail",
    "is_absolute",
    "join",
    "split_name",
    "Namespace",
    "namespace_for",
]
