"""Client-side name caching.

The paper's fix for cross-domain open overhead: "If the open overhead
caused by splitting file system layers across domains turns out to be
significant ... name caching can be used to eliminate the overhead. We
are currently implementing name caching in Spring" (sec. 6.4).  The
paper treats it as future work; we implement it and ablate it
(`benchmarks/bench_ablation_namecache.py`).

A :class:`NameCache` sits in the *client's* domain.  A hit costs one
small in-domain charge instead of a chain of (possibly cross-domain or
cross-machine) context hops.  Correctness: every :class:`MemoryContext`
mutation fires a world-level event; the cache drops every entry whose
resolution path passed through the mutated context — including entries
cached through layer directories, because paths are remembered via
:meth:`~repro.naming.context.NamingContext.path_identity`, which sees
through wrapper chains to the context that actually fires the event.

Three refinements over a plain positive map:

* **True LRU** — entries live in an ordered map; a hit refreshes the
  entry and a full cache evicts exactly the least-recently-used entry
  (counted in ``namecache.evict``) instead of dropping everything.
* **Negative entries** — a failed resolution is cached too, keyed by
  the same path oids it traversed, so repeated lookups of absent names
  (the classic ``$PATH`` search pattern) cost one in-domain charge.
* **Prefix sharing** — a miss on ``a/b/c`` first consults the cache for
  its longest cached context prefix (``a/b``, then ``a``) and resumes
  resolution from there, paying the hops only for the uncached suffix.
  Consult-only: resolving a name never implicitly caches its prefixes.

With ``one_hop=True`` a miss delegates the whole walk to the root
context's :meth:`~repro.naming.context.NamingContext.resolve_path` —
one round trip per *node* on the path instead of one per component.
Off by default so existing cost calibration is unchanged.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Optional, Set, Tuple

from repro.errors import (
    FileNotFoundError_,
    NameNotFoundError,
    NotAContextError,
    TransientNetworkError,
)
from repro.ipc.narrow import narrow
from repro.naming import name as names
from repro.naming.context import NamingContext


@dataclasses.dataclass
class _Entry:
    """One cached resolution — positive (``value``) or negative
    (``missing`` names the unresolvable prefix; ``error`` is the
    exception type the real resolution raised, re-raised on a hit so
    cached failures look exactly like fresh ones)."""

    value: object
    path_oids: Set[int]
    missing: Optional[str] = None
    error: type = NameNotFoundError

    @property
    def negative(self) -> bool:
        return self.missing is not None


class NameCache:
    """LRU name cache with negative entries and prefix sharing."""

    def __init__(
        self,
        world,
        capacity: int = 1024,
        one_hop: bool = False,
        negative: bool = True,
        prefix: bool = True,
        serve_stale: bool = False,
    ) -> None:
        self.world = world
        self.capacity = capacity
        #: Resolve misses via a single server-side ``resolve_path`` walk
        #: (one hop per node) instead of a client-driven component walk.
        self.one_hop = one_hop
        self.negative = negative
        self.prefix = prefix
        #: Graceful degradation: keep invalidated positive entries in a
        #: stale side table, and when real resolution fails with a
        #: *transient* network error (partition, crashed server), serve
        #: the stale copy — marked by ``namecache.stale_serves`` — rather
        #: than failing the open.  Off by default: availability over
        #: strict freshness is an explicit opt-in.
        self.serve_stale = serve_stale
        #: (root oid, normalized name) -> _Entry, in LRU order
        #: (least recently used first).
        self._entries: "collections.OrderedDict[Tuple[int, str], _Entry]" = (
            collections.OrderedDict()
        )
        #: Invalidated positive entries kept for ``serve_stale`` (LRU,
        #: bounded by ``capacity`` like the live table).
        self._stale: "collections.OrderedDict[Tuple[int, str], _Entry]" = (
            collections.OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.negative_hits = 0
        self.prefix_hits = 0
        self.evictions = 0
        self.invalidations = 0
        self.stale_serves = 0
        world.register_name_cache(self)

    # --- lookup ---------------------------------------------------------------
    def resolve(self, root: NamingContext, name: str) -> object:
        """Resolve through the cache, falling back to real resolution."""
        normalized = names.normalize(name)
        key = (root.oid, normalized)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.world.charge.name_cache_hit()
            if entry.negative:
                self.negative_hits += 1
                self.world.counters.inc("namecache.negative_hit")
                raise entry.error(f"{entry.missing!r} not found (cached)")
            self.hits += 1
            self.world.counters.inc("namecache.hit")
            return entry.value
        self.misses += 1
        self.world.counters.inc("namecache.miss")
        start, remainder, path_oids = self._consult_prefix(
            root, normalized
        )
        try:
            obj, walked = self._resolve_tracking(start, remainder)
        except (NameNotFoundError, FileNotFoundError_) as exc:
            if self.negative:
                path_oids |= getattr(exc, "path_oids", set())
                self._insert(
                    key,
                    _Entry(
                        None,
                        path_oids,
                        missing=normalized,
                        error=type(exc),
                    ),
                )
            raise
        except TransientNetworkError:
            # Authoritative resolution is unreachable (partition, crashed
            # server).  With serve_stale on and a previously-valid copy
            # at hand, degrade gracefully instead of failing the open.
            stale = self._stale.get(key) if self.serve_stale else None
            if stale is None:
                raise
            self._stale.move_to_end(key)
            self.stale_serves += 1
            self.world.counters.inc("namecache.stale_serves")
            self.world.charge.name_cache_hit()
            return stale.value
        self._stale.pop(key, None)  # fresh truth supersedes the stale copy
        self._insert(key, _Entry(obj, path_oids | walked))
        return obj

    def _consult_prefix(
        self, root: NamingContext, normalized: str
    ) -> Tuple[NamingContext, str, Set[int]]:
        """Longest cached positive context prefix of ``normalized``, if
        any: returns (context to resume from, remaining name, oids of
        the cached prefix path).  Falls back to (root, whole name, {})."""
        if not self.prefix:
            return root, normalized, set()
        components = normalized.split(names.SEPARATOR)
        for cut in range(len(components) - 1, 0, -1):
            prefix_key = (root.oid, names.SEPARATOR.join(components[:cut]))
            entry = self._entries.get(prefix_key)
            if entry is None or entry.negative:
                continue
            context = narrow(entry.value, NamingContext)
            if context is None:
                continue
            self._entries.move_to_end(prefix_key)
            self.prefix_hits += 1
            self.world.charge.name_cache_hit()
            self.world.counters.inc("namecache.prefix_hit")
            remainder = names.SEPARATOR.join(components[cut:])
            return context, remainder, set(entry.path_oids)
        return root, normalized, set()

    def _resolve_tracking(
        self, root: NamingContext, name: str
    ) -> Tuple[object, Set[int]]:
        """Resolve ``name`` from ``root``, remembering which contexts
        were traversed so mutations to any of them invalidate the entry.
        A :class:`NameNotFoundError` raised mid-walk is annotated with
        the oids traversed so far (``exc.path_oids``) for negative
        caching."""
        if self.one_hop:
            resolved = root.resolve_path(name)
            path_oids = set(resolved.path_oids)
            if not resolved.found:
                exc = NameNotFoundError(
                    f"{resolved.missing!r} not found"
                )
                exc.path_oids = path_oids  # type: ignore[attr-defined]
                raise exc
            return resolved.target, path_oids

        components = names.split_name(name)
        path_oids: Set[int] = set()
        current: object = root
        for index, component in enumerate(components):
            context = narrow(current, NamingContext)
            if context is None:
                raise NotAContextError(
                    f"{components[index - 1]!r} is a "
                    f"{type(current).__name__}, not a context"
                )
            path_oids.update(context.path_identity())
            try:
                current = context.resolve(component)
            except (NameNotFoundError, FileNotFoundError_) as exc:
                exc.path_oids = path_oids  # type: ignore[attr-defined]
                raise
        return current, path_oids

    # --- insertion / eviction -------------------------------------------------
    def _insert(self, key: Tuple[int, str], entry: _Entry) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.capacity:
            victim_key, victim = self._entries.popitem(last=False)
            self.evictions += 1
            self.world.counters.inc("namecache.evict")
            self._demote(victim_key, victim)
        self._entries[key] = entry

    def _demote(self, key: Tuple[int, str], entry: _Entry) -> None:
        """With ``serve_stale``, keep a positive entry leaving the live
        table as the degraded-mode fallback (LRU-bounded)."""
        if not self.serve_stale or entry.negative:
            return
        if key not in self._stale and len(self._stale) >= self.capacity:
            self._stale.popitem(last=False)
        self._stale[key] = entry
        self._stale.move_to_end(key)

    # --- invalidation ---------------------------------------------------------
    def on_name_event(self, context: NamingContext, component: str) -> None:
        """Called by the world whenever any context binding changes."""
        stale = [
            key
            for key, entry in self._entries.items()
            if context.oid in entry.path_oids
        ]
        for key in stale:
            # Demote rather than discard: the copy is no longer
            # authoritative, but it is the best available answer if
            # the authority becomes unreachable.
            entry = self._entries.pop(key)
            self.invalidations += 1
            self._demote(key, entry)

    def clear(self) -> None:
        self._entries.clear()
        self._stale.clear()

    def __len__(self) -> int:
        return len(self._entries)
