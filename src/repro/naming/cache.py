"""Client-side name caching.

The paper's fix for cross-domain open overhead: "If the open overhead
caused by splitting file system layers across domains turns out to be
significant ... name caching can be used to eliminate the overhead. We
are currently implementing name caching in Spring" (sec. 6.4).  The
paper treats it as future work; we implement it and ablate it
(`benchmarks/bench_ablation_namecache.py`).

A :class:`NameCache` sits in the *client's* domain.  A hit costs one
small in-domain charge instead of a chain of (possibly cross-domain)
context hops.  Correctness: every :class:`MemoryContext` mutation fires
a world-level event; the cache drops every entry whose resolution path
passed through the mutated context.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.naming.context import NamingContext


class NameCache:
    """LRU-less direct-mapped name cache (capacity-bounded dict)."""

    def __init__(self, world, capacity: int = 1024) -> None:
        self.world = world
        self.capacity = capacity
        #: (root oid, name) -> (object, oids of contexts on the path)
        self._entries: Dict[Tuple[int, str], Tuple[object, Set[int]]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        world.register_name_cache(self)

    def resolve(self, root: NamingContext, name: str) -> object:
        """Resolve through the cache, falling back to real resolution."""
        key = (root.oid, name)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self.world.charge.name_cache_hit()
            self.world.counters.inc("namecache.hit")
            return cached[0]
        self.misses += 1
        self.world.counters.inc("namecache.miss")
        obj, path_oids = self._resolve_tracking(root, name)
        if len(self._entries) >= self.capacity:
            # Simple wholesale eviction keeps the structure predictable.
            self._entries.clear()
        self._entries[key] = (obj, path_oids)
        return obj

    def _resolve_tracking(
        self, root: NamingContext, name: str
    ) -> Tuple[object, Set[int]]:
        """Resolve hop by hop, remembering which contexts were traversed
        so mutations to any of them invalidate the entry."""
        from repro.naming import name as names

        components = names.split_name(name)
        path_oids: Set[int] = {root.oid}
        current: object = root
        for index, component in enumerate(components):
            context = current
            assert isinstance(context, NamingContext)
            path_oids.add(context.oid)
            current = context.resolve(component)
            if index < len(components) - 1 and isinstance(current, NamingContext):
                path_oids.add(current.oid)
        return current, path_oids

    # --- invalidation ---------------------------------------------------------
    def on_name_event(self, context: NamingContext, component: str) -> None:
        """Called by the world whenever any context binding changes."""
        stale = [
            key
            for key, (_, path_oids) in self._entries.items()
            if context.oid in path_oids
        ]
        for key in stale:
            del self._entries[key]
            self.invalidations += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
