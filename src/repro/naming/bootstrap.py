"""Boot-time name-space construction for a node.

Builds the shared root context and the well-known contexts the paper
relies on:

* ``/fs_creators`` — where each file system type's creator registers
  itself ("it registers itself in a well-known place e.g.
  /fs_creators/dfs_creator", sec. 4.4);
* ``/fs``       — where administrators export stackable_fs instances;
* ``/dev``      — block devices of this node.
"""

from __future__ import annotations

from repro.ipc.domain import Credentials
from repro.naming.acl import open_acl, system_acl
from repro.naming.context import MemoryContext


def boot_naming(node) -> None:
    """Create the naming server domain and standard contexts on a node."""
    naming_domain = node.create_domain(
        "naming", Credentials("naming", privileged=True)
    )
    with naming_domain.activate():
        root = MemoryContext(naming_domain, system_acl("naming"))
        fs_creators = MemoryContext(naming_domain, open_acl())
        fs = MemoryContext(naming_domain, open_acl())
        dev = MemoryContext(naming_domain, open_acl())
        root._bindings["fs_creators"] = fs_creators
        root._bindings["fs"] = fs
        root._bindings["dev"] = dev
    node.root_context = root
    node.fs_creators = fs_creators
    node.fs_context = fs
    node.dev_context = dev
