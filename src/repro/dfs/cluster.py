"""Assembly helper for a sharded DFS cluster.

One call builds the whole topology: a metadata machine running an SFS
(namespace + attributes) and the NameNode, N datanode machines each
exporting a :class:`~repro.dfs.datanode.DataNodeService`, and a client
machine where the :class:`~repro.dfs.layer.ShardedDfsLayer` stacks on
the remote metadata SFS — clients stripe data to the datanodes directly
while the namespace lives on the metadata server.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.ipc.domain import Credentials
from repro.ipc.node import Node
from repro.storage.block_device import BlockDevice
from repro.world import World

from repro.fs.base import StackConfig
from repro.fs.sfs import SfsStack, create_sfs

from repro.dfs.datanode import DataNodeService
from repro.dfs.layer import ShardedDfsLayer
from repro.dfs.namenode import NameNodeService


@dataclasses.dataclass
class ShardedCluster:
    """The assembled topology, for tests and benchmarks to poke at."""

    world: World
    meta: Node
    client: Node
    datanode_nodes: List[Node]
    datanodes: Dict[str, DataNodeService]
    namenode: NameNodeService
    layer: ShardedDfsLayer
    meta_sfs: SfsStack


def create_sharded_dfs(
    world: Optional[World] = None,
    datanodes: int = 3,
    replication: int = 3,
    write_quorum: int = 2,
    read_quorum: int = 1,
    heartbeat_interval_us: float = 5_000.0,
    repairs_per_scan: int = 4,
    server_slots: Optional[int] = None,
    device_blocks: int = 4096,
    mount_name: str = "shardfs",
    config: Optional[StackConfig] = None,
) -> ShardedCluster:
    """Build and wire a sharded DFS; returns the :class:`ShardedCluster`.

    ``server_slots`` installs a finite :class:`ServiceQueue` on every
    datanode (concurrent mode), so overlapping block ops queue and
    charge ``server_queue_wait`` exactly like the single-server DFS
    benchmarks do.
    """
    world = world or World()
    meta = world.create_node("meta")
    device = BlockDevice(meta.nucleus, "md0", device_blocks)
    meta_sfs = create_sfs(meta, device, name="shardmeta")

    nn_domain = meta.create_domain(
        "namenode", Credentials("namenode", privileged=True)
    )
    namenode = NameNodeService(
        nn_domain,
        replication=replication,
        heartbeat_interval_us=heartbeat_interval_us,
        repairs_per_scan=repairs_per_scan,
    )

    dn_nodes: List[Node] = []
    services: Dict[str, DataNodeService] = {}
    for i in range(datanodes):
        node = world.create_node(f"dn{i}")
        if server_slots is not None:
            node.install_server_queue(server_slots)
        domain = node.create_domain(
            "datanode", Credentials(f"dn{i}", privileged=True)
        )
        service = DataNodeService(domain, f"dn{i}")
        namenode.register_datanode(f"dn{i}", service)
        dn_nodes.append(node)
        services[f"dn{i}"] = service

    client = world.create_node("client")
    layer_domain = client.create_domain(
        mount_name, Credentials(mount_name, privileged=True)
    )
    layer = ShardedDfsLayer(
        layer_domain,
        namenode,
        write_quorum=write_quorum,
        read_quorum=read_quorum,
    )
    for name, service in services.items():
        layer.attach_datanode(name, service)
    layer.stack_on(meta_sfs.top, config=config)
    client.fs_context.bind(mount_name, layer)

    return ShardedCluster(
        world=world,
        meta=meta,
        client=client,
        datanode_nodes=dn_nodes,
        datanodes=services,
        namenode=namenode,
        layer=layer,
        meta_sfs=meta_sfs,
    )
