"""Sharded, replicated DFS: namenode/datanode split with quorum I/O.

See ``docs/DISTRIBUTED.md`` for the protocol and state machines.
"""

from repro.dfs.blockmap import BlockInfo, BlockMap
from repro.dfs.cluster import ShardedCluster, create_sharded_dfs
from repro.dfs.datanode import DataNodeService
from repro.dfs.layer import QuorumReadError, QuorumWriteError, ShardedDfsLayer
from repro.dfs.namenode import NameNodeService

__all__ = [
    "BlockInfo",
    "BlockMap",
    "DataNodeService",
    "NameNodeService",
    "QuorumReadError",
    "QuorumWriteError",
    "ShardedCluster",
    "ShardedDfsLayer",
    "create_sharded_dfs",
]
