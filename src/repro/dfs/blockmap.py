"""The NameNode's block map — pure placement bookkeeping, no I/O.

A sharded file is an ordered list of fixed-size blocks (one VM page per
block, matching the paper's 4KB transfer unit); each block is replicated
on an ordered set of datanodes.  The map records, per block:

* ``version`` — the latest *committed* write: a version becomes
  committed once at least one datanode durably acknowledged it (the
  client's W-of-R quorum is the availability contract on top; see
  ``docs/DISTRIBUTED.md``);
* ``holders`` — datanode name -> the version that node last
  acknowledged.  A holder whose version lags ``version`` is *stale*
  (it missed a write while crashed or unreachable) and must not serve
  reads until the re-replication pass catches it up.

Everything here is plain data so the NameNode's state machines
(placement, repair, rebalance) stay unit-testable without a network.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, Iterator, List, Tuple


@dataclasses.dataclass
class BlockInfo:
    """Placement and version state for one block of one file."""

    #: Latest committed version; 0 = never written (reads serve zeros).
    version: int = 0
    #: datanode name -> version that node last acknowledged.
    holders: Dict[str, int] = dataclasses.field(default_factory=dict)

    def current_holders(self) -> List[str]:
        """Holders whose copy is at the committed version, in
        registration order (deterministic failover order for readers)."""
        version = self.version
        return [name for name, held in self.holders.items() if held == version]

    def stale_holders(self) -> List[str]:
        version = self.version
        return [name for name, held in self.holders.items() if held != version]


class BlockMap:
    """file key -> {block index -> :class:`BlockInfo`}."""

    def __init__(self) -> None:
        self._files: Dict[Hashable, Dict[int, BlockInfo]] = {}

    def block(
        self, file_key: Hashable, index: int, create: bool = False
    ) -> BlockInfo | None:
        blocks = self._files.get(file_key)
        if blocks is None:
            if not create:
                return None
            blocks = self._files[file_key] = {}
        info = blocks.get(index)
        if info is None and create:
            info = blocks[index] = BlockInfo()
        return info

    def blocks(self) -> Iterator[Tuple[Hashable, int, BlockInfo]]:
        """All (file_key, index, info) triples, in deterministic
        (insertion, index) order — repair and rebalance walk this."""
        for file_key, blocks in self._files.items():
            for index in sorted(blocks):
                yield file_key, index, blocks[index]

    def drop_from(
        self, file_key: Hashable, first_index: int
    ) -> List[Tuple[int, BlockInfo]]:
        """Remove every block of ``file_key`` at or past ``first_index``
        (a truncate); returns the dropped (index, info) pairs so the
        caller can delete the replicas."""
        blocks = self._files.get(file_key)
        if not blocks:
            return []
        dropped = [(i, blocks.pop(i)) for i in sorted(blocks) if i >= first_index]
        return dropped

    def blocks_held_by(self, name: str) -> int:
        """How many block replicas ``name`` holds (any version) — the
        rebalancer's fullness metric."""
        return sum(
            1
            for blocks in self._files.values()
            for info in blocks.values()
            if name in info.holders
        )

    def total_blocks(self) -> int:
        return sum(len(blocks) for blocks in self._files.values())
