"""The NameNode's block map — pure placement bookkeeping, no I/O.

A sharded file is an ordered list of fixed-size blocks (one VM page per
block, matching the paper's 4KB transfer unit); each block is replicated
on an ordered set of datanodes.  The map records, per block:

* ``version`` — the latest *committed* write: a version becomes
  committed once at least one datanode durably acknowledged it (the
  client's W-of-R quorum is the availability contract on top; see
  ``docs/DISTRIBUTED.md``);
* ``prepared`` — the highest version ever *handed out* for the block.
  Version numbers are never reused: a prepare whose commit was lost
  still burned its version, so the next prepare moves past it instead
  of reissuing the same number for different bytes;
* ``holders`` — datanode name -> the version that node last
  acknowledged.  A holder whose version lags ``version`` is *stale*
  (it missed a write while crashed or unreachable) and must not serve
  reads until the re-replication pass catches it up.

A truncate drops blocks from the map, but their version numbers must
stay burned: an unreachable holder may keep an orphaned replica at the
old version, and if a re-created block restarted at version 1 the
orphan's skip-but-ack would count toward the new write's quorum and its
stale bytes would be served as current.  ``drop_from`` therefore folds
the dropped blocks' high-water marks into a per-file floor, and blocks
created later start their ``prepared`` from it.

Everything here is plain data so the NameNode's state machines
(placement, repair, rebalance) stay unit-testable without a network.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, Iterator, List, Tuple


@dataclasses.dataclass
class BlockInfo:
    """Placement and version state for one block of one file."""

    #: Latest committed version; 0 = never written (reads serve zeros).
    version: int = 0
    #: Highest version ever assigned by a prepare (>= ``version``);
    #: the next prepare hands out ``prepared + 1``.
    prepared: int = 0
    #: datanode name -> version that node last acknowledged.
    holders: Dict[str, int] = dataclasses.field(default_factory=dict)

    def next_version(self) -> int:
        """Assign (and burn) the next write version for this block."""
        self.prepared = max(self.prepared, self.version) + 1
        return self.prepared

    def current_holders(self) -> List[str]:
        """Holders whose copy is at the committed version, in
        registration order (deterministic failover order for readers)."""
        version = self.version
        return [name for name, held in self.holders.items() if held == version]

    def stale_holders(self) -> List[str]:
        version = self.version
        return [name for name, held in self.holders.items() if held != version]


class BlockMap:
    """file key -> {block index -> :class:`BlockInfo`}."""

    def __init__(self) -> None:
        self._files: Dict[Hashable, Dict[int, BlockInfo]] = {}
        #: Per-file version floor: the highest version ever assigned to
        #: a since-dropped block of the file.  New blocks start their
        #: ``prepared`` here so truncate can never un-burn a version.
        self._floors: Dict[Hashable, int] = {}

    def block(
        self, file_key: Hashable, index: int, create: bool = False
    ) -> BlockInfo | None:
        blocks = self._files.get(file_key)
        if blocks is None:
            if not create:
                return None
            blocks = self._files[file_key] = {}
        info = blocks.get(index)
        if info is None and create:
            info = blocks[index] = BlockInfo(
                prepared=self._floors.get(file_key, 0)
            )
        return info

    def version_floor(self, file_key: Hashable) -> int:
        """The file's burned-version floor (0 if never truncated)."""
        return self._floors.get(file_key, 0)

    def blocks(self) -> Iterator[Tuple[Hashable, int, BlockInfo]]:
        """All (file_key, index, info) triples, in deterministic
        (insertion, index) order — repair and rebalance walk this."""
        for file_key, blocks in self._files.items():
            for index in sorted(blocks):
                yield file_key, index, blocks[index]

    def drop_from(
        self, file_key: Hashable, first_index: int
    ) -> List[Tuple[int, BlockInfo]]:
        """Remove every block of ``file_key`` at or past ``first_index``
        (a truncate); returns the dropped (index, info) pairs so the
        caller can delete the replicas.  The dropped blocks' version
        high-water marks fold into the file's floor, so a block
        re-created at the same index resumes *past* them — an orphaned
        replica on an unreachable holder can never ack a reissued
        version."""
        blocks = self._files.get(file_key)
        if not blocks:
            return []
        dropped = [(i, blocks.pop(i)) for i in sorted(blocks) if i >= first_index]
        if dropped:
            burned = max(max(info.prepared, info.version) for _, info in dropped)
            self._floors[file_key] = max(
                self._floors.get(file_key, 0), burned
            )
        return dropped

    def blocks_held_by(self, name: str) -> int:
        """How many block replicas ``name`` holds (any version) — the
        rebalancer's fullness metric."""
        return sum(
            1
            for blocks in self._files.values()
            for info in blocks.values()
            if name in info.holders
        )

    def total_blocks(self) -> int:
        return sum(len(blocks) for blocks in self._files.values())
