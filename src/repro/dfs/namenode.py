"""NameNode — the metadata service of the sharded DFS.

Owns the block map (file -> ordered blocks -> replica placement), tracks
datanode liveness via epoch heartbeats over the ordinary network (so the
fault plane's crashes/partitions are what it sees), and runs two
background state machines:

* **repair** — re-replicates under-replicated blocks (a holder crashed,
  or a write landed on fewer than R replicas) and catches stale holders
  up after they recover under a new epoch.  Repairs are bounded per
  scan so a recovery storm spreads over several client operations
  instead of stalling one of them for the whole backlog;
* **rebalance** — migrates block replicas off overfull datanodes toward
  underfull ones, breaking fullness ties toward the node that has
  received the most network bytes (the hot one), using the per-node
  byte accounting already kept by :class:`repro.ipc.network.Network`.

The data path deliberately bypasses this service: clients ask it *where*
blocks live (``prepare_write_range`` / ``locate_range``), talk to the
datanodes directly, then report what actually happened
(``commit_write``) — the Lustre/HDFS metadata-data split.

Versions and quorums: ``prepare_write_range`` assigns each block the
next version; ``commit_write`` marks a version *committed* once at
least one datanode acked it (durable somewhere), records exactly which
holders are current, and counts the write against the client's W-of-R
quorum contract client-side.  Readers are directed only at current
holders, so a partially-acked write can fail the client's quorum while
never serving torn data.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import TransientNetworkError
from repro.ipc.invocation import operation
from repro.ipc.object import SpringObject
from repro.types import PAGE_SIZE

from repro.dfs.blockmap import BlockInfo, BlockMap
from repro.dfs.datanode import DataNodeService


@dataclasses.dataclass
class DataNodeEntry:
    """Registry row for one datanode."""

    name: str
    service: DataNodeService
    alive: bool = True
    #: Last epoch observed via heartbeat; a bump means the node crashed
    #: and recovered, so its unacked state may be stale.
    epoch: int = 0


class NameNodeService(SpringObject):
    """The metadata server; see module docstring."""

    def __init__(
        self,
        domain,
        replication: int = 3,
        heartbeat_interval_us: float = 5_000.0,
        repairs_per_scan: int = 4,
        rebalance_gap: int = 2,
    ) -> None:
        super().__init__(domain)
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.replication = replication
        self.heartbeat_interval_us = heartbeat_interval_us
        #: Repair moves allowed per heartbeat scan (bounds the latency a
        #: single client op absorbs during a recovery storm).
        self.repairs_per_scan = repairs_per_scan
        #: Minimum replica-count spread before the rebalancer moves one.
        self.rebalance_gap = rebalance_gap
        self.block_map = BlockMap()
        self._datanodes: Dict[str, DataNodeEntry] = {}
        self._last_scan_us = float("-inf")

    # ------------------------------------------------------------ registry
    @operation
    def register_datanode(self, name: str, service: DataNodeService) -> None:
        self._datanodes[name] = DataNodeEntry(name, service)

    def datanode_count(self) -> int:
        return len(self._datanodes)

    def _live(self) -> List[DataNodeEntry]:
        return [e for e in self._datanodes.values() if e.alive]

    # --------------------------------------------------- liveness scanning
    def _maybe_scan(self) -> None:
        """Heartbeat pass, rate-limited against the virtual clock.  Runs
        inline in the metadata operations (there is no background thread
        in the deterministic world): each scan pings every datanode,
        flips liveness on epoch/reachability changes, then performs a
        bounded amount of repair and rebalancing."""
        now = self.world.clock.now_us
        if now - self._last_scan_us < self.heartbeat_interval_us:
            return
        self._last_scan_us = now
        self._scan()

    def _scan(self) -> None:
        counters = self.world.counters
        counters.inc("shard.nn.scans")
        for entry in self._datanodes.values():
            try:
                epoch, _stored = entry.service.ping()
            except TransientNetworkError:
                if entry.alive:
                    entry.alive = False
                    counters.inc("shard.nn.datanode_lost")
                continue
            if not entry.alive:
                entry.alive = True
                counters.inc("shard.nn.datanode_recovered")
            entry.epoch = epoch
        self._repair(self.repairs_per_scan)
        self._rebalance(1)

    @operation
    def heartbeat_scan(self) -> None:
        """Force an immediate liveness scan + bounded repair pass
        (benchmarks and admins drive recovery to completion with this)."""
        self._last_scan_us = self.world.clock.now_us
        self._scan()

    # ------------------------------------------------------------ data path
    @operation
    def prepare_write_range(
        self, file_key: Hashable, first: int, count: int
    ) -> List[Tuple[int, int, List[str]]]:
        """Assign targets and a new version to each block of a striped
        write.  Returns ``(index, version, target names)`` per block.

        Existing blocks keep their current holders as targets (plus
        fresh live nodes to top back up to R when holders are missing —
        so an ordinary write heals under-replication for free); fresh
        blocks are placed round-robin by block index over the live
        datanodes.  Dead holders stay listed: the client's per-target
        failover decides what actually acks, and the quorum decides
        whether that was enough.

        Every version handed out is *burned* (``BlockInfo.prepared``,
        surviving truncate via the block map's per-file floor): a
        prepare whose commit never lands, or whose block is later
        dropped and re-created, can never cause the same version number
        to name two different byte strings — the invariant the
        datanodes' skip-but-ack idempotence relies on.
        """
        self._maybe_scan()
        live = self._live()
        live_names = [e.name for e in live]
        out: List[Tuple[int, int, List[str]]] = []
        for index in range(first, first + count):
            info = self.block_map.block(file_key, index, create=True)
            targets = list(info.holders)
            if len(targets) < self.replication:
                for k in range(len(live_names)):
                    candidate = live_names[(index + k) % len(live_names)]
                    if candidate not in targets:
                        targets.append(candidate)
                    if len(targets) >= self.replication:
                        break
            out.append((index, info.next_version(), targets))
        return out

    @operation
    def commit_write(
        self,
        file_key: Hashable,
        results: List[Tuple[int, int, List[str]]],
    ) -> None:
        """Record what a striped write actually achieved:
        ``(index, version, names that acked it)`` per block.  A version
        with at least one ack becomes the committed version; holders
        that did not ack keep their old (now stale) version and are
        repaired by the scan loop."""
        for index, version, acked in results:
            if not acked:
                continue  # nothing durable changed anywhere
            info = self.block_map.block(file_key, index, create=True)
            if version > info.version:
                info.version = version
            info.prepared = max(info.prepared, version)
            for name in acked:
                info.holders[name] = max(info.holders.get(name, 0), version)

    @operation
    def locate_range(
        self, file_key: Hashable, first: int, count: int
    ) -> List[Tuple[int, int, List[str]]]:
        """Where to read each block: ``(index, committed version,
        current holder names)``.  Holders are ordered deterministically
        (registration order, live first) — the client reads from the
        head and fails over down the list.  Version 0 / no holders means
        the block was never written: the client serves zeros."""
        self._maybe_scan()
        out: List[Tuple[int, int, List[str]]] = []
        for index in range(first, first + count):
            info = self.block_map.block(file_key, index)
            if info is None or info.version == 0:
                out.append((index, 0, []))
                continue
            current = info.current_holders()
            # Live holders first: failover order should try reachable
            # replicas before ones the last scan saw dead.
            entries = self._datanodes
            current.sort(key=lambda n: 0 if entries[n].alive else 1)
            out.append((index, info.version, current))
        return out

    @operation
    def truncate(self, file_key: Hashable, length: int) -> None:
        """Drop blocks wholly past the new EOF and delete their replicas
        on every reachable holder.  The boundary block keeps its stale
        tail bytes; readers clamp to the metadata length so they are
        never served."""
        first_dropped = (length + PAGE_SIZE - 1) // PAGE_SIZE
        dropped = self.block_map.drop_from(file_key, first_dropped)
        by_node: Dict[str, List[int]] = {}
        for index, info in dropped:
            for name in info.holders:
                by_node.setdefault(name, []).append(index)
        for name, indices in by_node.items():
            entry = self._datanodes[name]
            try:
                entry.service.delete_blocks(file_key, indices)
            except TransientNetworkError:
                # Unreachable holder: its orphaned replicas are dropped
                # from the map but their versions stay burned (the block
                # map's per-file floor), so a later write to those
                # indices is guaranteed a strictly higher version — the
                # orphan gets overwritten or ignored, never acked as
                # current.
                continue

    # ------------------------------------------------------------- repair
    def _repair_block(
        self, file_key: Hashable, index: int, info: BlockInfo
    ) -> bool:
        """One repair move for one block, if it needs one: copy the
        committed version from a live current holder onto a live node
        that lacks it (a fresh replica or a stale holder catching up).
        Returns True if a copy was made."""
        live = self._live()
        if not live:
            return False
        live_names = {e.name for e in live}
        current = [n for n in info.current_holders() if n in live_names]
        if not current:
            return False  # committed data unreachable until a holder recovers
        need = min(self.replication, len(live))
        if len(current) >= need:
            return False
        # Prefer catching up a stale holder (it already has placement);
        # otherwise pick the emptiest live non-holder.
        stale = [n for n in info.stale_holders() if n in live_names]
        if stale:
            target_name = stale[0]
        else:
            candidates = [e.name for e in live if e.name not in info.holders]
            if not candidates:
                return False
            candidates.sort(key=self.block_map.blocks_held_by)
            target_name = candidates[0]
        source = self._datanodes[current[0]]
        target = self._datanodes[target_name]
        try:
            stored = target.service.pull_block(file_key, index, source.service)
        except TransientNetworkError:
            return False
        info.holders[target_name] = stored
        self.world.counters.inc("shard.nn.re_replications")
        return True

    def _repair(self, max_moves: int) -> int:
        moves = 0
        for file_key, index, info in self.block_map.blocks():
            if moves >= max_moves:
                break
            # A block may need several copies; loop until satisfied or
            # out of budget.
            while moves < max_moves and self._repair_block(file_key, index, info):
                moves += 1
        return moves

    @operation
    def repair(self, max_moves: Optional[int] = None) -> int:
        """Run the repair state machine to completion (or ``max_moves``).
        Returns the number of block copies made."""
        if max_moves is None:
            max_moves = self.block_map.total_blocks() * self.replication
        budget = max_moves
        return self._repair(budget)

    @operation
    def under_replicated_count(self) -> int:
        """Blocks whose live, current replica count is below
        min(replication, live datanodes)."""
        live_names = {e.name for e in self._live()}
        need_cap = min(self.replication, len(live_names))
        count = 0
        for _, _, info in self.block_map.blocks():
            current = [n for n in info.current_holders() if n in live_names]
            if len(current) < need_cap:
                count += 1
        return count

    @operation
    def fully_replicated(self) -> bool:
        """True when every block has min(replication, live datanodes)
        live, current replicas — the bench's recovery acceptance check."""
        return self.under_replicated_count() == 0

    # ----------------------------------------------------------- rebalance
    def _rebalance(self, max_moves: int) -> int:
        """Move replicas from the fullest live datanode to the emptiest
        while their replica counts differ by at least ``rebalance_gap``.
        Fullness ties break toward the node that has absorbed the most
        network bytes (the hot one sheds load first)."""
        moves = 0
        network = self.world.network
        while moves < max_moves:
            live = self._live()
            if len(live) < 2:
                return moves
            loads = [
                (
                    self.block_map.blocks_held_by(e.name),
                    network.inbound_bytes(e.service.domain.node),
                    e,
                )
                for e in live
            ]
            source = max(loads, key=lambda t: (t[0], t[1]))
            target = min(loads, key=lambda t: (t[0], t[1]))
            if source[0] - target[0] < self.rebalance_gap:
                return moves
            if not self._move_one(source[2], target[2]):
                return moves
            moves += 1
        return moves

    def _move_one(self, source: DataNodeEntry, target: DataNodeEntry) -> bool:
        """Migrate one committed replica from ``source`` to ``target``:
        copy, record the new holder, then delete the source copy.  The
        copy is recorded the moment it lands — before the delete — so a
        source that dies mid-move leaves no unrecorded replica behind
        (an orphan at the committed version would feed the version-reuse
        hazard and leak storage).  The delete is best-effort: if it
        cannot reach the source, both copies stay recorded and the
        surplus is cleaned up by a later pass."""
        for file_key, index, info in self.block_map.blocks():
            if target.name in info.holders:
                continue
            if info.holders.get(source.name) != info.version or info.version == 0:
                continue
            try:
                stored = target.service.pull_block(file_key, index, source.service)
            except TransientNetworkError:
                return False
            info.holders[target.name] = stored
            try:
                source.service.delete_blocks(file_key, [index])
            except TransientNetworkError:
                # Source unreachable after the copy landed: keep it in
                # the holder set (its replica still exists) and let the
                # move count — the target now holds the block.
                pass
            else:
                del info.holders[source.name]
            self.world.counters.inc("shard.nn.rebalanced")
            return True
        return False

    @operation
    def rebalance(self, max_moves: int = 8) -> int:
        """Run the rebalancer explicitly; returns replicas moved."""
        return self._rebalance(max_moves)
