"""DataNode — one block-storage target of the sharded DFS.

A datanode owns a :class:`~repro.vm.page.PageStore` per sharded file and
serves fixed-size blocks (one VM page each, the paper's 4KB transfer
unit) over ordinary object invocation, so every block op pays the same
network/queueing costs as any other Spring message.  Block storage is
disk-backed in the model: a node crash makes the service unreachable
(every invocation raises :class:`~repro.errors.NodeCrashedError` at the
network) but the stored blocks survive into the next epoch — exactly the
failure mode the NameNode's stale-holder catch-up repairs.

Writes are *versioned and idempotent*: the NameNode assigns each
prepared write a monotonically increasing per-block version, and
``put_blocks`` applies a chunk only when its version is newer than the
stored one.  A duplicated or retried delivery of the same put therefore
acks without re-applying — the property the quorum protocol needs under
the fault plane's duplicate/retry machinery (see
``tests/test_concurrent_faults.py``).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.errors import FsError
from repro.ipc.invocation import operation
from repro.ipc.object import SpringObject
from repro.types import AccessRights
from repro.vm.page import PageStore


class DataNodeService(SpringObject):
    """Block service exported by one storage node."""

    def __init__(self, domain, name: str) -> None:
        super().__init__(domain)
        self.name = name
        self._stores: Dict[Hashable, PageStore] = {}
        #: (file_key, index) -> version currently stored.
        self._versions: Dict[Tuple[Hashable, int], int] = {}

    # ------------------------------------------------------------ internals
    def _store(self, file_key: Hashable) -> PageStore:
        store = self._stores.get(file_key)
        if store is None:
            store = self._stores[file_key] = PageStore()
        return store

    def stored_version(self, file_key: Hashable, index: int) -> int:
        """Test/introspection helper (not an operation): the version this
        node holds for a block, 0 if absent."""
        return self._versions.get((file_key, index), 0)

    def stored_blocks(self) -> int:
        return len(self._versions)

    # ----------------------------------------------------------- operations
    @operation
    def ping(self) -> Tuple[int, int]:
        """Liveness heartbeat: (node epoch, blocks stored).  The epoch
        lets the NameNode distinguish "still the incarnation I knew"
        from "crashed and came back" (Lustre-style epoch recovery)."""
        return self.domain.node.epoch, len(self._versions)

    @operation
    def used_bytes(self) -> int:
        return sum(store.resident_bytes() for store in self._stores.values())

    @operation
    def put_blocks(
        self, file_key: Hashable, items: List[Tuple[int, bytes, int]]
    ) -> List[Tuple[int, int]]:
        """Store a batch of ``(index, data, version)`` chunks for one
        file — one invocation per datanode per striped write, so the
        whole fan-out costs one message per target.

        Returns ``(index, stored_version)`` acks.  A chunk whose version
        is not newer than the stored one is *skipped but acked* with the
        stored version: the data it carries is already durable here (or
        superseded), which is what makes redelivery safe.
        """
        counters = self.world.counters
        store = self._store(file_key)
        acks: List[Tuple[int, int]] = []
        for index, data, version in items:
            key = (file_key, index)
            stored = self._versions.get(key, 0)
            if version <= stored:
                counters.inc("shard.dn.put_skipped")
                acks.append((index, stored))
                continue
            store.install(index, data, AccessRights.READ_WRITE)
            self._versions[key] = version
            counters.inc("shard.dn.put_applied")
            acks.append((index, version))
        return acks

    @operation
    def get_blocks(
        self, file_key: Hashable, indices: List[int]
    ) -> List[Tuple[int, memoryview, int]]:
        """Read a batch of blocks: ``(index, data, version)`` for every
        requested block this node holds (missing blocks are simply
        omitted — the client fails over to another replica).  Data is a
        read-only snapshot view; callers consume it synchronously."""
        self.world.counters.inc("shard.dn.get", len(indices))
        store = self._stores.get(file_key)
        if store is None:
            return []
        out: List[Tuple[int, memoryview, int]] = []
        for index in indices:
            page = store.get(index)
            if page is None:
                continue
            out.append(
                (index, page.snapshot(), self._versions[(file_key, index)])
            )
        return out

    @operation
    def delete_blocks(self, file_key: Hashable, indices: List[int]) -> None:
        """Drop blocks (truncate, rebalance-away, surplus cleanup)."""
        store = self._stores.get(file_key)
        for index in indices:
            self._versions.pop((file_key, index), None)
            if store is not None:
                store.drop(index)
        self.world.counters.inc("shard.dn.deleted", len(indices))

    @operation
    def pull_block(
        self, file_key: Hashable, index: int, source: "DataNodeService"
    ) -> int:
        """Server-to-server copy: fetch one block from ``source`` and
        store it here.  The NameNode drives this for re-replication,
        stale-holder catch-up, and rebalancing; the transfer is charged
        as this node invoking ``source`` over the network.  Returns the
        version now stored locally."""
        replies = source.get_blocks(file_key, [index])
        if not replies:
            raise FsError(
                f"pull_block: {source.name!r} does not hold block "
                f"{index} of {file_key!r}"
            )
        _, data, version = replies[0]
        key = (file_key, index)
        if version > self._versions.get(key, 0):
            self._store(file_key).install(index, data, AccessRights.READ_WRITE)
            self._versions[key] = version
        self.world.counters.inc("shard.dn.pulled")
        return self._versions[key]
