"""ShardedDfsLayer — the client-side striping layer of the sharded DFS.

Sits on the ChannelOps spine like every other layer, but instead of
forwarding page traffic to the layer below it *fans out* to the
datanodes: ``page_out``/``page_out_range`` become quorum writes striped
block-by-block across replicas, ``page_in``/``page_in_range`` become
located reads with per-replica failover.  The layer it stacks on is the
*metadata* file system (an SFS on the namenode's machine): the file's
namespace entry, attributes, and length live there; its data does not —
the Lustre MDS/OST split on the Spring stacking architecture.

Quorum contract (SNIPPETS Snippet 1's read/write-quorum idiom):

* a striped write must be acked by ``W`` of each block's ``R`` targets
  (``W`` clamped to the targets actually assigned, so a short-handed
  cluster degrades to write-all-available instead of failing);
* reads need ``read_quorum`` replies per block (default 1 — the
  NameNode only lists *current* holders, so one reply is already
  consistent; a higher read quorum cross-checks versions and takes the
  highest), degrading to the holders actually reachable — like the
  write side — so a read fails only when *no* current replica answers;
* misconfigurations (W > R, read quorum > R) are rejected at
  ``stack_on`` time with :class:`~repro.errors.StackingError`.

With one datanode and R = W = 1 the layer degenerates to the classic
single-server DFS data path: every block on the one node, no fan-out,
failover list of length one.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import FsError, StackingError, TransientNetworkError
from repro.types import PAGE_SIZE, AccessRights
from repro.vm.page import ZERO_PAGE, ZERO_VIEW

from repro.fs.base import (
    WHOLE_FILE,
    BaseLayer,
    ChannelOps,
    LayerFile,
    LayerFileState,
    StackConfig,
)
from repro.fs.file import File
from repro.fs.fs_interfaces import StackableFs

from repro.dfs.datanode import DataNodeService
from repro.dfs.namenode import NameNodeService


class QuorumWriteError(FsError):
    """A striped write could not reach its write quorum (too few live
    replicas acked).  Data acked by a minority is still recorded by the
    NameNode and repaired toward full replication, but the operation
    fails the availability contract."""


class QuorumReadError(FsError):
    """No reachable current replica could serve a required block."""


class ShardedFileState(LayerFileState):
    """Per-file state: the metadata under-file plus a client-side copy
    of the length (so every page-in clamp does not cost a metadata
    round trip).  ``file_key`` — the key blocks are stored under on the
    datanodes — is the metadata file's stable source key."""

    def __init__(self, layer: "ShardedDfsLayer", under_file: File) -> None:
        super().__init__(layer, under_file)
        self.file_key: Hashable = self.under_key
        self.length = under_file.get_length()


class ShardedOps(ChannelOps):
    """Dispatch table: holder bookkeeping above (the layer is still a
    coherent pager to its clients), sharded quorum I/O below instead of
    a down-channel."""

    def data_length(self, state) -> int:
        return state.length

    def page_in(self, source_key, pager_object, offset, size, access):
        state = self.state(source_key)
        requester = self.requester(source_key, pager_object)
        with self.region():
            recovered = state.holders.acquire(requester, offset, size, access)
            self.merge_recovered(state, recovered)
        return self.layer.shard_read(state, offset, size)

    def page_in_range(
        self, source_key, pager_object, offset, min_size, max_size, access
    ):
        state = self.state(source_key)
        requester = self.requester(source_key, pager_object)
        size = self.clamp_window(state, offset, min_size, max_size)
        if size == 0:
            return b""
        with self.region():
            recovered = state.holders.acquire(requester, offset, size, access)
            self.merge_recovered(state, recovered)
        return self.layer.shard_read(state, offset, size)

    def page_out(self, source_key, pager_object, offset, size, data, retain):
        state = self.state(source_key)
        with self.region():
            self.writeback_bookkeeping(
                state, self.requester(source_key, pager_object), offset, size, retain
            )
        # Page-granular flushes never grow the file: the VMM writes back
        # whole pages, so an unaligned file would get its length rounded
        # up to the page boundary (and serve trailing zeros as content).
        # Length grows only on the byte-precise file_write/set_length
        # paths — same contract as the base ChannelOps.page_out.
        self.layer.shard_write(state, offset, data)

    # page_out_range needs no override: the spine hands whole runs to
    # the page_out override of a transforming layer.


class ShardedDfsLayer(BaseLayer):
    """The striping/replication layer; see module docstring."""

    max_under = 1
    ops_class = ShardedOps
    state_class = ShardedFileState
    file_class = LayerFile  # bind serves channels from *this* layer

    def __init__(
        self,
        domain,
        namenode: NameNodeService,
        write_quorum: int = 2,
        read_quorum: int = 1,
    ) -> None:
        super().__init__(domain)
        self.namenode = namenode
        self.write_quorum = write_quorum
        self.read_quorum = read_quorum
        #: Client-side mount table: datanode name -> service handle (the
        #: NameNode speaks in names; the client resolves them here).
        self._datanodes: Dict[str, DataNodeService] = {}

    def fs_type(self) -> str:
        return "shardfs"

    def attach_datanode(self, name: str, service: DataNodeService) -> None:
        self._datanodes[name] = service

    # ------------------------------------------------------------- stacking
    def stack_on(
        self, underlying: StackableFs, config: Optional[StackConfig] = None
    ) -> None:
        replication = self.namenode.replication
        if self.write_quorum < 1:
            raise StackingError(
                f"shardfs: write quorum must be >= 1, got {self.write_quorum}"
            )
        if self.read_quorum < 1:
            raise StackingError(
                f"shardfs: read quorum must be >= 1, got {self.read_quorum}"
            )
        if self.write_quorum > replication:
            raise StackingError(
                f"shardfs: write quorum {self.write_quorum} exceeds "
                f"replication factor {replication}"
            )
        if self.read_quorum > replication:
            raise StackingError(
                f"shardfs: read quorum {self.read_quorum} exceeds "
                f"replication factor {replication}"
            )
        if not self._datanodes:
            raise StackingError("shardfs: no datanodes attached")
        super().stack_on(underlying, config)

    # ------------------------------------------------------ recovered pages
    def push_recovered(self, state, recovered: Dict[int, bytes]) -> None:
        """Dirty pages recalled from upstream holders go to the shards
        (the base class would push them down the metadata channel)."""
        if not recovered:
            return
        run: list = []
        for index, data in sorted(recovered.items()):
            if run and index != run[-1][0] + 1:
                self._push_shard_run(state, run)
            run.append((index, data))
        self._push_shard_run(state, run)

    def _push_shard_run(self, state, run: list) -> None:
        if not run:
            return
        data = b"".join(bytes(chunk) for _, chunk in run)
        offset = run[0][0] * PAGE_SIZE
        # Like page_out: recalled dirty pages are whole pages and must
        # not grow an unaligned file's length.
        self.shard_write(state, offset, data)
        run.clear()

    def note_written(self, state, end: int) -> None:
        """A byte-precise write reached ``end``; grow the (metadata)
        length if it extended the file.  Only ``file_write`` calls this
        — page-granular flush paths never change the length."""
        if end > state.length:
            state.length = end
            state.under_file.set_length(end)

    # ------------------------------------------------------------ file hooks
    def file_length(self, state) -> int:
        return state.length

    def file_read(self, state, offset: int, size: int) -> bytes:
        self.world.charge.fs_read_cpu()
        with self.fanout_region():
            recovered = state.holders.collect_latest(offset, size)
        self.push_recovered(state, recovered)
        length = state.length
        if offset >= length or size <= 0:
            return b""
        return bytes(self.shard_read(state, offset, min(size, length - offset)))

    def file_write(self, state, offset: int, data: bytes) -> int:
        self.world.charge.fs_write_cpu()
        with self.fanout_region():
            recovered = state.holders.acquire(
                None, offset, len(data), AccessRights.READ_WRITE
            )
        self.push_recovered(state, recovered)
        self.shard_write(state, offset, data)
        self.note_written(state, offset + len(data))
        return len(data)

    def file_set_length(self, state, length: int) -> None:
        with self.fanout_region():
            state.holders.invalidate(length, WHOLE_FILE)
        shrunk_into_block = length < state.length and length % PAGE_SIZE != 0
        state.length = length
        state.under_file.set_length(length)
        self.namenode.truncate(state.file_key, length)
        if shrunk_into_block:
            # Physically zero the boundary block's tail so the stale
            # bytes cannot resurface if the file is later re-extended.
            # (Bypasses note_written: this write must not grow length.)
            pad = PAGE_SIZE - length % PAGE_SIZE
            self.shard_write(state, length, bytes(pad))

    def file_sync(self, state) -> None:
        with self.fanout_region():
            recovered = state.holders.collect_latest(0, WHOLE_FILE)
        self.push_recovered(state, recovered)
        state.under_file.sync()

    # --------------------------------------------------------- sharded read
    def shard_read(self, state, offset: int, size: int):
        """Read ``[offset, offset+size)`` from the shards.  Returns a
        bytes-like (zero-copy view when one cached block serves the
        whole request)."""
        if size <= 0:
            return b""
        first = offset // PAGE_SIZE
        last = (offset + size - 1) // PAGE_SIZE
        blocks = self._fetch_blocks(state, first, last - first + 1)
        lead = offset - first * PAGE_SIZE
        if first == last:
            return blocks[first][lead : lead + size]
        out = bytearray(size)
        pos = 0
        for index in range(first, last + 1):
            chunk = blocks[index]
            start = lead if index == first else 0
            take = min(PAGE_SIZE - start, size - pos)
            out[pos : pos + take] = chunk[start : start + take]
            pos += take
        return bytes(out)

    def _fetch_blocks(self, state, first: int, count: int) -> Dict[int, object]:
        """Fetch ``count`` whole blocks starting at ``first``: locate,
        batch one ``get_blocks`` per datanode, fail over down each
        block's holder list, and (for read quorums > 1) pick the highest
        version among the quorum's replies.

        The read quorum degrades to the holders actually reachable —
        mirroring the write-side clamp — so a cross-checking read
        (``read_quorum > 1``) still succeeds during a holder outage as
        long as one current replica answers (``shard.read_degraded``).
        Only a block with *no* reachable current holder fails the read."""
        counters = self.world.counters
        locations = self.namenode.locate_range(state.file_key, first, count)
        out: Dict[int, object] = {}
        #: index -> (required replies, candidate holder list, next
        #: candidate position, replies so far as (version, data)).
        pending: Dict[int, list] = {}
        for index, version, names in locations:
            if version == 0 or not names:
                out[index] = ZERO_VIEW  # never written: serve zeros
                continue
            pending[index] = [min(self.read_quorum, len(names)), names, 0, []]
        dead: set = set()
        while pending:
            # One batched round: each unsatisfied block asks its next
            # untried holder; requests are grouped per datanode.
            per_node: Dict[str, List[int]] = {}
            for index in list(pending):
                entry = pending[index]
                _, names, position, replies = entry
                while position < len(names) and names[position] in dead:
                    position += 1
                if position >= len(names):
                    if replies:
                        # Every untried holder is unreachable: degrade
                        # the quorum to the replies in hand (the write
                        # side clamps W to available targets the same
                        # way) and serve the highest version seen.
                        replies.sort(key=lambda pair: pair[0])
                        out[index] = replies[-1][1]
                        counters.inc("shard.read_degraded")
                        del pending[index]
                        continue
                    counters.inc("shard.read_unavailable")
                    raise QuorumReadError(
                        f"block {index} of {state.file_key!r}: no reachable "
                        f"current replica (holders {names})"
                    )
                entry[2] = position + 1
                per_node.setdefault(names[position], []).append(index)
            with self.fanout_region():
                for name, indices in per_node.items():
                    try:
                        replies = self._datanodes[name].get_blocks(
                            state.file_key, indices
                        )
                    except TransientNetworkError:
                        dead.add(name)
                        counters.inc("shard.read_failover")
                        continue
                    for index, data, version in replies:
                        pending[index][3].append((version, data))
            for index in list(pending):
                needed, _, _, replies = pending[index]
                if len(replies) >= needed:
                    replies.sort(key=lambda pair: pair[0])
                    out[index] = replies[-1][1]
                    del pending[index]
        counters.inc("shard.reads")
        return out

    def _block_base(self, state, index: int) -> bytearray:
        """Current contents of one block, for read-modify-write of a
        partial-block write.  Bytes past the file length read as zero,
        so truncated tails never resurface."""
        start = index * PAGE_SIZE
        length = state.length
        if start >= length:
            return bytearray(PAGE_SIZE)
        base = bytearray(self._fetch_blocks(state, index, 1)[index])
        if len(base) < PAGE_SIZE:
            base.extend(ZERO_PAGE[len(base) :])
        valid = length - start
        if valid < PAGE_SIZE:
            base[valid:] = ZERO_PAGE[valid:]
        return base

    # -------------------------------------------------------- sharded write
    def shard_write(self, state, offset: int, data) -> None:
        """Quorum write of ``data`` at ``offset``: split into blocks
        (read-modify-write at unaligned edges), get placement + versions
        from the NameNode, push one batched ``put_blocks`` per target
        datanode with per-target failover, then commit the acks.  Raises
        :class:`QuorumWriteError` if any block got fewer than
        min(write_quorum, targets) acks — after committing, so whatever
        *was* durably written is tracked and repairable."""
        size = len(data)
        if size == 0:
            return
        counters = self.world.counters
        first = offset // PAGE_SIZE
        last = (offset + size - 1) // PAGE_SIZE
        lead = offset - first * PAGE_SIZE
        chunks: Dict[int, bytes] = {}
        view = memoryview(data) if not isinstance(data, memoryview) else data
        pos = 0
        for index in range(first, last + 1):
            start = lead if index == first else 0
            take = min(PAGE_SIZE - start, size - pos)
            if start == 0 and take == PAGE_SIZE:
                chunks[index] = bytes(view[pos : pos + take])
            else:
                base = self._block_base(state, index)
                base[start : start + take] = view[pos : pos + take]
                chunks[index] = bytes(base)
            pos += take

        plan = self.namenode.prepare_write_range(
            state.file_key, first, last - first + 1
        )
        targets: Dict[int, Tuple[int, List[str]]] = {}
        per_node: Dict[str, List[Tuple[int, bytes, int]]] = {}
        for index, version, names in plan:
            targets[index] = (version, names)
            for name in names:
                per_node.setdefault(name, []).append(
                    (index, chunks[index], version)
                )
        acked: Dict[int, List[str]] = {index: [] for index in chunks}
        with self.fanout_region():
            for name, items in per_node.items():
                try:
                    acks = self._datanodes[name].put_blocks(state.file_key, items)
                except TransientNetworkError:
                    counters.inc("shard.write_failover")
                    continue
                for index, stored in acks:
                    if stored == targets[index][0]:
                        acked[index].append(name)
                    elif stored > targets[index][0]:
                        # The replica holds a version the NameNode never
                        # told us about (an orphan from a truncate whose
                        # delete could not reach it, or a concurrent
                        # writer).  Its bytes are not ours: counting it
                        # toward the quorum would mark stale data
                        # current, so treat it as a conflict instead.
                        counters.inc("shard.write_conflicts")
        self.namenode.commit_write(
            state.file_key,
            [(index, targets[index][0], acked[index]) for index in chunks],
        )
        for index in chunks:
            version, names = targets[index]
            needed = max(1, min(self.write_quorum, len(names)))
            if len(acked[index]) < needed:
                counters.inc("shard.quorum_failures")
                raise QuorumWriteError(
                    f"block {index} of {state.file_key!r}: "
                    f"{len(acked[index])} of {len(names)} replicas acked "
                    f"version {version}, quorum is {needed}"
                )
        counters.inc("shard.quorum_writes")
