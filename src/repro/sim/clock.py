"""Deterministic virtual clock.

All latencies in the reproduction — CPU work, cross-domain calls, network
transfers, disk I/O — are charged to a :class:`SimClock` instead of being
measured in wall time.  This replaces the paper's SPARCstation 10 testbed
(see DESIGN.md section 2): the phenomena the paper reports are *relative*
costs of invocation paths, which a charged clock reproduces exactly and
deterministically.

Times are in microseconds, the unit the paper's Table 3 uses.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple


class SimClock:
    """A monotonically advancing virtual clock with charge accounting.

    Besides the current time, the clock keeps per-category totals (e.g.
    how much virtual time went to ``disk`` vs ``cross_domain``), which the
    benchmark harness uses to attribute costs the way the paper's
    discussion does ("the disk overhead is much higher than the cross
    domain call overhead").
    """

    def __init__(self) -> None:
        self._now_us = 0.0
        self._by_category: Dict[str, float] = {}
        self._listeners: List[Callable[[str, float], None]] = []

    @property
    def now_us(self) -> float:
        """Current virtual time in microseconds."""
        return self._now_us

    def advance(self, delta_us: float, category: str = "cpu") -> None:
        """Advance virtual time by ``delta_us``, attributed to ``category``.

        Negative charges are a programming error and raise ``ValueError``.
        """
        if delta_us < 0:
            raise ValueError(f"negative time charge: {delta_us}")
        self._now_us += delta_us
        self._by_category[category] = self._by_category.get(category, 0.0) + delta_us
        for listener in self._listeners:
            listener(category, delta_us)

    def charged(self, category: str) -> float:
        """Total virtual time charged to ``category`` since construction."""
        return self._by_category.get(category, 0.0)

    def categories(self) -> Dict[str, float]:
        """Snapshot of all per-category totals."""
        return dict(self._by_category)

    def add_listener(self, fn: Callable[[str, float], None]) -> None:
        """Register a callback invoked as ``fn(category, delta_us)`` on
        every charge.  Used by the measurement harness."""
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[str, float], None]) -> None:
        self._listeners.remove(fn)


class StopWatch:
    """Measures elapsed virtual time over a region, with a category
    breakdown.  The bench harness wraps each measured operation in one.

    >>> clock = SimClock()
    >>> watch = StopWatch(clock)
    >>> with watch:
    ...     clock.advance(10, "cpu")
    ...     clock.advance(5, "disk")
    >>> watch.elapsed_us
    15.0
    >>> watch.breakdown["disk"]
    5.0
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start: Optional[float] = None
        self._start_categories: Dict[str, float] = {}
        self.elapsed_us = 0.0
        self.breakdown: Dict[str, float] = {}

    def __enter__(self) -> "StopWatch":
        self._start = self._clock.now_us
        self._start_categories = self._clock.categories()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed_us = self._clock.now_us - self._start
        end = self._clock.categories()
        self.breakdown = {
            cat: total - self._start_categories.get(cat, 0.0)
            for cat, total in end.items()
            if total - self._start_categories.get(cat, 0.0) > 0.0
        }
