"""Deterministic virtual clock.

All latencies in the reproduction — CPU work, cross-domain calls, network
transfers, disk I/O — are charged to a :class:`SimClock` instead of being
measured in wall time.  This replaces the paper's SPARCstation 10 testbed
(see DESIGN.md section 2): the phenomena the paper reports are *relative*
costs of invocation paths, which a charged clock reproduces exactly and
deterministically.

Times are in microseconds, the unit the paper's Table 3 uses.

Two execution modes share this clock:

* **Sequential** (the calibration mode): one operation runs to
  completion before the next starts, ``advance`` moves ``now_us``
  forward, and elapsed time equals charged time.  Everything the paper's
  tables measure runs this way, byte-identically to earlier revisions.

* **Concurrent** (the load-sweep mode): the discrete-event scheduler in
  :mod:`repro.sim.scheduler` executes each simulated client's operation
  atomically inside a clock *frame*.  ``begin_frame`` pins ``now_us`` to
  the task's virtual start time; charges made while the frame is open
  advance ``now_us`` locally (so cost models, fault planes, and service
  queues see a consistent in-operation time); ``end_frame`` returns the
  frame's elapsed virtual time and restores ``now_us`` to the
  scheduler's global event time.  Category totals accumulate across all
  frames, so under concurrency they read as *busy time summed over
  clients* — they can legitimately exceed the makespan.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class SimClock:
    """A monotonically advancing virtual clock with charge accounting.

    Besides the current time, the clock keeps per-category totals (e.g.
    how much virtual time went to ``disk`` vs ``cross_domain``), which the
    benchmark harness uses to attribute costs the way the paper's
    discussion does ("the disk overhead is much higher than the cross
    domain call overhead").
    """

    __slots__ = ("_now_us", "_by_category", "_charges", "_listeners",
                 "_frame_start", "_frame_saved")

    def __init__(self) -> None:
        self._now_us = 0.0
        self._by_category: Dict[str, float] = {}
        #: Per-category charge *counts* — how many times each category
        #: was explicitly charged (including zero-delta charges), which
        #: is what lets :class:`StopWatch` distinguish "charged 0.0"
        #: from "never charged".
        self._charges: Dict[str, int] = {}
        self._listeners: List[Callable[[str, float], None]] = []
        #: Open speculative frame (see module docstring); None outside
        #: the discrete-event scheduler.
        self._frame_start: Optional[float] = None
        self._frame_saved = 0.0

    @property
    def now_us(self) -> float:
        """Current virtual time in microseconds.  Inside an open frame
        this is the frame-local time (start + charges so far)."""
        return self._now_us

    def advance(self, delta_us: float, category: str = "cpu") -> None:
        """Advance virtual time by ``delta_us``, attributed to ``category``.

        Negative charges are a programming error and raise ``ValueError``.

        This is the hottest function in the simulator (a toy macro
        workload charges it ~2k times; a load sweep, millions), so the
        body avoids per-call allocation and — when no listeners are
        registered, the overwhelmingly common case — skips the listener
        dispatch entirely.  Charge sites should pass interned category
        strings (see :mod:`repro.sim.costs`) so the dict updates hash
        pre-interned keys.
        """
        if delta_us < 0:
            raise ValueError(f"negative time charge: {delta_us}")
        self._now_us += delta_us
        try:
            self._by_category[category] += delta_us
        except KeyError:
            self._by_category[category] = delta_us
        try:
            self._charges[category] += 1
        except KeyError:
            self._charges[category] = 1
        if self._listeners:
            for listener in self._listeners:
                listener(category, delta_us)

    def charged(self, category: str) -> float:
        """Total virtual time charged to ``category`` since construction."""
        return self._by_category.get(category, 0.0)

    def charge_count(self, category: str) -> int:
        """How many times ``category`` was explicitly charged (zero-delta
        charges count)."""
        return self._charges.get(category, 0)

    def categories(self) -> Dict[str, float]:
        """Snapshot of all per-category totals."""
        return dict(self._by_category)

    def charge_counts(self) -> Dict[str, int]:
        """Snapshot of all per-category charge counts."""
        return dict(self._charges)

    def add_listener(self, fn: Callable[[str, float], None]) -> None:
        """Register a callback invoked as ``fn(category, delta_us)`` on
        every charge.  Used by the measurement harness."""
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[str, float], None]) -> None:
        self._listeners.remove(fn)

    # --- scheduler integration (see repro.sim.scheduler) -------------------
    def seek(self, to_us: float) -> None:
        """Jump global time forward to ``to_us`` without charging any
        category — the discrete-event scheduler uses this to move to the
        next event's timestamp.  Rejects moving backwards and may not be
        called while a frame is open."""
        if self._frame_start is not None:
            raise RuntimeError("seek inside an open frame")
        if to_us < self._now_us:
            raise ValueError(
                f"seek backwards: {to_us} < {self._now_us}"
            )
        self._now_us = to_us

    def begin_frame(self, at_us: float) -> None:
        """Open a speculative task frame at virtual time ``at_us``.

        While the frame is open, ``now_us`` runs from ``at_us`` and
        ``advance`` moves it locally; the pre-frame global time is saved
        and restored by :meth:`end_frame`.  Frames do not nest — the
        scheduler executes exactly one task operation at a time.
        """
        if self._frame_start is not None:
            raise RuntimeError("frame already open")
        self._frame_start = at_us
        self._frame_saved = self._now_us
        self._now_us = at_us

    def end_frame(self) -> float:
        """Close the open frame: restore global time and return the
        frame's elapsed virtual time (the operation's service demand)."""
        if self._frame_start is None:
            raise RuntimeError("no open frame")
        elapsed = self._now_us - self._frame_start
        self._now_us = self._frame_saved
        self._frame_start = None
        return elapsed

    @property
    def in_frame(self) -> bool:
        return self._frame_start is not None


class StopWatch:
    """Measures elapsed virtual time over a region, with a category
    breakdown.  The bench harness wraps each measured operation in one.

    A category appears in ``breakdown`` iff it was *explicitly charged*
    inside the region — including charges whose delta is exactly 0.0
    (e.g. a zero-byte memcpy), which earlier revisions silently dropped.
    Categories never charged in the window are still omitted.

    >>> clock = SimClock()
    >>> watch = StopWatch(clock)
    >>> with watch:
    ...     clock.advance(10, "cpu")
    ...     clock.advance(5, "disk")
    >>> watch.elapsed_us
    15.0
    >>> watch.breakdown["disk"]
    5.0
    """

    __slots__ = ("_clock", "_start", "_start_categories", "_start_counts",
                 "elapsed_us", "breakdown")

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start: Optional[float] = None
        self._start_categories: Dict[str, float] = {}
        self._start_counts: Dict[str, int] = {}
        self.elapsed_us = 0.0
        self.breakdown: Dict[str, float] = {}

    def __enter__(self) -> "StopWatch":
        self._start = self._clock.now_us
        self._start_categories = self._clock.categories()
        self._start_counts = self._clock.charge_counts()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed_us = self._clock.now_us - self._start
        end = self._clock.categories()
        start_counts = self._start_counts
        self.breakdown = {
            cat: end.get(cat, 0.0) - self._start_categories.get(cat, 0.0)
            for cat, count in self._clock.charge_counts().items()
            if count - start_counts.get(cat, 0) > 0
        }
