"""Virtual-time simulation substrate: clock and calibrated cost model."""

from repro.sim.clock import SimClock, StopWatch
from repro.sim.costs import Charger, CostModel

__all__ = ["SimClock", "StopWatch", "Charger", "CostModel"]
