"""Virtual-time simulation substrate: clock, calibrated cost model,
discrete-event scheduler, and the fault plane."""

from repro.sim.clock import SimClock, StopWatch
from repro.sim.costs import Charger, CostModel
from repro.sim.scheduler import Scheduler, ServiceQueue, Task, request, think

__all__ = [
    "SimClock",
    "StopWatch",
    "Charger",
    "CostModel",
    "Scheduler",
    "ServiceQueue",
    "Task",
    "request",
    "think",
]
