"""Optional event tracing.

A :class:`Tracer` records a bounded timeline of system events —
invocations with their chosen path, network messages, device transfers —
for debugging stacks and for teaching: the rendered trace of, say, a
remote read through DFS/COMPFS/SFS shows the exact sequence the paper's
sec. 4.5 walkthrough narrates.

Disabled by default (``world.tracer is None``); enable with
``world.enable_tracing()``.  The hooks cost one attribute check when
disabled.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, Dict, Iterator, List, Optional


@dataclasses.dataclass
class TraceEvent:
    """One recorded event."""

    seq: int
    time_us: float
    category: str
    name: str
    detail: Dict[str, object]

    def render(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time_us:12.1f}us] {self.category:8} {self.name} {detail}"


class Tracer:
    """A bounded ring buffer of trace events."""

    def __init__(self, capacity: int = 10_000) -> None:
        self.capacity = capacity
        self._events: Deque[TraceEvent] = collections.deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0

    def record(
        self, time_us: float, category: str, name: str, **detail: object
    ) -> None:
        """Append one event to the ring.

        ``seq`` is a global event id: it advances for *every* record,
        including ones whose append immediately evicts an older event,
        so gaps never appear and renderings stay ordered across drops.
        ``dropped`` counts evictions — the increment happens before the
        deque evicts, when the buffer is already full — so after any
        sequence of records (with no ``clear``) the invariants hold::

            len(tracer) == min(total_records, capacity)
            dropped     == max(0, total_records - capacity)
            events()[0].seq == dropped + 1   # oldest retained event
        """
        self._seq += 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(self._seq, time_us, category, name, detail))

    # --- querying ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def events(self, category: Optional[str] = None) -> List[TraceEvent]:
        if category is None:
            return list(self._events)
        return [e for e in self._events if e.category == category]

    def names(self, category: Optional[str] = None) -> List[str]:
        return [e.name for e in self.events(category)]

    def render(self, last: int = 40) -> str:
        """Human-readable tail of the timeline."""
        tail = list(self._events)[-last:]
        lines = [event.render() for event in tail]
        if self.dropped:
            lines.insert(0, f"... ({self.dropped} earlier events dropped)")
        return "\n".join(lines)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
