"""Deterministic, clock-driven fault injection.

The paper's stacks span domains and machines — DFS coherency channels,
remote pager/cache channels, cross-node naming — and a production system
must survive the failures those links and machines suffer.  This module
is the *fault plane*: a scripted schedule of failures applied against
the virtual clock, so any test or benchmark can say "node B crashes at
t=500us and heals at t=2000us" and get the exact same run every time.

Two halves:

* :class:`FaultPlan` — the pure schedule.  Built by tests/benchmarks
  with :meth:`~FaultPlan.crash`, :meth:`~FaultPlan.partition`,
  :meth:`~FaultPlan.drop`, :meth:`~FaultPlan.delay`,
  :meth:`~FaultPlan.duplicate` and the probabilistic
  :meth:`~FaultPlan.drop_probability` (seeded RNG — the same seed
  always drops the same messages).  A plan is inert data; it touches
  nothing until installed.

* :class:`FaultPlane` — the runtime, installed with
  :meth:`repro.world.World.install_fault_plan`.  The network polls it
  at every send: events whose time has arrived are applied in schedule
  order (crash/recover via :meth:`repro.ipc.node.Node.crash` /
  :meth:`~repro.ipc.node.Node.recover`, partitions via the network's
  own partition set), then per-link effects (drop / delay / duplicate)
  are consulted for the message at hand.

Determinism contract: events are applied only inside ``poll`` — which
runs at message-send time — and ``random.Random(seed)`` drives every
probabilistic choice, so a run is a pure function of (plan, workload).
A world with no plane installed behaves byte-for-byte as before; all
fault machinery is opt-in.

Telemetry: every applied event counts under ``faults.*``
(``faults.crashes``, ``faults.recoveries``, ``faults.partitions``,
``faults.heals``, ``faults.dropped``, ``faults.delayed``,
``faults.duplicated``) so a report can render what the plan actually
did to the run.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Tuple

from repro.errors import MessageDroppedError


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault, applied when the virtual clock reaches
    ``time_us``.  ``kind`` is one of ``crash``, ``recover``,
    ``partition``, ``heal``, ``drop``, ``delay``, ``duplicate``,
    ``drop_probability``; ``a``/``b`` name nodes (``b`` unused for
    node-scoped kinds)."""

    time_us: float
    kind: str
    a: str
    b: str = ""
    count: int = 1
    delay_us: float = 0.0
    probability: float = 0.0
    until_us: Optional[float] = None


class FaultPlan:
    """A deterministic schedule of failures (see module docstring).

    All times are virtual microseconds.  Convenience pairings —
    ``crash(..., recover_at_us=...)`` and ``partition(...,
    heal_at_us=...)`` — schedule the healing event too, which keeps
    "eventually heals" schedules (the convergence property tests) easy
    to express.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.events: List[FaultEvent] = []

    def _add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    # --- machine faults ----------------------------------------------------
    def crash(
        self, node: str, at_us: float, recover_at_us: Optional[float] = None
    ) -> "FaultPlan":
        """Crash ``node`` at ``at_us``: it loses its volatile server
        state (registered crash listeners fire) and every message to or
        from it raises :class:`~repro.errors.NodeCrashedError` until it
        recovers (epoch bump)."""
        self._add(FaultEvent(at_us, "crash", node))
        if recover_at_us is not None:
            self.recover(node, recover_at_us)
        return self

    def recover(self, node: str, at_us: float) -> "FaultPlan":
        return self._add(FaultEvent(at_us, "recover", node))

    # --- link faults -------------------------------------------------------
    def partition(
        self, a: str, b: str, at_us: float, heal_at_us: Optional[float] = None
    ) -> "FaultPlan":
        """Cut the ``a``–``b`` link (both directions) at ``at_us``."""
        self._add(FaultEvent(at_us, "partition", a, b))
        if heal_at_us is not None:
            self.heal(a, b, heal_at_us)
        return self

    def heal(self, a: str, b: str, at_us: float) -> "FaultPlan":
        return self._add(FaultEvent(at_us, "heal", a, b))

    def drop(self, src: str, dst: str, at_us: float, count: int = 1) -> "FaultPlan":
        """Drop the next ``count`` messages sent ``src`` -> ``dst`` at or
        after ``at_us``."""
        return self._add(FaultEvent(at_us, "drop", src, dst, count=count))

    def delay(
        self, src: str, dst: str, at_us: float, delay_us: float, count: int = 1
    ) -> "FaultPlan":
        """Add ``delay_us`` of extra latency to the next ``count``
        messages sent ``src`` -> ``dst`` at or after ``at_us``."""
        return self._add(
            FaultEvent(at_us, "delay", src, dst, count=count, delay_us=delay_us)
        )

    def duplicate(
        self, src: str, dst: str, at_us: float, count: int = 1
    ) -> "FaultPlan":
        """Duplicate the next ``count`` messages sent ``src`` -> ``dst``
        at or after ``at_us`` (the copy is charged like a real send)."""
        return self._add(FaultEvent(at_us, "duplicate", src, dst, count=count))

    def drop_probability(
        self,
        src: str,
        dst: str,
        probability: float,
        at_us: float = 0.0,
        until_us: Optional[float] = None,
    ) -> "FaultPlan":
        """Probabilistic mode: each ``src`` -> ``dst`` message in
        ``[at_us, until_us)`` is dropped with ``probability``, decided
        by the plan's seeded RNG."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        return self._add(
            FaultEvent(
                at_us,
                "drop_probability",
                src,
                dst,
                probability=probability,
                until_us=until_us,
            )
        )

    def sorted_events(self) -> List[FaultEvent]:
        """Events in application order: by time, ties by insertion."""
        return [
            event
            for _, event in sorted(
                enumerate(self.events),
                key=lambda pair: (pair[1].time_us, pair[0]),
            )
        ]


@dataclasses.dataclass
class _LinkEffects:
    """Pending per-link (src, dst) effects installed by applied events."""

    drops: int = 0
    delays: List[Tuple[float, int]] = dataclasses.field(default_factory=list)
    duplicates: int = 0
    #: Active probabilistic drop windows: (probability, until_us or None).
    drop_windows: List[Tuple[float, Optional[float]]] = dataclasses.field(
        default_factory=list
    )


class FaultPlane:
    """The installed fault plane: applies a :class:`FaultPlan` against a
    world's clock, network, and nodes.  Created by
    :meth:`repro.world.World.install_fault_plan`."""

    def __init__(self, world, plan: FaultPlan) -> None:
        self.world = world
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self._pending: List[FaultEvent] = plan.sorted_events()
        self._next = 0
        self._links: Dict[Tuple[str, str], _LinkEffects] = {}
        #: Applied (kind, time_us, a, b) tuples, for tests and reports.
        self.applied: List[Tuple[str, float, str, str]] = []

    # --- event application -------------------------------------------------
    def pending_events(self) -> int:
        return len(self._pending) - self._next

    def _link(self, src: str, dst: str) -> _LinkEffects:
        effects = self._links.get((src, dst))
        if effects is None:
            effects = _LinkEffects()
            self._links[(src, dst)] = effects
        return effects

    def poll(self) -> None:
        """Apply every scheduled event whose time has arrived.  Called
        by the network on each send; may be called any time."""
        now = self.world.clock.now_us
        while self._next < len(self._pending):
            event = self._pending[self._next]
            if event.time_us > now:
                break
            self._next += 1
            self._apply(event)

    def _apply(self, event: FaultEvent) -> None:
        world = self.world
        counters = world.counters
        self.applied.append((event.kind, event.time_us, event.a, event.b))
        world.trace(
            "fault", event.kind, at=event.time_us, a=event.a, b=event.b
        )
        if event.kind == "crash":
            world.nodes[event.a].crash()
            counters.inc("faults.crashes")
        elif event.kind == "recover":
            world.nodes[event.a].recover()
            counters.inc("faults.recoveries")
        elif event.kind == "partition":
            world.network.partition(world.nodes[event.a], world.nodes[event.b])
            counters.inc("faults.partitions")
        elif event.kind == "heal":
            world.network.heal(world.nodes[event.a], world.nodes[event.b])
            counters.inc("faults.heals")
        elif event.kind == "drop":
            self._link(event.a, event.b).drops += event.count
        elif event.kind == "delay":
            self._link(event.a, event.b).delays.append(
                (event.delay_us, event.count)
            )
        elif event.kind == "duplicate":
            self._link(event.a, event.b).duplicates += event.count
        elif event.kind == "drop_probability":
            self._link(event.a, event.b).drop_windows.append(
                (event.probability, event.until_us)
            )
        else:  # pragma: no cover - plan constructors gate the kinds
            raise ValueError(f"unknown fault kind {event.kind!r}")

    # --- per-message effects -----------------------------------------------
    def on_send(self, src, dst, nbytes: int) -> bool:
        """Apply link effects to one ``src`` -> ``dst`` message about to
        be sent.  Returns True if the message should be *duplicated*
        (the network charges a second send); raises
        :class:`~repro.errors.MessageDroppedError` if it is dropped.
        Delays advance the virtual clock before the send."""
        effects = self._links.get((src.name, dst.name))
        if effects is None:
            return False
        world = self.world
        if effects.drops > 0:
            effects.drops -= 1
            world.counters.inc("faults.dropped")
            raise MessageDroppedError(
                f"fault plane dropped message {src.name!r} -> {dst.name!r}"
            )
        now = world.clock.now_us
        for probability, until_us in list(effects.drop_windows):
            if until_us is not None and now >= until_us:
                effects.drop_windows.remove((probability, until_us))
                continue
            if self.rng.random() < probability:
                world.counters.inc("faults.dropped")
                raise MessageDroppedError(
                    f"fault plane dropped message {src.name!r} -> "
                    f"{dst.name!r} (p={probability})"
                )
        if effects.delays:
            delay_us, count = effects.delays[0]
            world.clock.advance(delay_us, "network_fault_delay")
            world.counters.inc("faults.delayed")
            if count <= 1:
                effects.delays.pop(0)
            else:
                effects.delays[0] = (delay_us, count - 1)
        if effects.duplicates > 0:
            effects.duplicates -= 1
            world.counters.inc("faults.duplicated")
            return True
        return False
