"""Calibrated cost model.

Every latency parameter of the simulated testbed lives here so the
calibration is auditable in one place.  The constants are chosen so that
the *mechanisms* of the paper (invocation-path selection, per-layer open
state, disk-bound uncached I/O) produce Table 2 / Table 3's reported
shape; see DESIGN.md section 2 and EXPERIMENTS.md for paper-vs-measured.

Calibration anchors from the paper:

* Table 3 (SunOS 4.1.3): open 127 us, 4KB read 82 us, 4KB write 86 us,
  fstat 28 us.
* Table 2 (Spring SFS): 4KB cached write 0.16 ms; uncached write 13.7 ms
  (a 424 MB 4400 RPM disk); open overhead +39 % stacked-one-domain,
  +101 % stacked-two-domains; no measurable overhead on cached read /
  write / stat.
* "Spring is from 2 to 7 times slower than SunOS."
"""

from __future__ import annotations

import dataclasses
import sys

from repro.sim.clock import SimClock
from repro.types import KB


@dataclasses.dataclass
class CostModel:
    """Latency parameters of the simulated node, in microseconds.

    The defaults model the paper's 40 MHz SPARCstation 10 with a 4400 RPM
    disk.  Benchmarks may construct variants (e.g. a faster disk for
    sensitivity ablations) — the model is plain data.
    """

    # --- invocation paths (paper sec. 6.4: "Our object invocation stub
    # technology automatically chooses the optimal path") -----------------
    local_call_us: float = 2.0          # two local procedure calls
    cross_domain_call_us: float = 107.0  # round-trip cross-domain call
    syscall_us: float = 25.0            # kernel trap (monolithic baseline)

    # --- network (for DFS / remote layers) -------------------------------
    network_rtt_us: float = 2000.0
    network_per_kb_us: float = 150.0

    # --- disk (424 MB, 4400 RPM: full rotation 13636 us) -----------------
    disk_seek_us: float = 6800.0
    disk_rotation_us: float = 13636.4   # one full rotation; avg latency = /2
    disk_xfer_per_kb_us: float = 20.0

    # --- CPU work inside file system layers ------------------------------
    memcpy_per_kb_us: float = 7.0       # copying data across an interface
    fs_resolve_us: float = 150.0        # directory lookup, i-node cache hit
    fs_open_state_us: float = 196.0     # per-layer open-file state creation
    fs_attr_copy_us: float = 60.0       # marshalling a file's attributes
    fs_access_check_us: float = 5.0     # permission check against an i-node
    fs_read_cpu_us: float = 30.0        # read bookkeeping in a layer
    fs_write_cpu_us: float = 25.0       # write bookkeeping in a layer
    vm_fault_us: float = 25.0           # page-fault handling in the VMM
    bind_us: float = 40.0               # channel lookup/creation bookkeeping
    name_cache_hit_us: float = 10.0     # resolve satisfied by name cache

    # --- data transformation layers --------------------------------------
    compress_per_kb_us: float = 400.0
    decompress_per_kb_us: float = 150.0
    encrypt_per_kb_us: float = 200.0
    decrypt_per_kb_us: float = 200.0

    # --- service-time queues (concurrent mode; see repro.sim.scheduler) --
    #: Server-side handling time a request occupies one server slot for
    #: (demultiplex, dispatch, context switch) — the service time of a
    #: node's request queue under load.
    server_service_us: float = 500.0
    #: Additional per-KB slot occupancy for payload-carrying requests.
    server_service_per_kb_us: float = 25.0

    def disk_io_us(self, nbytes: int) -> float:
        """Cost of one disk transfer of ``nbytes`` (seek + average
        rotational latency + media transfer)."""
        return (
            self.disk_seek_us
            + self.disk_rotation_us / 2.0
            + self.disk_xfer_per_kb_us * (nbytes / KB)
        )

    def network_transfer_us(self, nbytes: int) -> float:
        """Cost of one request/response exchange carrying ``nbytes``."""
        return self.network_rtt_us + self.network_per_kb_us * (nbytes / KB)

    def memcpy_us(self, nbytes: int) -> float:
        return self.memcpy_per_kb_us * (nbytes / KB)

    def server_service_time_us(self, nbytes: int) -> float:
        """Time one request carrying ``nbytes`` occupies a server slot
        (the service time of the node's request queue — see
        :meth:`repro.ipc.node.Node.install_server_queue`)."""
        return self.server_service_us + self.server_service_per_kb_us * (nbytes / KB)


#: Clock categories, interned once at import: ``SimClock.advance`` runs
#: on every single charge (2k+ times in a toy macro workload, millions in
#: a load sweep), and pre-interned keys make the per-category dict
#: updates hash-and-compare by pointer instead of by string content.
CPU = sys.intern("cpu")
DISK = sys.intern("disk")
NETWORK = sys.intern("network")
LOCAL_CALL = sys.intern("local_call")
CROSS_DOMAIN = sys.intern("cross_domain")
SYSCALL = sys.intern("syscall")
#: Queue-wait categories charged by the service queues of concurrent
#: mode (repro.sim.scheduler.ServiceQueue): time a request spent waiting
#: for a server slot / the disk arm, as opposed to being serviced.
SERVER_QUEUE_WAIT = sys.intern("server_queue_wait")
DISK_QUEUE_WAIT = sys.intern("disk_queue_wait")


class Charger:
    """Binds a :class:`CostModel` to a :class:`SimClock`.

    Layer implementations call ``charge.fs_resolve()`` etc.; each named
    charge advances the clock under a stable category so the harness can
    attribute virtual time (cpu vs disk vs cross_domain vs network).
    """

    __slots__ = ("clock", "model", "_advance", "_memcpy_per_kb_us")

    def __init__(self, clock: SimClock, model: CostModel) -> None:
        self.clock = clock
        self.model = model
        # The hottest charges run once per simulated load/store; resolve
        # the clock's advance and the per-KB constant once instead of
        # three attribute hops per call.
        self._advance = clock.advance
        self._memcpy_per_kb_us = model.memcpy_per_kb_us

    # Invocation paths — charged by the ipc layer, exposed for baselines.
    def local_call(self) -> None:
        self.clock.advance(self.model.local_call_us, LOCAL_CALL)

    def cross_domain_call(self) -> None:
        self.clock.advance(self.model.cross_domain_call_us, CROSS_DOMAIN)

    def syscall(self) -> None:
        self.clock.advance(self.model.syscall_us, SYSCALL)

    def network(self, nbytes: int = 0) -> None:
        self.clock.advance(self.model.network_transfer_us(nbytes), NETWORK)

    def network_payload(self, nbytes: int) -> None:
        """Per-KB payload cost only, for a reply piggybacked on an
        already-charged round trip."""
        self.clock.advance(self.model.network_per_kb_us * nbytes / KB, NETWORK)

    def disk_io(self, nbytes: int) -> None:
        self.clock.advance(self.model.disk_io_us(nbytes), DISK)

    # CPU work in layers.
    def memcpy(self, nbytes: int) -> None:
        # Same float expression as CostModel.memcpy_us — bit-identical
        # virtual time, minus the method call and attribute chain.
        self._advance(self._memcpy_per_kb_us * (nbytes / KB), CPU)

    def fs_resolve(self) -> None:
        self.clock.advance(self.model.fs_resolve_us, CPU)

    def fs_open_state(self) -> None:
        self.clock.advance(self.model.fs_open_state_us, CPU)

    def fs_attr_copy(self) -> None:
        self.clock.advance(self.model.fs_attr_copy_us, CPU)

    def fs_access_check(self) -> None:
        self.clock.advance(self.model.fs_access_check_us, CPU)

    def fs_read_cpu(self) -> None:
        self.clock.advance(self.model.fs_read_cpu_us, CPU)

    def fs_write_cpu(self) -> None:
        self.clock.advance(self.model.fs_write_cpu_us, CPU)

    def vm_fault(self) -> None:
        self._advance(self.model.vm_fault_us, CPU)

    def bind(self) -> None:
        self.clock.advance(self.model.bind_us, CPU)

    def name_cache_hit(self) -> None:
        self.clock.advance(self.model.name_cache_hit_us, CPU)

    def compress(self, nbytes: int) -> None:
        self.clock.advance(self.model.compress_per_kb_us * nbytes / KB, CPU)

    def decompress(self, nbytes: int) -> None:
        self.clock.advance(self.model.decompress_per_kb_us * nbytes / KB, CPU)

    def encrypt(self, nbytes: int) -> None:
        self.clock.advance(self.model.encrypt_per_kb_us * nbytes / KB, CPU)

    def decrypt(self, nbytes: int) -> None:
        self.clock.advance(self.model.decrypt_per_kb_us * nbytes / KB, CPU)
